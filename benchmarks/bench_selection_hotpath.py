"""Selection hot-path benchmark: seed (pure-Python) vs. vectorized engine.

Times one greedy selection round — the workload behind Table V — on growing
fact sets, comparing three implementations of the same algorithm:

* ``greedy_reference`` — the seed's ``O(n · k · 2^k · |O|)`` dict arithmetic,
* ``greedy``           — the vectorized incremental engine,
* ``greedy_lazy``      — the engine plus CELF lazy evaluation.

All three must select the *identical* task set; the engine paths must beat
the reference by at least the acceptance-floor factor on the largest
scenario.  Every run persists ``BENCH_selection.json`` under
``benchmarks/results/`` so future PRs can track the perf trajectory.
"""

import json
import time

import numpy as np

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import get_selector

from _bench_utils import RESULTS_DIR

NUM_FACTS_GRID = (10, 14, 18)
K = 8
SUPPORT = 512
ACCURACY = 0.8
SEED = 0

#: The acceptance floor: the engine must beat the seed path by at least this
#: factor on the largest scenario (in practice it is orders of magnitude).
MIN_SPEEDUP = 5.0


def sparse_distribution(num_facts: int, seed: int = SEED) -> JointDistribution:
    rng = np.random.default_rng(seed)
    size = min(SUPPORT, 1 << num_facts)
    masks = rng.choice(1 << num_facts, size=size, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=size)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def time_selector(name: str, distribution: JointDistribution, crowd: CrowdModel, runs: int):
    """Best-of-``runs`` wall time and the (stable) selection result."""
    best = float("inf")
    result = None
    for _ in range(runs):
        selector = get_selector(name)
        started = time.perf_counter()
        result = selector.select(distribution, crowd, K)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_selection_hotpath_speedup():
    crowd = CrowdModel(ACCURACY)
    scenarios = []
    for num_facts in NUM_FACTS_GRID:
        distribution = sparse_distribution(num_facts)
        reference_seconds, reference = time_selector(
            "greedy_reference", distribution, crowd, runs=1
        )
        greedy_seconds, greedy = time_selector("greedy", distribution, crowd, runs=3)
        lazy_seconds, lazy = time_selector("greedy_lazy", distribution, crowd, runs=3)

        assert greedy.task_ids == reference.task_ids
        assert lazy.task_ids == reference.task_ids
        assert abs(greedy.objective - reference.objective) < 1e-9

        scenarios.append(
            {
                "num_facts": num_facts,
                "k": K,
                "support": SUPPORT,
                "accuracy": ACCURACY,
                "reference_seconds": reference_seconds,
                "greedy_seconds": greedy_seconds,
                "lazy_seconds": lazy_seconds,
                "speedup_greedy": reference_seconds / greedy_seconds,
                "speedup_lazy": reference_seconds / lazy_seconds,
                "selected": list(greedy.task_ids),
                "identical_selections": True,
                "lazy_skipped_evaluations": lazy.stats.skipped_evaluations,
                "greedy_candidate_evaluations": greedy.stats.candidate_evaluations,
                "lazy_candidate_evaluations": lazy.stats.candidate_evaluations,
            }
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    artifact = {
        "benchmark": "selection_hotpath",
        "description": (
            "One greedy selection round (k=8) on sparse joint distributions: "
            "seed pure-Python path vs. vectorized incremental engine vs. CELF "
            "lazy greedy. Times are best-of-run wall seconds."
        ),
        "scenarios": scenarios,
    }
    (RESULTS_DIR / "BENCH_selection.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )

    largest = scenarios[-1]
    assert largest["num_facts"] == max(NUM_FACTS_GRID)
    assert largest["speedup_greedy"] >= MIN_SPEEDUP, largest
    assert largest["speedup_lazy"] >= MIN_SPEEDUP, largest
