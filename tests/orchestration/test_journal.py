"""Durability primitives: journal appends, atomic checkpoints, run locks.

These are the building blocks every crash-recovery guarantee rests on, so
they are pinned directly: fsync'd appends tolerate (exactly) a torn trailing
line, checkpoints are all-or-nothing through the tmp+rename protocol, and
stale locks from dead pids are taken over while live locks refuse access.
The disk-fault injectors (ENOSPC, torn write, stale lock) are exercised
through the same ``REPRO_FAULTS``-style plans the chaos suite uses.
"""

import errno
import json
import multiprocessing
import os
import time

import pytest

from repro.exceptions import OrchestrationError
from repro.orchestration.journal import (
    JournalWriter,
    RunLock,
    atomic_write_json,
    merge_journals,
    read_json,
    read_records,
)
from repro.testing import faults
from repro.testing.faults import FaultInjected, FaultPlan


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as journal:
            journal.append({"type": "a", "value": 1})
            journal.append({"type": "b", "pi": 0.1 + 0.2})
        records = read_records(path)
        assert records == [{"type": "a", "value": 1}, {"type": "b", "pi": 0.1 + 0.2}]
        # Bit-exact float round-trip is what resume's identity rests on.
        assert records[1]["pi"] == 0.1 + 0.2

    def test_missing_journal_reads_empty(self, tmp_path):
        assert read_records(str(tmp_path / "nope.jsonl")) == []

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with JournalWriter(path) as journal:
            journal.append({"type": "a"})
            journal.append({"type": "b"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "c", "tr')  # crash mid-append
        assert read_records(path) == [{"type": "a"}, {"type": "b"}]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"type": "a"}\ngarbage\n{"type": "b"}\n')
        with pytest.raises(OrchestrationError, match="corrupt at line 2"):
            read_records(path)

    def test_enospc_fault_raises_oserror_before_writing(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        faults.install(FaultPlan(enospc_at_journal_append=2))
        with JournalWriter(path) as journal:
            journal.append({"type": "a"})
            with pytest.raises(OSError) as excinfo:
                journal.append({"type": "b"})
            assert excinfo.value.errno == errno.ENOSPC
            # Budgeted: the next append succeeds (the disk "recovered").
            journal.append({"type": "c"})
        assert [r["type"] for r in read_records(path)] == ["a", "c"]


def _write_journal(path, records, torn_tail=None):
    with JournalWriter(str(path)) as journal:
        for record in records:
            journal.append(record)
    if torn_tail is not None:
        with open(str(path), "a", encoding="utf-8") as handle:
            handle.write(torn_tail)


class TestMergeJournals:
    def test_merges_in_deterministic_path_order(self, tmp_path):
        _write_journal(tmp_path / "journal-b.jsonl", [{"type": "x", "who": "b"}])
        _write_journal(tmp_path / "journal-a.jsonl", [{"type": "x", "who": "a"}])
        merged = merge_journals(
            [str(tmp_path / "journal-b.jsonl"), str(tmp_path / "journal-a.jsonl")]
        )
        assert [record["who"] for record in merged] == ["a", "b"]

    def test_torn_tail_in_a_non_final_journal_is_tolerated(self, tmp_path):
        # The regression this pins: the one-torn-trailing-line rule must be
        # *per journal*.  A worker SIGKILLed mid-append tears the tail of
        # journal-a; journal-b sorting after it must not turn that tail into
        # "mid-file corruption" of the merged stream.
        _write_journal(
            tmp_path / "journal-a.jsonl",
            [{"type": "entity_done", "index": 0, "payload": {"v": 1}}],
            torn_tail='{"type": "entity_done", "ind',
        )
        _write_journal(
            tmp_path / "journal-b.jsonl",
            [{"type": "entity_done", "index": 1, "payload": {"v": 2}}],
        )
        merged = merge_journals(
            [str(tmp_path / "journal-a.jsonl"), str(tmp_path / "journal-b.jsonl")]
        )
        assert [record["index"] for record in merged] == [0, 1]

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "journal-a.jsonl"
        with open(str(path), "w", encoding="utf-8") as handle:
            handle.write('{"type": "a"}\ngarbage\n{"type": "b"}\n')
        with pytest.raises(OrchestrationError, match="corrupt at line 2"):
            merge_journals([str(path)])

    def test_identical_duplicate_entity_done_is_deduplicated(self, tmp_path):
        record = {"type": "entity_done", "index": 3, "payload": {"u": 0.5}}
        _write_journal(tmp_path / "journal-a.jsonl", [record])
        _write_journal(tmp_path / "journal-b.jsonl", [record])
        merged = merge_journals(
            [str(tmp_path / "journal-a.jsonl"), str(tmp_path / "journal-b.jsonl")]
        )
        assert merged == [record]

    def test_conflicting_duplicate_payloads_refuse_loudly(self, tmp_path):
        _write_journal(
            tmp_path / "journal-a.jsonl",
            [{"type": "entity_done", "index": 3, "payload": {"u": 0.5}}],
        )
        _write_journal(
            tmp_path / "journal-b.jsonl",
            [{"type": "entity_done", "index": 3, "payload": {"u": 0.75}}],
        )
        with pytest.raises(OrchestrationError, match="conflicting entity_done"):
            merge_journals(
                [str(tmp_path / "journal-a.jsonl"), str(tmp_path / "journal-b.jsonl")]
            )

    def test_missing_journals_merge_empty(self, tmp_path):
        assert merge_journals([str(tmp_path / "nope.jsonl")]) == []


class TestAtomicCheckpoint:
    def test_write_and_read(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        atomic_write_json(path, {"status": "running", "completed": [0, 1]})
        assert read_json(path) == {"status": "running", "completed": [0, 1]}
        assert not os.path.exists(path + ".tmp")

    def test_read_missing_returns_none(self, tmp_path):
        assert read_json(str(tmp_path / "nope.json")) is None

    def test_torn_write_fault_preserves_previous_checkpoint(self, tmp_path):
        path = str(tmp_path / "checkpoint.json")
        atomic_write_json(path, {"generation": 1})
        faults.install(FaultPlan(torn_write_at_checkpoint=1))
        with pytest.raises(FaultInjected):
            atomic_write_json(path, {"generation": 2})
        # The committed file is untouched; the torn half sits in the tmp
        # sibling, which readers never open.
        assert read_json(path) == {"generation": 1}
        with open(path + ".tmp", encoding="utf-8") as handle:
            with pytest.raises(ValueError):
                json.loads(handle.read())
        # The next (healthy) write commits over the leftovers.
        atomic_write_json(path, {"generation": 3})
        assert read_json(path) == {"generation": 3}
        assert not os.path.exists(path + ".tmp")


class TestRunLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        with RunLock(lock_path):
            assert read_json(lock_path)["pid"] == os.getpid()
        assert not os.path.exists(lock_path)

    def test_live_lock_refuses(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        atomic_write_json(lock_path, {"pid": os.getpid()})
        # Our own pid counts as "this process may re-enter", so fake a
        # different live pid: pid 1 is always alive (init) but not ours.
        atomic_write_json(lock_path, {"pid": 1})
        with pytest.raises(OrchestrationError, match="locked by live process 1"):
            RunLock(lock_path).acquire()

    @pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork for a dead pid")
    def test_stale_lock_fault_forces_takeover(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        faults.install(FaultPlan(stale_lock_at_acquire=1))
        lock = RunLock(lock_path)
        lock.acquire()  # the injected dead-pid lock is detected and taken over
        assert read_json(lock_path)["pid"] == os.getpid()
        lock.release()

    def test_release_leaves_foreign_lock_alone(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        lock = RunLock(lock_path)
        lock.acquire()
        # Simulate another process having taken over (e.g. after our crash
        # and a stale takeover): release must not delete their lock.
        atomic_write_json(lock_path, {"pid": 1})
        lock.release()
        assert read_json(lock_path) == {"pid": 1}

    def test_same_process_reacquire_is_allowed(self, tmp_path):
        lock_path = str(tmp_path / "lock")
        first = RunLock(lock_path)
        first.acquire()
        second = RunLock(lock_path)
        second.acquire()  # same pid: re-entry, not a conflict
        assert read_json(lock_path)["pid"] == os.getpid()
        second.release()


def _race_for_lock(lock_path, barrier, results):
    """Child body of the stale-takeover race: one winner, one loud loser."""
    barrier.wait()
    lock = RunLock(lock_path)
    try:
        lock.acquire()
    except OrchestrationError as error:
        results.put(("refused", str(error)))
    else:
        results.put(("acquired", os.getpid()))
        # Stay alive long enough for the loser's liveness probe to see us.
        time.sleep(1.0)
        lock.release()


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the race needs fork children",
)
class TestRunLockTakeoverRace:
    def test_two_resumers_racing_a_dead_pid_lock_serialize(self, tmp_path):
        # A dead-pid lock (the crashed previous orchestrator) with two
        # resumers arriving at once: the rename-based takeover must let
        # exactly one win; the other must refuse with the live-process
        # error, never clobber the winner's fresh lock.
        lock_path = str(tmp_path / "lock")
        context = multiprocessing.get_context("fork")
        dead = context.Process(target=lambda: None)
        dead.start()
        dead.join()
        atomic_write_json(lock_path, {"pid": dead.pid})

        barrier = context.Barrier(2)
        results = context.Queue()
        racers = [
            context.Process(target=_race_for_lock, args=(lock_path, barrier, results))
            for _ in range(2)
        ]
        for racer in racers:
            racer.start()
        reports = sorted(results.get(timeout=15.0) for _ in racers)
        for racer in racers:
            racer.join(timeout=15.0)
        assert [kind for kind, _ in reports] == ["acquired", "refused"]
        (_, winner_pid), (_, refusal) = reports
        # The loser's error names the live winner, not the dead pid both
        # racers displaced — proof it observed the winner's fresh lock.
        assert f"locked by live process {winner_pid}" in refusal
        assert not os.path.exists(lock_path), "winner released cleanly"
