"""Selection hot-path benchmark: seed vs. engine vs. parallel/batched paths.

Times one greedy selection round — the workload behind Table V — on growing
fact sets, comparing implementations of the same algorithm:

* ``greedy_reference`` — the seed's ``O(n · k · 2^k · |O|)`` dict arithmetic,
* ``greedy``           — the vectorized incremental engine,
* ``greedy_lazy``      — the engine plus CELF lazy evaluation.

All must select the *identical* task set; the engine paths must beat the
reference by at least the acceptance-floor factor on the largest scenario.

Six follow-on suites ride in the same artifact:

* **heterogeneous channels** — the per-bit 2×2 channel generalisation must
  cost about the same as the uniform BSC path and degenerate to the
  identical selection when all accuracies are equal;
* **session reuse** — a full multi-round Table-V-style run through one
  persistent :class:`RefinementSession` vs. the historical
  rebuild-per-round loop;
* **parallel sharding** — one greedy selection on a scale corpus
  (``2^20``-row support) with candidate evaluations sharded across a
  fork-shared worker pool vs. the serial scan (identical selections), plus
  the auto-serial guard showing the Table-V hot path does not regress;
* **batched multi-query scoring** — many queries against one entity through
  one session's shared bit-column cache vs. one fresh engine per query;
* **persistent pools** — multi-round runs comparing PR 4's fork-per-call
  selector against one session-owned pool fed through the shared-memory
  snapshot ring (the fork amortisation the persistent runtime exists for);
* **entity fan-out** — the lock-step quality experiment with whole entities
  fanned out across a fork pool, curves identical to the serial loop.

Every run **merge-appends** its scenarios into
``benchmarks/results/BENCH_selection.json`` keyed by scenario id, so entries
recorded by other suites (or earlier PRs) survive; the schema is documented
in ``benchmarks/README.md``.
"""

import json
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.kernels import default_tier
from repro.core.merging import merge_answers
from repro.core.query import Query
from repro.core.selection import (
    GreedySelector,
    ParallelPolicy,
    QueryGreedySelector,
    RefinementSession,
    get_selector,
)
from repro.core.utility import pws_quality
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.worker import WorkerPool
from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.datasets.scale import ScaleCorpusConfig, generate_scale_distribution
from repro.evaluation.experiment import (
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.fusion.majority import MajorityVote

from _bench_utils import RESULTS_DIR

NUM_FACTS_GRID = (10, 14, 18)
K = 8
SUPPORT = 512
ACCURACY = 0.8
SEED = 0

#: The acceptance floor: the engine must beat the seed path by at least this
#: factor on the largest scenario (in practice it is orders of magnitude).
MIN_SPEEDUP = 5.0

#: Heterogeneous channels may cost at most this factor over the uniform path
#: (in practice they are within ~1.3x: identical kernels, plus per-candidate
#: noise-entropy bookkeeping).
MAX_HETEROGENEOUS_OVERHEAD = 3.0

#: Session reuse must beat rebuild-per-round end to end by at least this
#: factor on the large-support Table-V-style run (measured ~1.5x).
MIN_SESSION_SPEEDUP = 1.1

#: The scale corpus behind the parallel and batched-query suites.
SCALE_SUPPORT = 1 << 20
SCALE_FACTS = 48
SCALE_WORKERS = 4

#: Parallel sharding must reach this speedup at 4 workers — only asserted on
#: hosts that actually have 4 CPUs (single-CPU runners record the scenario
#: but cannot demonstrate wall-clock wins).
MIN_PARALLEL_SPEEDUP = 2.0

#: A parallel-configured selector on the small Table-V hot path must stay
#: within this factor of the plain selector (the auto-serial threshold keeps
#: it from ever forking there).
MAX_AUTO_SERIAL_OVERHEAD = 1.05

#: A persistent pool must beat PR 4's fork-per-call path end to end on a
#: multi-round run by at least this factor — asserted only on hosts with at
#: least 4 CPUs (single-CPU runners record the scenario with its ``cpus``).
MIN_PERSISTENT_SPEEDUP = 1.1

#: Entity fan-out must beat the serial lock-step loop by at least this factor
#: on >=4-CPU hosts (identical curves are asserted everywhere).
MIN_ENTITY_SPEEDUP = 1.1


# -- artifact layer (merge-append, keyed by scenario) -------------------------------

_ARTIFACT_DESCRIPTION = (
    "Selection hot-path trajectory: greedy selection rounds on sparse joint "
    "distributions across engine generations (seed pure-Python, vectorized "
    "incremental, CELF lazy, fork-parallel, batched multi-query). Keyed by "
    "scenario id; times are best-of-run wall seconds. Schema: see "
    "benchmarks/README.md."
)


def _artifact_path():
    return RESULTS_DIR / "BENCH_selection.json"


def _migrate_legacy(artifact: dict) -> dict:
    """Lift the PR-2/PR-3 artifact layout into the keyed-scenario schema."""
    scenarios = artifact.get("scenarios")
    migrated: dict = {}
    if isinstance(scenarios, list):
        for row in scenarios:
            key = f"hotpath/n{row['num_facts']}_k{row['k']}_s{row['support']}"
            migrated[key] = dict(row, suite="hotpath")
    elif isinstance(scenarios, dict):
        migrated.update(scenarios)
    legacy_heterogeneous = artifact.get("heterogeneous_channels")
    if isinstance(legacy_heterogeneous, dict):
        key = (
            f"heterogeneous/n{legacy_heterogeneous.get('num_facts', 0)}"
            f"_k{legacy_heterogeneous.get('k', 0)}"
            f"_s{legacy_heterogeneous.get('support', 0)}"
        )
        migrated[key] = dict(legacy_heterogeneous, suite="heterogeneous")
    legacy_session = artifact.get("session_reuse")
    if isinstance(legacy_session, dict):
        for row in legacy_session.get("scenarios", []):
            key = f"session/n{row['num_facts']}_s{row['support']}_k{row['k']}"
            migrated[key] = dict(row, suite="session")
    # Schema v3: every scenario row carries the kernel tier its engine-path
    # timings ran on.  Rows recorded before the field existed predate the
    # compiled tier and therefore ran the numpy kernels.
    for row in migrated.values():
        row.setdefault("kernel", "numpy")
    return {
        "benchmark": "selection_hotpath",
        "schema_version": 3,
        "description": _ARTIFACT_DESCRIPTION,
        "scenarios": migrated,
    }


def _load_artifact() -> dict:
    path = _artifact_path()
    if path.exists():
        return _migrate_legacy(json.loads(path.read_text()))
    return _migrate_legacy({})


def _record_scenarios(entries: dict) -> dict:
    """Merge-append ``entries`` (scenario id -> row) into the shared artifact.

    Rows that do not state their kernel tier are stamped with the host's
    auto-resolved tier — the tier every engine built in this process actually
    ran on (schema v3).
    """
    artifact = _load_artifact()
    for row in entries.values():
        if isinstance(row, dict):
            row.setdefault("kernel", default_tier())
    artifact["scenarios"].update(entries)
    RESULTS_DIR.mkdir(exist_ok=True)
    _artifact_path().write_text(json.dumps(artifact, indent=2) + "\n")
    return artifact


def sparse_distribution(num_facts: int, seed: int = SEED) -> JointDistribution:
    rng = np.random.default_rng(seed)
    size = min(SUPPORT, 1 << num_facts)
    masks = rng.choice(1 << num_facts, size=size, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=size)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def best_of(runner, repeats):
    """Best-of-``repeats`` wall seconds of calling ``runner()``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        runner()
        best = min(best, time.perf_counter() - started)
    return best


def time_selector(name: str, distribution: JointDistribution, crowd: CrowdModel, runs: int):
    """Best-of-``runs`` wall time and the (stable) selection result."""
    best = float("inf")
    result = None
    for _ in range(runs):
        selector = get_selector(name)
        started = time.perf_counter()
        result = selector.select(distribution, crowd, K)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_selection_hotpath_speedup():
    crowd = CrowdModel(ACCURACY)
    entries = {}
    rows = []
    for num_facts in NUM_FACTS_GRID:
        distribution = sparse_distribution(num_facts)
        reference_seconds, reference = time_selector(
            "greedy_reference", distribution, crowd, runs=1
        )
        greedy_seconds, greedy = time_selector("greedy", distribution, crowd, runs=3)
        lazy_seconds, lazy = time_selector("greedy_lazy", distribution, crowd, runs=3)

        assert greedy.task_ids == reference.task_ids
        assert lazy.task_ids == reference.task_ids
        assert abs(greedy.objective - reference.objective) < 1e-9

        row = {
            "suite": "hotpath",
            "num_facts": num_facts,
            "k": K,
            "support": SUPPORT,
            "accuracy": ACCURACY,
            "reference_seconds": reference_seconds,
            "greedy_seconds": greedy_seconds,
            "lazy_seconds": lazy_seconds,
            "speedup_greedy": reference_seconds / greedy_seconds,
            "speedup_lazy": reference_seconds / lazy_seconds,
            "selected": list(greedy.task_ids),
            "identical_selections": True,
            "lazy_skipped_evaluations": lazy.stats.skipped_evaluations,
            "greedy_candidate_evaluations": greedy.stats.candidate_evaluations,
            "lazy_candidate_evaluations": lazy.stats.candidate_evaluations,
        }
        rows.append(row)
        entries[f"hotpath/n{num_facts}_k{K}_s{SUPPORT}"] = row

    _record_scenarios(entries)

    largest = rows[-1]
    assert largest["num_facts"] == max(NUM_FACTS_GRID)
    assert largest["speedup_greedy"] >= MIN_SPEEDUP, largest
    assert largest["speedup_lazy"] >= MIN_SPEEDUP, largest


class _ForcedHeterogeneous(PerFactChannelModel):
    """Equal-accuracy channels that refuse the uniform fast path.

    ``PerFactChannelModel`` reports a ``uniform_accuracy`` when every channel
    is equal, which would route the degeneration check below through the very
    BSC code path it is supposed to be compared against; hiding the uniform
    accuracy forces the heterogeneous kernels to run.
    """

    @property
    def uniform_accuracy(self):
        return None


def test_heterogeneous_channels_cost_like_uniform():
    """Per-bit 2×2 channels: same selection cost, identical uniform limit."""
    num_facts = max(NUM_FACTS_GRID)
    distribution = sparse_distribution(num_facts)
    uniform = CrowdModel(ACCURACY)
    rng = np.random.default_rng(SEED + 1)
    heterogeneous = PerFactChannelModel(
        ACCURACY,
        {
            f"f{i}": float(accuracy)
            for i, accuracy in enumerate(
                rng.uniform(0.65, 0.95, size=num_facts).round(3)
            )
        },
    )
    degenerate = _ForcedHeterogeneous(
        ACCURACY, {f"f{i}": ACCURACY for i in range(num_facts)}
    )

    uniform_seconds, uniform_result = time_selector(
        "greedy", distribution, uniform, runs=3
    )
    hetero_seconds, hetero_result = time_selector(
        "greedy", distribution, heterogeneous, runs=3
    )
    _, degenerate_result = time_selector("greedy", distribution, degenerate, runs=1)

    # Equal-accuracy channels are the uniform BSC path, bit for bit.
    assert degenerate_result.task_ids == uniform_result.task_ids
    assert degenerate_result.objective == uniform_result.objective
    assert len(hetero_result.task_ids) == K
    overhead = hetero_seconds / uniform_seconds

    entry = {
        "suite": "heterogeneous",
        "description": (
            "One greedy round (k=8) under per-fact channel accuracies drawn "
            "from U(0.65, 0.95) vs. the uniform Pc=0.8 BSC path."
        ),
        "num_facts": num_facts,
        "k": K,
        "support": SUPPORT,
        "uniform_seconds": uniform_seconds,
        "heterogeneous_seconds": hetero_seconds,
        "overhead_factor": overhead,
        "uniform_selected": list(uniform_result.task_ids),
        "heterogeneous_selected": list(hetero_result.task_ids),
        "equal_accuracy_channels_match_uniform": True,
    }
    _record_scenarios({f"heterogeneous/n{num_facts}_k{K}_s{SUPPORT}": entry})

    assert overhead <= MAX_HETEROGENEOUS_OVERHEAD, entry


def _session_scenario_distribution(num_facts: int, support: int) -> JointDistribution:
    rng = np.random.default_rng(SEED)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def test_session_reuse_beats_rebuild_per_round():
    """Full Table-V-style runs: persistent session vs. rebuild-per-round."""
    num_facts = 20
    budget = 60
    crowd = CrowdModel(ACCURACY)

    def make_platform(gold):
        return SimulatedPlatform(
            ground_truth=gold,
            workers=WorkerPool.homogeneous(25, ACCURACY, seed=42),
        )

    def run_fresh(distribution, gold, k):
        """The pre-session loop: fresh selector engine + dict round-trip per round."""
        platform = make_platform(gold)
        current = distribution
        remaining = budget
        task_sets = []
        while remaining > 0:
            size = min(k, remaining, current.num_facts)
            selection = get_selector("greedy").select(current, crowd, size)
            if not selection.task_ids:
                break
            answers = platform.collect(selection.task_ids)
            pws_quality(current)
            current = merge_answers(current, answers, crowd)
            pws_quality(current)
            remaining -= len(selection.task_ids)
            task_sets.append(selection.task_ids)
        return task_sets

    def run_session(distribution, gold, k):
        platform = make_platform(gold)
        engine = CrowdFusionEngine(
            get_selector("greedy"), crowd, budget=budget, tasks_per_round=k
        )
        result = engine.run(distribution, platform)
        return [record.task_ids for record in result.rounds]

    entries = {}
    rows = []
    for support, k in ((512, 1), (512, 3), (2048, 1), (2048, 3)):
        distribution = _session_scenario_distribution(num_facts, support)
        gold = {
            fact_id: index % 2 == 0
            for index, fact_id in enumerate(distribution.fact_ids)
        }
        fresh_sets = run_fresh(distribution, gold, k)
        session_sets = run_session(distribution, gold, k)
        assert session_sets == fresh_sets, (support, k)

        fresh_seconds = best_of(lambda: run_fresh(distribution, gold, k), repeats=5)
        session_seconds = best_of(lambda: run_session(distribution, gold, k), repeats=5)
        row = {
            "suite": "session",
            "num_facts": num_facts,
            "support": support,
            "k": k,
            "budget": budget,
            "rounds": len(session_sets),
            "fresh_seconds": fresh_seconds,
            "session_seconds": session_seconds,
            "speedup_session": fresh_seconds / session_seconds,
            "identical_task_sequences": True,
        }
        rows.append(row)
        entries[f"session/n{num_facts}_s{support}_k{k}"] = row

    _record_scenarios(entries)

    headline = max(rows, key=lambda row: row["speedup_session"])
    assert headline["speedup_session"] >= MIN_SESSION_SPEEDUP, rows
    assert all(row["speedup_session"] > 0.9 for row in rows), rows


# -- parallel sharding on the scale corpus ------------------------------------------


def test_parallel_auto_serial_guards_table5_hot_path():
    """A parallel-configured selector must not regress the small hot path.

    The default :class:`ParallelPolicy` threshold keeps Table-V-sized scans
    (tens of candidates over a few-thousand-row support) in process, so the
    only admissible cost is the threshold check itself.
    """
    distribution = sparse_distribution(max(NUM_FACTS_GRID))
    crowd = CrowdModel(ACCURACY)

    def timed(selector):
        started = time.perf_counter()
        result = selector.select(distribution, crowd, K)
        return time.perf_counter() - started, result

    # Interleave the two paths so background load drifts both best-of
    # measurements equally instead of biasing whichever ran second.
    plain_seconds = guarded_seconds = float("inf")
    plain = guarded = None
    for _ in range(25):
        seconds, plain = timed(GreedySelector())
        plain_seconds = min(plain_seconds, seconds)
        seconds, guarded = timed(
            GreedySelector(parallel=ParallelPolicy(workers=SCALE_WORKERS))
        )
        guarded_seconds = min(guarded_seconds, seconds)

    assert guarded.task_ids == plain.task_ids
    assert guarded.stats.workers == 0, "auto-serial threshold failed to hold"
    assert guarded.stats.parallel_evaluations == 0
    overhead = guarded_seconds / plain_seconds

    entry = {
        "suite": "parallel",
        "description": (
            "Auto-serial guard: greedy with a 4-worker ParallelPolicy on the "
            "Table-V hot path (n=18, |O|=512) must stay serial and within "
            f"{MAX_AUTO_SERIAL_OVERHEAD}x of the plain selector."
        ),
        "num_facts": max(NUM_FACTS_GRID),
        "k": K,
        "support": SUPPORT,
        "plain_seconds": plain_seconds,
        "guarded_seconds": guarded_seconds,
        "overhead_factor": overhead,
        "stayed_serial": True,
    }
    _record_scenarios(
        {f"parallel/table5_guard_n{max(NUM_FACTS_GRID)}_s{SUPPORT}": entry}
    )
    assert overhead <= MAX_AUTO_SERIAL_OVERHEAD, entry


@pytest.mark.slow
@pytest.mark.parallel
def test_parallel_sharding_on_scale_corpus():
    """Parallel vs. serial greedy on a 2^20-row support: identical, sharded."""
    distribution = generate_scale_distribution(
        ScaleCorpusConfig(num_facts=SCALE_FACTS, support_size=SCALE_SUPPORT, seed=SEED)
    )
    crowd = CrowdModel(ACCURACY)
    k = 3
    cpus = os.cpu_count() or 1

    started = time.perf_counter()
    serial = GreedySelector().select(distribution, crowd, k)
    serial_seconds = time.perf_counter() - started

    selector = GreedySelector(parallel=ParallelPolicy(workers=SCALE_WORKERS))
    started = time.perf_counter()
    parallel = selector.select(distribution, crowd, k)
    parallel_seconds = time.perf_counter() - started

    assert parallel.task_ids == serial.task_ids
    assert abs(parallel.objective - serial.objective) < 1e-9
    assert parallel.stats.workers == SCALE_WORKERS
    assert parallel.stats.parallel_evaluations > 0
    speedup = serial_seconds / parallel_seconds

    entry = {
        "suite": "parallel",
        "description": (
            "One greedy selection (k=3) on the scale corpus: candidate scans "
            "sharded over a fork-shared 4-worker pool vs. the serial scan. "
            "Selections are bit-for-bit identical; wall-clock speedup is "
            "hardware-bound (recorded cpus)."
        ),
        "num_facts": SCALE_FACTS,
        "k": k,
        "support": SCALE_SUPPORT,
        "workers": SCALE_WORKERS,
        "chunk_size": parallel.stats.chunk_size,
        "cpus": cpus,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup_parallel": speedup,
        "parallel_evaluations": parallel.stats.parallel_evaluations,
        "identical_selections": True,
        "selected": list(serial.task_ids),
    }
    _record_scenarios(
        {f"parallel/scale_n{SCALE_FACTS}_s{SCALE_SUPPORT}_w{SCALE_WORKERS}": entry}
    )

    if cpus >= SCALE_WORKERS:
        assert speedup >= MIN_PARALLEL_SPEEDUP, entry


@pytest.mark.slow
def test_batched_multi_query_scoring_on_scale_corpus():
    """Many queries against one entity: shared session caches vs. fresh engines."""
    num_facts = 32
    distribution = generate_scale_distribution(
        ScaleCorpusConfig(num_facts=num_facts, support_size=SCALE_SUPPORT, seed=SEED + 1)
    )
    crowd = CrowdModel(ACCURACY)
    k = 2
    queries = [
        Query.of((f"f{3 * index}", f"f{3 * index + 1}"), name=f"q{index}")
        for index in range(5)
    ]

    def run_fresh():
        return [
            QueryGreedySelector(query).select(distribution, crowd, k)
            for query in queries
        ]

    def run_batched():
        session = RefinementSession(distribution, crowd)
        return session.select_queries(queries, k)

    started = time.perf_counter()
    fresh = run_fresh()
    fresh_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batched = run_batched()
    batched_seconds = time.perf_counter() - started

    for fresh_result, batched_result in zip(fresh, batched):
        assert batched_result.task_ids == fresh_result.task_ids
        assert abs(batched_result.objective - fresh_result.objective) < 1e-9
    speedup = fresh_seconds / batched_seconds

    entry = {
        "suite": "batched_queries",
        "description": (
            "Five 2-fact queries scored against one scale-corpus entity "
            "(k=2 each): batched through one RefinementSession's shared "
            "bit-column cache vs. one fresh engine per query."
        ),
        "num_facts": num_facts,
        "k": k,
        "support": SCALE_SUPPORT,
        "num_queries": len(queries),
        "fresh_seconds": fresh_seconds,
        "batched_seconds": batched_seconds,
        "speedup_batched": speedup,
        "identical_selections": True,
    }
    _record_scenarios(
        {f"batched_queries/scale_n{num_facts}_s{SCALE_SUPPORT}_q{len(queries)}": entry}
    )
    # Sharing caches must never cost; the win grows with queries per entity.
    assert speedup > 0.9, entry


# -- persistent pools across rounds --------------------------------------------------


def _scripted_answers(task_ids, round_index):
    """Deterministic answers so every timed run merges the same posteriors."""
    return AnswerSet.from_mapping(
        {fact_id: (round_index + position) % 2 == 0
         for position, fact_id in enumerate(task_ids)}
    )


def _run_refinement_rounds(session, selector, rounds, k):
    """Select/merge ``rounds`` times on ``session``; return the task sequences."""
    task_sets = []
    for round_index in range(rounds):
        result = session.select(selector, k)
        task_sets.append(result.task_ids)
        session.merge(_scripted_answers(result.task_ids, round_index))
    return task_sets


def _persistent_pool_scenario(key, num_facts, support, rounds, k, assert_floor):
    """Time serial vs fork-per-call vs persistent-pool multi-round runs."""
    rng = np.random.default_rng(SEED)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    distribution = JointDistribution(
        tuple(f"f{i}" for i in range(num_facts)),
        dict(zip((int(mask) for mask in masks), probabilities)),
    )
    crowd = CrowdModel(ACCURACY)
    # Threshold zero forces every round's scan onto the pool, so the timing
    # isolates exactly what the persistent mode amortises: the per-round fork.
    policy = ParallelPolicy(workers=SCALE_WORKERS, parallel_threshold=0)
    cpus = os.cpu_count() or 1

    def run_serial():
        return _run_refinement_rounds(
            RefinementSession(distribution, crowd), GreedySelector(), rounds, k
        )

    def run_fork_per_call():
        # PR 4's path: the selector owns the policy, so every round's
        # selection forks (and tears down) its own pool.
        session = RefinementSession(distribution, crowd)
        return _run_refinement_rounds(
            session, GreedySelector(parallel=policy), rounds, k
        )

    def run_persistent():
        with RefinementSession(distribution, crowd, parallel=policy) as session:
            return _run_refinement_rounds(session, GreedySelector(), rounds, k)

    serial_sets = run_serial()
    per_call_sets = run_fork_per_call()
    persistent_sets = run_persistent()
    assert per_call_sets == serial_sets
    assert persistent_sets == serial_sets

    serial_seconds = best_of(run_serial, repeats=2)
    per_call_seconds = best_of(run_fork_per_call, repeats=2)
    persistent_seconds = best_of(run_persistent, repeats=2)
    speedup = per_call_seconds / persistent_seconds

    entry = {
        "suite": "parallel_persistent",
        "description": (
            f"{rounds}-round refinement run (k={k}) with every scan forced "
            "onto the pool: PR 4's fork-per-call selector (one pool per "
            "round) vs one session-owned persistent pool fed through the "
            "shared-memory snapshot ring.  Identical task sequences asserted "
            "against the serial session path."
        ),
        "num_facts": num_facts,
        "support": support,
        "rounds": rounds,
        "k": k,
        "workers": SCALE_WORKERS,
        "cpus": cpus,
        "serial_seconds": serial_seconds,
        "fork_per_call_seconds": per_call_seconds,
        "persistent_seconds": persistent_seconds,
        "fork_per_call_seconds_per_round": per_call_seconds / rounds,
        "persistent_seconds_per_round": persistent_seconds / rounds,
        "speedup_persistent_vs_fork_per_call": speedup,
        "identical_task_sequences": True,
    }
    _record_scenarios({key: entry})

    if assert_floor and cpus >= SCALE_WORKERS:
        assert speedup >= MIN_PERSISTENT_SPEEDUP, entry
    return entry


@pytest.mark.parallel
def test_persistent_pool_smoke():
    """Tiny persistent-pool scenario exercised by ``make bench-smoke``.

    Small enough for 2-CPU CI hosts; asserts only the equivalence contract
    and records the timings (no speedup floor at this size).
    """
    _persistent_pool_scenario(
        "parallel_persistent/smoke_n16_s4096_r3",
        num_facts=16,
        support=1 << 12,
        rounds=3,
        k=2,
        assert_floor=False,
    )


@pytest.mark.slow
@pytest.mark.parallel
def test_persistent_pool_amortises_fork_cost():
    """Multi-round run: the persistent pool must beat fork-per-call wall-clock."""
    _persistent_pool_scenario(
        f"parallel_persistent/rounds6_n24_s{1 << 16}_w{SCALE_WORKERS}",
        num_facts=24,
        support=1 << 16,
        rounds=6,
        k=2,
        assert_floor=True,
    )


# -- cross-entity fan-out ------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parallel
def test_parallel_entities_fan_out():
    """Lock-step experiment: entity fan-out vs the serial loop, identical curves."""
    corpus = generate_book_corpus(
        BookCorpusConfig(
            num_books=12, num_sources=14, max_sources_per_book=10, seed=SEED + 2
        )
    )
    problems = build_problems(
        corpus.database, corpus.gold, MajorityVote(), max_facts_per_entity=14
    )
    config = ExperimentConfig(
        selector="greedy", k=2, budget_per_entity=24, worker_accuracy=ACCURACY,
        seed=SEED,
    )
    fanned_config = replace(config, parallel_entities=SCALE_WORKERS)
    cpus = os.cpu_count() or 1

    serial_result = run_quality_experiment(problems, config)
    fanned_result = run_quality_experiment(problems, fanned_config)
    assert fanned_result.points == serial_result.points

    serial_seconds = best_of(lambda: run_quality_experiment(problems, config), repeats=2)
    fanned_seconds = best_of(lambda: run_quality_experiment(problems, fanned_config), repeats=2)
    speedup = serial_seconds / fanned_seconds

    entry = {
        "suite": "parallel_entities",
        "description": (
            f"Budget-{config.budget_per_entity} lock-step experiment over "
            f"{len(problems)} books: whole-entity fan-out across "
            f"{SCALE_WORKERS} fork workers vs the serial loop.  Curve points "
            "are asserted identical (same costs, utilities and scores); the "
            "wall-clock speedup is hardware-bound (recorded cpus)."
        ),
        "entities": len(problems),
        "budget_per_entity": config.budget_per_entity,
        "k": config.k,
        "entity_workers": SCALE_WORKERS,
        "cpus": cpus,
        "curve_points": len(serial_result.points),
        "serial_seconds": serial_seconds,
        "fanned_seconds": fanned_seconds,
        "speedup_entities": speedup,
        "identical_curves": True,
    }
    _record_scenarios(
        {f"parallel_entities/books{len(problems)}_b{config.budget_per_entity}"
         f"_w{SCALE_WORKERS}": entry}
    )

    if cpus >= SCALE_WORKERS:
        assert speedup >= MIN_ENTITY_SPEEDUP, entry
