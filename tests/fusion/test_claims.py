"""Unit tests for the claim / source data model."""

import pytest

from repro.exceptions import FusionError
from repro.fusion.claims import Claim, ClaimDatabase, Source


def sample_database():
    observations = [
        ("s1", "book1", "author_list", "Ada Lovelace"),
        ("s2", "book1", "author_list", "Ada Lovelace"),
        ("s3", "book1", "author_list", "A. Lovelace"),
        ("s1", "book2", "author_list", "Alan Turing"),
        ("s3", "book2", "author_list", "Alan Turing; John McCarthy"),
    ]
    return ClaimDatabase.from_observations(observations)


class TestSource:
    def test_valid_source(self):
        source = Source("s1", "eCampus")
        assert source.source_id == "s1"

    def test_empty_id_rejected(self):
        with pytest.raises(FusionError):
            Source("")


class TestClaim:
    def test_data_item_and_support(self):
        claim = Claim("c1", "book1", "author_list", "Ada", sources=frozenset({"s1", "s2"}))
        assert claim.data_item == ("book1", "author_list")
        assert claim.support == 2


class TestClaimDatabase:
    def test_observation_grouping(self):
        database = sample_database()
        assert len(database) == 4  # distinct (entity, attribute, value) triples
        assert database.num_sources == 3

    def test_claims_have_stable_generated_ids(self):
        claims = sample_database().claims()
        assert [claim.claim_id for claim in claims] == ["c1", "c2", "c3", "c4"]

    def test_support_counts_sources(self):
        database = sample_database()
        first = database.claims()[0]
        assert first.value == "Ada Lovelace"
        assert first.support == 2

    def test_data_items(self):
        database = sample_database()
        assert database.data_items() == (
            ("book1", "author_list"),
            ("book2", "author_list"),
        )

    def test_entities(self):
        assert sample_database().entities() == ("book1", "book2")

    def test_claims_for_entity(self):
        database = sample_database()
        book1_claims = database.claims_for("book1")
        assert len(book1_claims) == 2
        assert all(claim.entity == "book1" for claim in book1_claims)

    def test_claims_for_entity_and_attribute(self):
        database = sample_database()
        assert len(database.claims_for("book1", "author_list")) == 2
        assert database.claims_for("book1", "publisher") == ()

    def test_observations_of_source(self):
        database = sample_database()
        claims = database.observations_of("s3")
        assert {claim.entity for claim in claims} == {"book1", "book2"}

    def test_observations_of_unknown_source(self):
        with pytest.raises(FusionError):
            sample_database().observations_of("nope")

    def test_iteration_yields_claims(self):
        database = sample_database()
        assert len(list(database)) == len(database)

    def test_add_observation_validation(self):
        database = ClaimDatabase()
        with pytest.raises(FusionError):
            database.add_observation("s1", "", "author_list", "x")
        with pytest.raises(FusionError):
            database.add_observation("s1", "book1", "author_list", "")

    def test_duplicate_observation_is_idempotent(self):
        database = ClaimDatabase()
        database.add_observation("s1", "e", "a", "v")
        database.add_observation("s1", "e", "a", "v")
        assert len(database) == 1
        assert database.claims()[0].support == 1

    def test_add_source_idempotent(self):
        database = ClaimDatabase()
        database.add_source("s1", "first name")
        database.add_source("s1", "second name")
        assert database.num_sources == 1
        assert database.sources()[0].name == "first name"
