"""Client-side resilience: reconnects, backoff, and the retry taxonomy.

The client may resend a request only when doing so cannot double-apply it:
server-declared retry-safe errors (nothing changed server-side) for every
operation, transport failures only for idempotent reads after reconnecting.
State-changing calls that lose their connection surface a typed
:class:`TransportError` carrying the session id — these tests also show
*why*: the lost response may cover a merge that did apply.
"""

import asyncio

import pytest

from repro.core.crowd import CrowdModel
from repro.service import (
    NO_RETRY,
    DeadlineExceededError,
    RefinementService,
    RetryPolicy,
    ServiceClient,
    TransportError,
    serve,
)
from repro.service.transport import bound_port
from repro.testing import faults
from repro.testing.faults import FaultPlan

from tests.core.selection.test_persistent_pool import dense_distribution


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


async def _with_server(scenario):
    service = RefinementService()
    server = await serve(service, port=0)
    try:
        return await scenario(service, bound_port(server))
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)

    def test_delay_grows_exponentially_within_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, multiplier=2.0, jitter=0.5)
        for attempt, nominal in ((0, 0.1), (1, 0.2), (2, 0.4), (5, 1.0)):
            for _ in range(20):
                delay = policy.delay(attempt)
                assert nominal * 0.5 - 1e-12 <= delay <= nominal * 1.5 + 1e-12

    def test_zero_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.05, jitter=0.0)
        assert policy.delay(0) == pytest.approx(0.05)
        assert policy.delay(1) == pytest.approx(0.1)

    def test_no_retry_sentinel(self):
        assert NO_RETRY.max_retries == 0


def test_idempotent_read_survives_a_dropped_connection():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=50)
        client = await ServiceClient.connect(
            "127.0.0.1", port, retry=RetryPolicy(max_retries=2, base_delay=0.01)
        )
        async with client:
            created = await client.create_session(prior, CrowdModel(0.8), budget=6)
            # Drop the connection midway through the next response (the
            # select): the client must reconnect and transparently resend.
            with faults.injected(
                FaultPlan(drop_connection_after_responses=1, drop_limit=1)
            ):
                reply = await client.select_next(created.session_id, batch=2)
            assert reply.task_ids
            assert client.reconnects == 1
            assert client.retries == 1
            # The resent request carried its attempt counter onto the wire.
            assert service.metrics()["recovery"]["client_retries"] == 1

    run(_with_server(scenario))


def test_state_changing_call_surfaces_transport_error_with_session_id():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=51)
        async with await ServiceClient.connect("127.0.0.1", port) as client:
            created = await client.create_session(prior, CrowdModel(0.8), budget=6)
            answers = {prior.fact_ids[0]: True}
            with faults.injected(
                FaultPlan(drop_connection_after_responses=1, drop_limit=1)
            ):
                with pytest.raises(TransportError) as excinfo:
                    await client.post_answers(created.session_id, answers)
            assert excinfo.value.session_id == created.session_id
            assert not excinfo.value.retry_safe
            assert client.retries == 0

            # The lost response covered a merge that DID apply — exactly why
            # the client must not blind-resend state-changing requests.
            view = await client.get_posterior(created.session_id)
            assert view.rounds_merged == 1
            assert client.reconnects == 1

    run(_with_server(scenario))


def test_no_retry_policy_disables_transparent_reconnect_retries():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=52)
        client = await ServiceClient.connect("127.0.0.1", port, retry=NO_RETRY)
        async with client:
            created = await client.create_session(prior, CrowdModel(0.8), budget=6)
            with faults.injected(
                FaultPlan(drop_connection_after_responses=1, drop_limit=1)
            ):
                with pytest.raises(TransportError):
                    await client.select_next(created.session_id)
            assert client.retries == 0

    run(_with_server(scenario))


def test_retry_safe_errors_are_retried_with_backoff_until_exhausted():
    async def scenario(service, port):
        prior = dense_distribution(6, 48, seed=53)
        client = await ServiceClient.connect(
            "127.0.0.1",
            port,
            retry=RetryPolicy(max_retries=2, base_delay=0.01, max_delay=0.02),
        )
        async with client:
            created = await client.create_session(prior, CrowdModel(0.8), budget=6)
            # Every attempt's scan outlives its deadline: the server answers
            # each with retry-safe deadline_exceeded, the client backs off and
            # resends until its budget runs out, then surfaces the error.
            with faults.injected(FaultPlan(delay_select_seconds=0.5)):
                with pytest.raises(DeadlineExceededError):
                    await client.select_next(created.session_id, deadline_ms=50)
            assert client.retries == 2
            assert client.reconnects == 0
            assert service.metrics()["recovery"]["client_retries"] == 2

    run(_with_server(scenario))


def test_wrapped_stream_clients_cannot_reconnect():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=54)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        # Built from a caller-supplied stream pair: no address to dial again.
        async with ServiceClient(reader, writer) as client:
            created = await client.create_session(prior, CrowdModel(0.8), budget=6)
            with faults.injected(
                FaultPlan(drop_connection_after_responses=1, drop_limit=1)
            ):
                with pytest.raises(TransportError):
                    await client.select_next(created.session_id)
            # Still no address after the drop: the next call fails fast
            # instead of hanging on a dead stream.
            with pytest.raises(TransportError, match="no address"):
                await client.ping()

    run(_with_server(scenario))
