"""Selection hot-path benchmark: seed (pure-Python) vs. vectorized engine.

Times one greedy selection round — the workload behind Table V — on growing
fact sets, comparing three implementations of the same algorithm:

* ``greedy_reference`` — the seed's ``O(n · k · 2^k · |O|)`` dict arithmetic,
* ``greedy``           — the vectorized incremental engine,
* ``greedy_lazy``      — the engine plus CELF lazy evaluation.

All three must select the *identical* task set; the engine paths must beat
the reference by at least the acceptance-floor factor on the largest
scenario.

Two follow-on suites ride in the same artifact:

* **heterogeneous channels** — the per-bit 2×2 channel generalisation must
  cost about the same as the uniform BSC path (same asymptotics, same
  kernels) and degenerate to the identical selection when all accuracies
  are equal;
* **session reuse** — a full multi-round run (Table-V configuration:
  20 facts, sparse support, budget 60) through one persistent
  :class:`RefinementSession` vs. the historical rebuild-per-round loop,
  which must select the identical task sequence while being measurably
  faster end to end.

Every run persists ``BENCH_selection.json`` under ``benchmarks/results/`` so
future PRs can track the perf trajectory.
"""

import json
import time

import numpy as np

from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.merging import merge_answers
from repro.core.selection import get_selector
from repro.core.utility import pws_quality
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.worker import WorkerPool

from _bench_utils import RESULTS_DIR

NUM_FACTS_GRID = (10, 14, 18)
K = 8
SUPPORT = 512
ACCURACY = 0.8
SEED = 0

#: The acceptance floor: the engine must beat the seed path by at least this
#: factor on the largest scenario (in practice it is orders of magnitude).
MIN_SPEEDUP = 5.0

#: Heterogeneous channels may cost at most this factor over the uniform path
#: (in practice they are within ~1.3x: identical kernels, plus per-candidate
#: noise-entropy bookkeeping).
MAX_HETEROGENEOUS_OVERHEAD = 3.0

#: Session reuse must beat rebuild-per-round end to end by at least this
#: factor on the large-support Table-V-style run (measured ~1.5x).
MIN_SESSION_SPEEDUP = 1.1


def _load_artifact() -> dict:
    """Read the shared benchmark artifact, creating the skeleton if absent."""
    path = RESULTS_DIR / "BENCH_selection.json"
    if path.exists():
        return json.loads(path.read_text())
    return {
        "benchmark": "selection_hotpath",
        "description": (
            "One greedy selection round (k=8) on sparse joint distributions: "
            "seed pure-Python path vs. vectorized incremental engine vs. CELF "
            "lazy greedy. Times are best-of-run wall seconds."
        ),
        "scenarios": [],
    }


def _write_artifact(artifact: dict) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_selection.json").write_text(
        json.dumps(artifact, indent=2) + "\n"
    )


def sparse_distribution(num_facts: int, seed: int = SEED) -> JointDistribution:
    rng = np.random.default_rng(seed)
    size = min(SUPPORT, 1 << num_facts)
    masks = rng.choice(1 << num_facts, size=size, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=size)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def time_selector(name: str, distribution: JointDistribution, crowd: CrowdModel, runs: int):
    """Best-of-``runs`` wall time and the (stable) selection result."""
    best = float("inf")
    result = None
    for _ in range(runs):
        selector = get_selector(name)
        started = time.perf_counter()
        result = selector.select(distribution, crowd, K)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_selection_hotpath_speedup():
    crowd = CrowdModel(ACCURACY)
    scenarios = []
    for num_facts in NUM_FACTS_GRID:
        distribution = sparse_distribution(num_facts)
        reference_seconds, reference = time_selector(
            "greedy_reference", distribution, crowd, runs=1
        )
        greedy_seconds, greedy = time_selector("greedy", distribution, crowd, runs=3)
        lazy_seconds, lazy = time_selector("greedy_lazy", distribution, crowd, runs=3)

        assert greedy.task_ids == reference.task_ids
        assert lazy.task_ids == reference.task_ids
        assert abs(greedy.objective - reference.objective) < 1e-9

        scenarios.append(
            {
                "num_facts": num_facts,
                "k": K,
                "support": SUPPORT,
                "accuracy": ACCURACY,
                "reference_seconds": reference_seconds,
                "greedy_seconds": greedy_seconds,
                "lazy_seconds": lazy_seconds,
                "speedup_greedy": reference_seconds / greedy_seconds,
                "speedup_lazy": reference_seconds / lazy_seconds,
                "selected": list(greedy.task_ids),
                "identical_selections": True,
                "lazy_skipped_evaluations": lazy.stats.skipped_evaluations,
                "greedy_candidate_evaluations": greedy.stats.candidate_evaluations,
                "lazy_candidate_evaluations": lazy.stats.candidate_evaluations,
            }
        )

    artifact = _load_artifact()
    artifact["scenarios"] = scenarios
    _write_artifact(artifact)

    largest = scenarios[-1]
    assert largest["num_facts"] == max(NUM_FACTS_GRID)
    assert largest["speedup_greedy"] >= MIN_SPEEDUP, largest
    assert largest["speedup_lazy"] >= MIN_SPEEDUP, largest


class _ForcedHeterogeneous(PerFactChannelModel):
    """Equal-accuracy channels that refuse the uniform fast path.

    ``PerFactChannelModel`` reports a ``uniform_accuracy`` when every channel
    is equal, which would route the degeneration check below through the very
    BSC code path it is supposed to be compared against; hiding the uniform
    accuracy forces the heterogeneous kernels to run.
    """

    @property
    def uniform_accuracy(self):
        return None


def test_heterogeneous_channels_cost_like_uniform():
    """Per-bit 2×2 channels: same selection cost, identical uniform limit."""
    num_facts = max(NUM_FACTS_GRID)
    distribution = sparse_distribution(num_facts)
    uniform = CrowdModel(ACCURACY)
    rng = np.random.default_rng(SEED + 1)
    heterogeneous = PerFactChannelModel(
        ACCURACY,
        {
            f"f{i}": float(accuracy)
            for i, accuracy in enumerate(
                rng.uniform(0.65, 0.95, size=num_facts).round(3)
            )
        },
    )
    degenerate = _ForcedHeterogeneous(
        ACCURACY, {f"f{i}": ACCURACY for i in range(num_facts)}
    )

    uniform_seconds, uniform_result = time_selector(
        "greedy", distribution, uniform, runs=3
    )
    hetero_seconds, hetero_result = time_selector(
        "greedy", distribution, heterogeneous, runs=3
    )
    _, degenerate_result = time_selector("greedy", distribution, degenerate, runs=1)

    # Equal-accuracy channels are the uniform BSC path, bit for bit.
    assert degenerate_result.task_ids == uniform_result.task_ids
    assert degenerate_result.objective == uniform_result.objective
    assert len(hetero_result.task_ids) == K
    overhead = hetero_seconds / uniform_seconds

    artifact = _load_artifact()
    artifact["heterogeneous_channels"] = {
        "description": (
            "One greedy round (k=8) under per-fact channel accuracies drawn "
            "from U(0.65, 0.95) vs. the uniform Pc=0.8 BSC path."
        ),
        "num_facts": num_facts,
        "k": K,
        "support": SUPPORT,
        "uniform_seconds": uniform_seconds,
        "heterogeneous_seconds": hetero_seconds,
        "overhead_factor": overhead,
        "uniform_selected": list(uniform_result.task_ids),
        "heterogeneous_selected": list(hetero_result.task_ids),
        "equal_accuracy_channels_match_uniform": True,
    }
    _write_artifact(artifact)

    assert overhead <= MAX_HETEROGENEOUS_OVERHEAD, artifact["heterogeneous_channels"]


def _session_scenario_distribution(num_facts: int, support: int) -> JointDistribution:
    rng = np.random.default_rng(SEED)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


def test_session_reuse_beats_rebuild_per_round():
    """Full Table-V-style runs: persistent session vs. rebuild-per-round."""
    num_facts = 20
    budget = 60
    crowd = CrowdModel(ACCURACY)

    def make_platform(gold):
        return SimulatedPlatform(
            ground_truth=gold,
            workers=WorkerPool.homogeneous(25, ACCURACY, seed=42),
        )

    def run_fresh(distribution, gold, k):
        """The pre-session loop: fresh selector engine + dict round-trip per round."""
        platform = make_platform(gold)
        current = distribution
        remaining = budget
        task_sets = []
        while remaining > 0:
            size = min(k, remaining, current.num_facts)
            selection = get_selector("greedy").select(current, crowd, size)
            if not selection.task_ids:
                break
            answers = platform.collect(selection.task_ids)
            pws_quality(current)
            current = merge_answers(current, answers, crowd)
            pws_quality(current)
            remaining -= len(selection.task_ids)
            task_sets.append(selection.task_ids)
        return task_sets

    def run_session(distribution, gold, k):
        platform = make_platform(gold)
        engine = CrowdFusionEngine(
            get_selector("greedy"), crowd, budget=budget, tasks_per_round=k
        )
        result = engine.run(distribution, platform)
        return [record.task_ids for record in result.rounds]

    def best_of(callable_, runs=5):
        best = float("inf")
        for _ in range(runs):
            started = time.perf_counter()
            callable_()
            best = min(best, time.perf_counter() - started)
        return best

    scenarios = []
    for support, k in ((512, 1), (512, 3), (2048, 1), (2048, 3)):
        distribution = _session_scenario_distribution(num_facts, support)
        gold = {
            fact_id: index % 2 == 0
            for index, fact_id in enumerate(distribution.fact_ids)
        }
        fresh_sets = run_fresh(distribution, gold, k)
        session_sets = run_session(distribution, gold, k)
        assert session_sets == fresh_sets, (support, k)

        fresh_seconds = best_of(lambda: run_fresh(distribution, gold, k))
        session_seconds = best_of(lambda: run_session(distribution, gold, k))
        scenarios.append(
            {
                "num_facts": num_facts,
                "support": support,
                "k": k,
                "budget": budget,
                "rounds": len(session_sets),
                "fresh_seconds": fresh_seconds,
                "session_seconds": session_seconds,
                "speedup_session": fresh_seconds / session_seconds,
                "identical_task_sequences": True,
            }
        )

    artifact = _load_artifact()
    artifact["session_reuse"] = {
        "description": (
            "Full multi-round refinement (budget 60, Pc=0.8, 20 facts): one "
            "persistent RefinementSession reweighted across rounds vs. the "
            "historical rebuild-engine-per-round loop. Times are best-of-run "
            "end-to-end wall seconds."
        ),
        "scenarios": scenarios,
    }
    _write_artifact(artifact)

    headline = max(scenarios, key=lambda row: row["speedup_session"])
    assert headline["speedup_session"] >= MIN_SESSION_SPEEDUP, scenarios
    assert all(row["speedup_session"] > 0.9 for row in scenarios), scenarios
