"""Claim / source data model for machine-only fusion.

A *data item* is an ``(entity, attribute)`` pair — e.g. ``(book-123,
"author list")``.  A *claim* is a distinct value asserted for a data item by
one or more *sources*.  Fusion methods score claims; CrowdFusion then treats
each claim as a binary fact ("is this claimed value correct?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.exceptions import FusionError


@dataclass(frozen=True)
class Source:
    """A data source (web site, feed, provider)."""

    source_id: str
    name: str = ""

    def __post_init__(self) -> None:
        if not self.source_id:
            raise FusionError("source_id must be a non-empty string")


@dataclass(frozen=True)
class Claim:
    """A distinct value claimed for one data item.

    Attributes
    ----------
    claim_id:
        Unique identifier, assigned by the :class:`ClaimDatabase`.
    entity:
        The entity the claim is about (e.g. a book ISBN).
    attribute:
        The attribute being claimed (e.g. ``"author_list"``).
    value:
        The claimed value, compared for exact equality between sources.
    sources:
        The ids of the sources asserting exactly this value.
    """

    claim_id: str
    entity: str
    attribute: str
    value: str
    sources: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def data_item(self) -> Tuple[str, str]:
        """The ``(entity, attribute)`` pair this claim belongs to."""
        return (self.entity, self.attribute)

    @property
    def support(self) -> int:
        """Number of sources asserting this claim."""
        return len(self.sources)


class ClaimDatabase:
    """A table of source observations, grouped into distinct claims.

    Observations are added one at a time; the database deduplicates values
    per data item and tracks which sources support each distinct value.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, Source] = {}
        # (entity, attribute, value) -> set of source ids
        self._observations: Dict[Tuple[str, str, str], Set[str]] = {}
        # insertion order of distinct (entity, attribute, value) triples
        self._order: List[Tuple[str, str, str]] = []

    # -- building -----------------------------------------------------------------

    def add_source(self, source_id: str, name: str = "") -> Source:
        """Register a source (idempotent)."""
        if source_id not in self._sources:
            self._sources[source_id] = Source(source_id=source_id, name=name or source_id)
        return self._sources[source_id]

    def add_observation(
        self, source_id: str, entity: str, attribute: str, value: str
    ) -> None:
        """Record that ``source_id`` claims ``value`` for ``(entity, attribute)``."""
        if not entity or not attribute:
            raise FusionError("entity and attribute must be non-empty")
        if not value:
            raise FusionError("claimed value must be non-empty")
        self.add_source(source_id)
        key = (entity, attribute, value)
        if key not in self._observations:
            self._observations[key] = set()
            self._order.append(key)
        self._observations[key].add(source_id)

    # -- inspection -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[Claim]:
        return iter(self.claims())

    @property
    def num_sources(self) -> int:
        """Number of registered sources."""
        return len(self._sources)

    def sources(self) -> Tuple[Source, ...]:
        """Registered sources, in registration order."""
        return tuple(self._sources.values())

    def claims(self) -> Tuple[Claim, ...]:
        """Distinct claims in insertion order, with generated ids ``c1, c2, ...``."""
        result = []
        for index, (entity, attribute, value) in enumerate(self._order, start=1):
            result.append(
                Claim(
                    claim_id=f"c{index}",
                    entity=entity,
                    attribute=attribute,
                    value=value,
                    sources=frozenset(self._observations[(entity, attribute, value)]),
                )
            )
        return tuple(result)

    def data_items(self) -> Tuple[Tuple[str, str], ...]:
        """Distinct ``(entity, attribute)`` pairs, in first-seen order."""
        seen: List[Tuple[str, str]] = []
        for entity, attribute, _value in self._order:
            if (entity, attribute) not in seen:
                seen.append((entity, attribute))
        return tuple(seen)

    def claims_for(self, entity: str, attribute: Optional[str] = None) -> Tuple[Claim, ...]:
        """Claims about one entity (optionally restricted to one attribute)."""
        return tuple(
            claim
            for claim in self.claims()
            if claim.entity == entity and (attribute is None or claim.attribute == attribute)
        )

    def observations_of(self, source_id: str) -> Tuple[Claim, ...]:
        """Every claim asserted by ``source_id``."""
        if source_id not in self._sources:
            raise FusionError(f"unknown source {source_id!r}")
        return tuple(claim for claim in self.claims() if source_id in claim.sources)

    def entities(self) -> Tuple[str, ...]:
        """Distinct entities, in first-seen order."""
        seen: List[str] = []
        for entity, _attribute, _value in self._order:
            if entity not in seen:
                seen.append(entity)
        return tuple(seen)

    @classmethod
    def from_observations(
        cls, observations: Iterable[Tuple[str, str, str, str]]
    ) -> "ClaimDatabase":
        """Build a database from ``(source_id, entity, attribute, value)`` tuples."""
        database = cls()
        for source_id, entity, attribute, value in observations:
            database.add_observation(source_id, entity, attribute, value)
        return database
