"""Common interface for task-selection algorithms."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.exceptions import SelectionError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.selection.session import RefinementSession

#: Objective improvements smaller than this are treated as ties; the earliest
#: candidate wins.  Keeping one shared tolerance makes every greedy variant
#: break ties identically regardless of its numerical evaluation path.
TIE_TOLERANCE = 1e-12


@dataclass
class SelectionStats:
    """Bookkeeping produced by one call to :meth:`TaskSelector.select`.

    Attributes
    ----------
    candidate_evaluations:
        Number of candidate task sets whose objective was actually computed.
    pruned_candidates:
        Number of candidate evaluations *skipped* because the fact was already
        in the pruned set (work saved by Theorem 3).
    pruned_facts:
        Number of distinct facts the pruning rule permanently eliminated.
    elapsed_seconds:
        Wall-clock time spent inside the selector.
    iterations:
        Number of greedy iterations performed (0 for non-iterative selectors).
    cache_hits:
        Number of times an evaluation was served from incremental state reuse
        (the engine's cached partition/channel tables) rather than recomputed
        from the raw support.
    skipped_evaluations:
        Number of candidate evaluations avoided entirely by lazy (CELF-style)
        submodular bounds: the candidate's stale gain already proved it could
        not win the iteration.
    workers:
        Worker processes forked for this selection (0 when every candidate
        scan ran serially — including parallel-configured selections that the
        auto-serial threshold kept in process).
    chunk_size:
        Candidates per dispatched chunk of the most recent parallel scan
        (0 when no scan went parallel).
    parallel_evaluations:
        Number of candidate evaluations served by pool workers rather than
        the selecting process (a subset of ``candidate_evaluations``).
    kernel:
        The resolved kernel tier (``compiled``/``numpy``/``reference``) the
        engine scored candidates with — see :mod:`repro.core.kernels`.
        Empty for selectors that never touch an entropy engine.
    """

    candidate_evaluations: int = 0
    pruned_candidates: int = 0
    pruned_facts: int = 0
    elapsed_seconds: float = 0.0
    iterations: int = 0
    cache_hits: int = 0
    skipped_evaluations: int = 0
    workers: int = 0
    chunk_size: int = 0
    parallel_evaluations: int = 0
    kernel: str = ""


@dataclass(frozen=True)
class SelectionResult:
    """The outcome of one task-selection call.

    Attributes
    ----------
    task_ids:
        The selected fact ids, in selection order.
    objective:
        The achieved objective value — the answer-set entropy ``H(T)`` for the
        standard problem, or the query-based utility for FOI selection.
    stats:
        Performance counters for the selection run.
    """

    task_ids: Tuple[str, ...]
    objective: float
    stats: SelectionStats = field(default_factory=SelectionStats)

    def __len__(self) -> int:
        return len(self.task_ids)


class TaskSelector(abc.ABC):
    """Abstract task selector: pick ``k`` facts to ask the crowd.

    Concrete selectors only implement :meth:`_select`; the public
    :meth:`select` method performs argument validation and timing so that
    every implementation reports comparable statistics.
    """

    #: Short machine-readable identifier used by the registry and benchmarks.
    name: str = "abstract"

    @staticmethod
    def _candidate_pool(
        fact_ids: Sequence[str], k: int, exclude: Sequence[str]
    ) -> "Tuple[List[str], int]":
        """Shared argument validation: the filtered candidate list and capped ``k``."""
        if k <= 0:
            raise SelectionError(f"k must be positive, got {k}")
        excluded = set(exclude)
        unknown = excluded.difference(fact_ids)
        if unknown:
            raise SelectionError(f"cannot exclude unknown facts: {sorted(unknown)}")
        candidates = [fact_id for fact_id in fact_ids if fact_id not in excluded]
        if not candidates:
            raise SelectionError("no candidate facts remain after exclusion")
        return candidates, min(k, len(candidates))

    def select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        exclude: Sequence[str] = (),
    ) -> SelectionResult:
        """Select up to ``k`` facts (tasks) to ask the crowd.

        Parameters
        ----------
        distribution:
            The current joint output distribution over the fact set.
        crowd:
            Channel model used to evaluate answer-set entropies (a uniform
            :class:`CrowdModel` or any heterogeneous :class:`ChannelModel`).
        k:
            Maximum number of tasks to select this round.  Selectors may
            return fewer tasks (``K* < k``) if no further gain is possible.
        exclude:
            Fact ids that must not be selected (e.g. already resolved facts).
        """
        candidates, k = self._candidate_pool(distribution.fact_ids, k, exclude)
        started = time.perf_counter()
        result = self._select(distribution, crowd, k, candidates)
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    def select_with_session(
        self,
        session: "RefinementSession",
        k: int,
        exclude: Sequence[str] = (),
    ) -> SelectionResult:
        """Select against a persistent :class:`RefinementSession`.

        Session-aware selectors (the engine-backed greedy family) score
        candidates directly on the session's warm engine; the base-class
        fallback materialises the session's posterior and runs the ordinary
        :meth:`select` path, so *every* selector works with sessions.
        """
        candidates, k = self._candidate_pool(session.fact_ids, k, exclude)
        started = time.perf_counter()
        result = self._select_with_session(session, k, candidates)
        result.stats.elapsed_seconds = time.perf_counter() - started
        return result

    @abc.abstractmethod
    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        """Selector-specific implementation; ``candidates`` is already filtered."""

    def _select_with_session(
        self,
        session: "RefinementSession",
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        """Session-path implementation; overridden by engine-backed selectors."""
        return self._select(session.distribution, session.channel, k, candidates)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def best_single_task(
    distribution: JointDistribution,
    crowd: ChannelModel,
    candidates: Sequence[str],
    selected: Sequence[str],
) -> Optional[Tuple[str, float]]:
    """Return the candidate maximising ``H(T ∪ {f})`` and that entropy.

    Shared helper for greedy-style selectors; returns ``None`` when
    ``candidates`` is empty.
    """
    best_id: Optional[str] = None
    best_entropy = float("-inf")
    for fact_id in candidates:
        entropy = crowd.task_entropy(distribution, list(selected) + [fact_id])
        if entropy > best_entropy + TIE_TOLERANCE:
            best_entropy = entropy
            best_id = fact_id
    if best_id is None:
        return None
    return best_id, best_entropy
