"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.selector == "greedy_prune_pre"
        assert args.k == 2
        assert args.allocation == "fixed"

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--selector", "magic"])

    def test_crowd_model_choices(self):
        args = build_parser().parse_args(["experiment"])
        assert args.crowd_model == "uniform"
        args = build_parser().parse_args(["experiment", "--crowd-model", "calibrated"])
        assert args.crowd_model == "calibrated"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--crowd-model", "psychic"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.pools == 1 and args.max_pending == 8
        assert args.workers is None

    def test_serve_invalid_workers_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--workers", "0"])


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--budget", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Best 2 tasks" in output
        assert "Utility" in output

    def test_fusion_compares_all_methods(self, capsys):
        assert main(["fusion", "--books", "8", "--sources", "10", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        for method in ("majority", "crh", "truthfinder", "bayesian"):
            assert method in output

    def test_experiment_prints_initial_and_final(self, capsys):
        code = main(
            [
                "experiment", "--books", "6", "--sources", "10", "--seed", "2",
                "--budget", "6", "--k", "2", "--pc", "0.9",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "initial" in output
        assert "final" in output

    def test_experiment_with_curve_and_allocation(self, capsys):
        code = main(
            [
                "experiment", "--books", "6", "--sources", "10", "--seed", "2",
                "--budget", "6", "--allocation", "entropy", "--curve",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "allocation entropy" in output
        assert "F1:" in output

    def test_experiment_with_difficulty_crowd_model(self, capsys):
        code = main(
            [
                "experiment", "--books", "6", "--sources", "10", "--seed", "2",
                "--budget", "6", "--crowd-model", "difficulty",
            ]
        )
        assert code == 0
        assert "crowd model difficulty" in capsys.readouterr().out

    def test_timing_outputs_selector_rows(self, capsys):
        code = main(
            [
                "timing", "--books", "6", "--sources", "10", "--seed", "4",
                "--selectors", "greedy_prune_pre", "--k", "1", "2",
                "--entities", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "greedy_prune_pre" in output
        assert "mean seconds" in output


class TestParallelFlags:
    """The parallel runtime flags: validation at the parser and config layers."""

    def test_negative_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--workers", "-1"])

    def test_zero_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--workers", "0"])

    def test_non_integer_workers_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--workers", "two"])

    def test_negative_parallel_threshold_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--parallel-threshold", "-5"])

    def test_nonpositive_parallel_entities_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--parallel-entities", "0"])

    def test_parallel_flag_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.workers is None
        assert args.parallel_threshold is None
        assert args.persistent_pool is False
        assert args.parallel_entities is None

    def test_persistent_pool_without_workers_is_a_clean_error(self, capsys):
        code = main(
            ["experiment", "--books", "4", "--sources", "8", "--persistent-pool"]
        )
        assert code == 2
        assert "persistent_pool requires workers" in capsys.readouterr().err

    def test_workers_and_parallel_entities_conflict_is_a_clean_error(self, capsys):
        code = main(
            [
                "experiment", "--books", "4", "--sources", "8",
                "--workers", "2", "--parallel-entities", "2",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err


@pytest.mark.parallel
class TestParallelCommands:
    def test_experiment_with_persistent_pool(self, capsys):
        code = main(
            [
                "experiment", "--books", "4", "--sources", "8", "--seed", "2",
                "--budget", "4", "--workers", "2", "--persistent-pool",
            ]
        )
        assert code == 0
        assert "workers 2 (persistent pool)" in capsys.readouterr().out

    def test_experiment_with_parallel_entities(self, capsys):
        code = main(
            [
                "experiment", "--books", "4", "--sources", "8", "--seed", "2",
                "--budget", "4", "--parallel-entities", "2",
            ]
        )
        assert code == 0
        assert "2 entity workers" in capsys.readouterr().out
