"""Unit tests for author-list corruption helpers."""

import numpy as np
import pytest

from repro.datasets.corruption import (
    add_organization,
    format_author_list,
    misspell_name,
    reorder_authors,
    same_author_list,
    swap_author,
)
from repro.exceptions import DatasetError

AUTHORS = ["Catherine Courage", "Kathy Baxter"]


class TestFormatting:
    def test_format_author_list(self):
        assert format_author_list(AUTHORS) == "Catherine Courage; Kathy Baxter"

    def test_empty_list_rejected(self):
        with pytest.raises(DatasetError):
            format_author_list([])


class TestReorder:
    def test_same_people_different_order(self):
        rng = np.random.default_rng(0)
        reordered = reorder_authors(AUTHORS, rng)
        assert sorted(reordered) == sorted(AUTHORS)
        assert reordered != AUTHORS

    def test_single_author_unchanged(self):
        assert reorder_authors(["Pete Loshin"]) == ["Pete Loshin"]

    def test_reordered_list_is_still_gold_true(self):
        rng = np.random.default_rng(1)
        assert same_author_list(reorder_authors(AUTHORS, rng), AUTHORS)


class TestMisspell:
    def test_misspelling_changes_the_name(self):
        rng = np.random.default_rng(2)
        assert misspell_name("Pete Loshin", rng) != "Pete Loshin"

    def test_empty_name_rejected(self):
        with pytest.raises(DatasetError):
            misspell_name("")

    def test_misspelled_author_list_is_gold_false(self):
        rng = np.random.default_rng(3)
        corrupted = [misspell_name(AUTHORS[0], rng), AUTHORS[1]]
        if corrupted[0] != AUTHORS[0]:
            assert not same_author_list(corrupted, AUTHORS)


class TestAddOrganization:
    def test_appends_affiliation_to_one_author(self):
        rng = np.random.default_rng(4)
        corrupted = add_organization(AUTHORS, rng)
        assert len(corrupted) == len(AUTHORS)
        assert any("(" in name for name in corrupted)

    def test_result_is_gold_false(self):
        rng = np.random.default_rng(5)
        assert not same_author_list(add_organization(AUTHORS, rng), AUTHORS)


class TestSwapAuthor:
    def test_replaces_exactly_one_author(self):
        rng = np.random.default_rng(6)
        pool = ["Donald Knuth", "Grace Hopper"]
        swapped = swap_author(AUTHORS, pool, rng)
        assert len(swapped) == len(AUTHORS)
        assert sum(1 for name in swapped if name not in AUTHORS) == 1

    def test_empty_pool_rejected(self):
        with pytest.raises(DatasetError):
            swap_author(AUTHORS, [])

    def test_result_is_gold_false(self):
        rng = np.random.default_rng(7)
        swapped = swap_author(AUTHORS, ["Donald Knuth"], rng)
        assert not same_author_list(swapped, AUTHORS)


class TestSameAuthorList:
    def test_order_insensitive(self):
        assert same_author_list(["B", "A"], ["A", "B"])

    def test_different_people_detected(self):
        assert not same_author_list(["A", "B"], ["A", "C"])

    def test_different_lengths_detected(self):
        assert not same_author_list(["A"], ["A", "B"])
