"""Calibration ablation (Section V-C discussion).

The paper observes that the crowd's true accuracy was ≈ 0.86, that assuming
``Pc = 1`` freezes early mistakes permanently, and that under-estimating the
crowd slows convergence.  This benchmark fixes the workers' real accuracy at
0.86 and sweeps the accuracy the system *assumes*, reporting final F1 and
utility for each assumption.
"""

import pytest

from repro.evaluation.experiment import ExperimentConfig, run_quality_experiment
from repro.evaluation.reporting import format_table

from _bench_utils import write_result

TRUE_ACCURACY = 0.86
ASSUMED = (0.6, 0.7, 0.86, 0.95, 1.0)
BUDGET = 20
K = 2

_RESULTS = {}


def _run(problems, assumed):
    config = ExperimentConfig(
        selector="greedy_prune_pre",
        k=K,
        budget_per_entity=BUDGET,
        worker_accuracy=TRUE_ACCURACY,
        assumed_accuracy=assumed,
        use_difficulties=True,
        seed=53,
    )
    return run_quality_experiment(problems, config)


@pytest.mark.parametrize("assumed", ASSUMED, ids=[f"assumed{a}" for a in ASSUMED])
def test_calibration_sweep(benchmark, book_problems, assumed):
    """Benchmark one refinement run per assumed Pc value."""
    result = benchmark.pedantic(
        _run, args=(book_problems, assumed), rounds=1, iterations=1, warmup_rounds=0
    )
    _RESULTS[assumed] = result
    assert result.final_point.cost > 0


def test_calibration_report_and_shape(benchmark):
    """Persist the sweep and assert that a well-calibrated Pc is best."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < len(ASSUMED):
        pytest.skip("calibration benchmarks did not run")

    rows = [
        [assumed, result.final_point.f1, result.final_point.utility]
        for assumed, result in sorted(_RESULTS.items())
    ]
    write_result(
        "ablation_calibration.txt",
        format_table(
            ["assumed Pc (true 0.86)", "final F1", "final utility"],
            rows,
            float_format="{:.3f}",
        ),
    )

    calibrated = _RESULTS[0.86].final_point
    pessimistic = _RESULTS[0.6].final_point
    blind = _RESULTS[1.0].final_point
    # The calibrated assumption dominates a badly pessimistic one on F1.
    assert calibrated.f1 >= pessimistic.f1 - 0.02
    # Blind trust (Pc = 1) does not beat the calibrated assumption on F1:
    # a single wrong worker answer becomes permanent.
    assert calibrated.f1 >= blind.f1 - 0.02
