"""Deterministic fault injection for the self-healing runtime.

The supervised parallel runtime and the refinement service both promise to
recover from failures that are awkward to produce on demand: a fork worker
OOM-killed mid-scan, a dispatch that never returns, a generation header
corrupted in flight, a TCP connection dropped mid-response — and, for the
durable experiment orchestrator, a disk that fills up mid-journal-append, a
checkpoint write torn in half by a SIGKILL, a run directory locked by a
long-dead process, a shard killed mid-entity.  This module
makes those failures *injectable* so the chaos suite can assert recovery —
recovered trajectories equal to undisturbed serial runs — instead of hand
waving about it.

Design constraints:

* **Inert by default** — every fault point in the runtime calls
  :func:`fire`, which is a two-instruction no-op until a :class:`FaultPlan`
  is installed.  Production code paths never change behaviour unless a plan
  is active.
* **No dependencies on the core library** — the runtime imports this module,
  never the other way round, so the fault points cannot create an import
  cycle.
* **Fork-aware counting** — worker-side events (kills, hangs) are counted in
  :class:`multiprocessing.sharedctypes` values created at install time, so
  the "nth dispatch" is a single global sequence across every worker process
  and every pool rebuild, and a kill budget of one means exactly one kill
  even though all workers inherit the plan.

Install a plan programmatically::

    from repro.testing import faults

    with faults.injected(faults.FaultPlan(kill_worker_at_dispatch=2)):
        session.select(selector, k)   # worker #2's chunk dies mid-scan

or through the environment (inherited by forked workers, handy for driving
whole processes such as ``make chaos-smoke``)::

    REPRO_FAULTS="kill_worker_at_dispatch=2,kill_limit=1" pytest -m chaos
"""

from __future__ import annotations

import contextlib
import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Optional

#: Exit status of an injected worker kill — distinctive enough that a chaos
#: test inspecting ``Process.exitcode`` can tell an injected death from a
#: real one.
KILL_EXITCODE = 73


class FaultInjected(RuntimeError):
    """The error an injected *application-level* fault raises (merge failures).

    Deliberately **not** a library error: the service must convert it to a
    typed ``ServiceError`` exactly as it would any unexpected exception.
    """


@dataclass(frozen=True)
class FaultPlan:
    """What to break, where, and how often.

    ``*_at_dispatch`` / ``*_at`` indices are 1-based positions in the global
    event sequence; the fault fires at every event from that position on
    while its ``*_limit`` budget lasts, then goes quiet.  ``None`` disables
    the fault.
    """

    #: Kill the worker process executing the nth dispatched chunk
    #: (``os._exit`` — no cleanup, exactly like an OOM kill).
    kill_worker_at_dispatch: Optional[int] = None
    kill_limit: int = 1
    kill_exitcode: int = KILL_EXITCODE

    #: Make the worker executing the nth dispatched chunk hang (blackhole):
    #: the dispatch never completes until the supervisor's timeout fires.
    hang_worker_at_dispatch: Optional[int] = None
    hang_limit: int = 1
    hang_seconds: float = 3600.0

    #: Corrupt the generation header of the nth parent-side pool dispatch
    #: (the channel generation advances without the channel model, the wire
    #: form of a torn header).
    corrupt_header_at_dispatch: Optional[int] = None
    corrupt_limit: int = 1

    #: Stall every parent-side pool dispatch by this many seconds.
    delay_dispatch_seconds: float = 0.0

    #: Raise :class:`FaultInjected` out of the nth service merge.
    fail_merge_at: Optional[int] = None
    merge_limit: int = 1

    #: Stall every service selection executor hop by this many seconds
    #: (drives the deadline-exceeded path deterministically).
    delay_select_seconds: float = 0.0

    #: Abort the transport connection midway through writing the nth
    #: response (the client sees a torn line / connection reset).
    drop_connection_after_responses: Optional[int] = None
    drop_limit: int = 1

    #: Raise ``OSError(ENOSPC)`` out of the nth durable journal append (the
    #: disk filled up mid-sweep).
    enospc_at_journal_append: Optional[int] = None
    enospc_limit: int = 1

    #: Tear the nth atomic checkpoint write: only half the serialised bytes
    #: reach the temporary file and the rename never happens — byte-for-byte
    #: what a SIGKILL (or power loss) in the middle of the write leaves on
    #: disk.  The writer raises :class:`FaultInjected` after tearing.
    torn_write_at_checkpoint: Optional[int] = None
    torn_limit: int = 1

    #: Plant a lock file owned by a guaranteed-dead pid immediately before
    #: the nth run-directory lock acquisition, exercising the stale-lock
    #: takeover path deterministically.
    stale_lock_at_acquire: Optional[int] = None
    stale_limit: int = 1

    #: Kill the orchestrator shard process executing the nth entity
    #: trajectory (``os._exit`` — no cleanup, like an OOM kill mid-entity).
    #: The entity sequence is global across every shard and every respawn.
    kill_shard_at_entity: Optional[int] = None
    shard_kill_limit: int = 1

    #: Raise :class:`FaultInjected` inside the shard before running the nth
    #: entity (an application-level entity failure: with a limit exceeding
    #: the orchestrator's ``max_attempts`` this makes the entity poison).
    fail_entity_at: Optional[int] = None
    fail_entity_limit: int = 1

    #: Stall every shard entity dispatch by this many seconds.  Chaos tests
    #: use it to widen the window for killing an orchestrator mid-sweep.
    delay_entity_seconds: float = 0.0

    #: Abort the cluster connection midway through sending the nth wire
    #: record (a torn prefix reaches the peer, then the socket dies — what a
    #: cut network or a crashed host looks like from the other side).  The
    #: record sequence is global across every worker process.
    drop_connection_at_record: Optional[int] = None
    drop_record_limit: int = 1

    #: Stall every shard-worker heartbeat by this many seconds before it is
    #: sent (a congested or partitioned network path: heartbeats arrive, but
    #: late enough that a tight lease TTL expires between them).
    delay_heartbeat_s: float = 0.0

    #: Send the nth entity result twice (duplicated delivery: a retransmit
    #: racing its original, or a zombie double-submitting after a timeout).
    #: The result sequence is global across every worker process.
    duplicate_entity_result: Optional[int] = None
    duplicate_limit: int = 1

    #: Turn one shard worker into a *zombie*: it suppresses every heartbeat
    #: for this many seconds (while computing and submitting results
    #: normally), so its lease expires and its late submissions hit the
    #: coordinator's fencing epoch.  ``zombie_limit`` bounds how many worker
    #: processes go zombie (fork-shared budget, claimed at first heartbeat).
    zombie_hold_lease_s: float = 0.0
    zombie_limit: int = 1

    def __post_init__(self) -> None:
        for name in (
            "kill_worker_at_dispatch",
            "hang_worker_at_dispatch",
            "corrupt_header_at_dispatch",
            "fail_merge_at",
            "drop_connection_after_responses",
            "enospc_at_journal_append",
            "torn_write_at_checkpoint",
            "stale_lock_at_acquire",
            "kill_shard_at_entity",
            "fail_entity_at",
            "drop_connection_at_record",
            "duplicate_entity_result",
        ):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} is 1-based, got {value}")
        for name in (
            "kill_limit",
            "hang_limit",
            "corrupt_limit",
            "merge_limit",
            "drop_limit",
            "enospc_limit",
            "torn_limit",
            "stale_limit",
            "shard_kill_limit",
            "fail_entity_limit",
            "drop_record_limit",
            "duplicate_limit",
            "zombie_limit",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")
        for name in (
            "delay_dispatch_seconds",
            "delay_select_seconds",
            "delay_entity_seconds",
            "delay_heartbeat_s",
            "zombie_hold_lease_s",
            "hang_seconds",
        ):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative, got {getattr(self, name)}")


class _FaultState:
    """One installed plan plus its event counters.

    Worker-side counters (dispatch sequence, kill/hang budgets) live in
    shared memory so every forked worker — including workers forked *after*
    a supervisor rebuild — advances the same global sequence.  Parent-side
    counters are plain ints; those events only ever fire in the installing
    process.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        self._worker_dispatches = context.Value("i", 0)
        self._kills_left = context.Value("i", plan.kill_limit)
        self._hangs_left = context.Value("i", plan.hang_limit)
        # Shard-side events run in orchestrator shard processes forked after
        # install (or inheriting REPRO_FAULTS); the entity sequence and the
        # kill/fail budgets must be one global ledger across all of them.
        self._shard_entities = context.Value("i", 0)
        self._shard_kills_left = context.Value("i", plan.shard_kill_limit)
        self._entity_fails_left = context.Value("i", plan.fail_entity_limit)
        # Cluster wire events fire in coordinator-forked local workers and in
        # REPRO_FAULTS-armed remote worker processes alike; the record/result
        # sequences and the drop/duplicate/zombie budgets are one global
        # ledger so "the nth record" means the nth across the whole cluster.
        self._wire_sends = context.Value("i", 0)
        self._record_drops_left = context.Value("i", plan.drop_record_limit)
        self._result_sends = context.Value("i", 0)
        self._duplicates_left = context.Value("i", plan.duplicate_limit)
        self._zombies_left = context.Value("i", plan.zombie_limit)
        #: Monotonic timestamp at which *this process* went zombie (claimed a
        #: slot from the fork-shared budget) — process-local on purpose: the
        #: zombie window is a property of one worker, not of the cluster.
        self._zombie_since: Optional[float] = None
        self.pool_dispatches = 0
        self.corrupts_done = 0
        self.merges_seen = 0
        self.merge_fails_done = 0
        self.selects_seen = 0
        self.responses_seen = 0
        self.drops_done = 0
        self.journal_appends = 0
        self.enospcs_done = 0
        self.checkpoint_writes = 0
        self.torn_done = 0
        self.lock_acquires = 0
        self.stale_done = 0

    # -- event handlers ----------------------------------------------------------------

    def fire(self, event: str, ctx: Mapping[str, Any]) -> Optional[str]:
        handler = getattr(self, f"_on_{event}", None)
        if handler is None:
            raise ValueError(f"unknown fault event {event!r}")
        return handler(ctx)

    # The shared counters' locks are fork-shared semaphores, and this harness
    # kills worker processes on purpose — a worker that dies (injected kill,
    # or the supervisor's teardown SIGTERM racing a dispatch) while inside
    # one of these critical sections leaves the semaphore held by a dead
    # owner forever.  The harness must never wedge the runtime it exists to
    # test, so acquisition is bounded: on timeout we fall back to lock-free
    # access (the owner is dead; nobody else is using the counter).

    _LOCK_TIMEOUT = 1.0

    def _bump_sequence(self, counter) -> int:
        if counter.get_lock().acquire(timeout=self._LOCK_TIMEOUT):
            try:
                counter.value += 1
                return counter.value
            finally:
                counter.get_lock().release()
        counter.value += 1
        return counter.value

    def _consume_budget(self, counter) -> bool:
        if counter.get_lock().acquire(timeout=self._LOCK_TIMEOUT):
            try:
                allowed = counter.value > 0
                if allowed:
                    counter.value -= 1
                return allowed
            finally:
                counter.get_lock().release()
        allowed = counter.value > 0
        if allowed:
            counter.value -= 1
        return allowed

    def _on_worker_dispatch(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        if plan.kill_worker_at_dispatch is None and plan.hang_worker_at_dispatch is None:
            return None
        sequence = self._bump_sequence(self._worker_dispatches)
        if plan.kill_worker_at_dispatch is not None and sequence >= plan.kill_worker_at_dispatch:
            if self._consume_budget(self._kills_left):
                os._exit(plan.kill_exitcode)
        if plan.hang_worker_at_dispatch is not None and sequence >= plan.hang_worker_at_dispatch:
            if self._consume_budget(self._hangs_left):
                time.sleep(plan.hang_seconds)
        return None

    def _on_pool_dispatch(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        self.pool_dispatches += 1
        if plan.delay_dispatch_seconds:
            time.sleep(plan.delay_dispatch_seconds)
        if (
            plan.corrupt_header_at_dispatch is not None
            and self.pool_dispatches >= plan.corrupt_header_at_dispatch
            and self.corrupts_done < plan.corrupt_limit
        ):
            self.corrupts_done += 1
            return "corrupt_header"
        return None

    def _on_merge(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        self.merges_seen += 1
        if (
            plan.fail_merge_at is not None
            and self.merges_seen >= plan.fail_merge_at
            and self.merge_fails_done < plan.merge_limit
        ):
            self.merge_fails_done += 1
            raise FaultInjected(
                f"injected merge failure (merge #{self.merges_seen})"
            )
        return None

    def _on_select(self, ctx: Mapping[str, Any]) -> Optional[str]:
        self.selects_seen += 1
        if self.plan.delay_select_seconds:
            time.sleep(self.plan.delay_select_seconds)
        return None

    def _on_shard_entity(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        if plan.delay_entity_seconds:
            time.sleep(plan.delay_entity_seconds)
        if plan.kill_shard_at_entity is None and plan.fail_entity_at is None:
            return None
        sequence = self._bump_sequence(self._shard_entities)
        if plan.kill_shard_at_entity is not None and sequence >= plan.kill_shard_at_entity:
            if self._consume_budget(self._shard_kills_left):
                os._exit(plan.kill_exitcode)
        if plan.fail_entity_at is not None and sequence >= plan.fail_entity_at:
            if self._consume_budget(self._entity_fails_left):
                raise FaultInjected(
                    f"injected entity failure (entity dispatch #{sequence})"
                )
        return None

    def _on_journal_append(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        self.journal_appends += 1
        if (
            plan.enospc_at_journal_append is not None
            and self.journal_appends >= plan.enospc_at_journal_append
            and self.enospcs_done < plan.enospc_limit
        ):
            self.enospcs_done += 1
            return "enospc"
        return None

    def _on_checkpoint_write(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        self.checkpoint_writes += 1
        if (
            plan.torn_write_at_checkpoint is not None
            and self.checkpoint_writes >= plan.torn_write_at_checkpoint
            and self.torn_done < plan.torn_limit
        ):
            self.torn_done += 1
            return "torn"
        return None

    def _on_run_lock(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        self.lock_acquires += 1
        if (
            plan.stale_lock_at_acquire is not None
            and self.lock_acquires >= plan.stale_lock_at_acquire
            and self.stale_done < plan.stale_limit
        ):
            self.stale_done += 1
            return "stale_lock"
        return None

    def _on_wire_send(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        if plan.drop_connection_at_record is None:
            return None
        sequence = self._bump_sequence(self._wire_sends)
        if sequence >= plan.drop_connection_at_record:
            if self._consume_budget(self._record_drops_left):
                return "drop"
        return None

    def _on_heartbeat(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        if plan.delay_heartbeat_s:
            time.sleep(plan.delay_heartbeat_s)
        if not plan.zombie_hold_lease_s:
            return None
        if self._zombie_since is None:
            if not self._consume_budget(self._zombies_left):
                return None
            self._zombie_since = time.monotonic()
        if time.monotonic() - self._zombie_since < plan.zombie_hold_lease_s:
            return "suppress"
        return None

    def _on_entity_result_send(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        if plan.duplicate_entity_result is None:
            return None
        sequence = self._bump_sequence(self._result_sends)
        if sequence >= plan.duplicate_entity_result:
            if self._consume_budget(self._duplicates_left):
                return "duplicate"
        return None

    def _on_transport_response(self, ctx: Mapping[str, Any]) -> Optional[str]:
        plan = self.plan
        self.responses_seen += 1
        if (
            plan.drop_connection_after_responses is not None
            and self.responses_seen >= plan.drop_connection_after_responses
            and self.drops_done < plan.drop_limit
        ):
            self.drops_done += 1
            return "drop"
        return None


#: The installed fault state; ``None`` keeps every fault point inert.
_STATE: Optional[_FaultState] = None


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _STATE.plan if _STATE is not None else None


def state() -> Optional[_FaultState]:
    """The live counter state (chaos tests assert against it)."""
    return _STATE


def install(plan: FaultPlan) -> _FaultState:
    """Arm ``plan`` process-wide; returns the live state for inspection.

    Install **before** any worker pool forks so the workers inherit the plan
    and its shared counters.  Re-installing replaces the previous plan.
    """
    global _STATE
    _STATE = _FaultState(plan)
    return _STATE


def uninstall() -> None:
    """Disarm fault injection (idempotent)."""
    global _STATE
    _STATE = None


@contextlib.contextmanager
def injected(plan: FaultPlan) -> Iterator[_FaultState]:
    """Context manager: install ``plan``, yield its state, always disarm."""
    state = install(plan)
    try:
        yield state
    finally:
        uninstall()


def fire(event: str, **ctx: Any) -> Optional[str]:
    """Trigger the fault point ``event``; returns a directive or ``None``.

    The runtime interprets the directive (``"corrupt_header"``, ``"drop"``);
    worker kills/hangs and merge failures act directly inside the hook.
    A no-op unless a plan is installed.
    """
    if _STATE is None:
        return None
    return _STATE.fire(event, ctx)


#: Environment variable carrying a comma-separated plan spec, e.g.
#: ``REPRO_FAULTS="kill_worker_at_dispatch=2,kill_limit=1"``.
ENV_VAR = "REPRO_FAULTS"

_FIELD_TYPES: Dict[str, type] = {
    field.name: field.type for field in dataclasses.fields(FaultPlan)
}


def plan_from_env(spec: Optional[str] = None) -> Optional[FaultPlan]:
    """Parse a :class:`FaultPlan` from ``spec`` or the ``REPRO_FAULTS`` variable.

    Returns ``None`` when the spec is empty/absent.  Unknown keys and
    malformed values raise ``ValueError`` — a chaos run with a typo'd fault
    must fail loudly, not silently run undisturbed.
    """
    if spec is None:
        spec = os.environ.get(ENV_VAR, "")
    spec = spec.strip()
    if not spec:
        return None
    values: Dict[str, Any] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"malformed {ENV_VAR} entry {part!r}; expected key=value")
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _FIELD_TYPES:
            raise ValueError(
                f"unknown fault {key!r}; expected one of {sorted(_FIELD_TYPES)}"
            )
        field_type = str(_FIELD_TYPES[key])
        if "float" in field_type:
            values[key] = float(raw)
        else:
            values[key] = int(raw)
    return FaultPlan(**values)


def install_from_env() -> Optional[_FaultState]:
    """Arm the plan described by ``REPRO_FAULTS``, if any."""
    plan = plan_from_env()
    if plan is None:
        return None
    return install(plan)


# Arm automatically when the environment asks for it: the variable is the
# hook that lets a whole process tree (``make chaos-smoke`` subprocesses,
# forked workers) run under one plan without code changes.
if os.environ.get(ENV_VAR):  # pragma: no cover - exercised via subprocess tests
    install_from_env()
