"""Parallel shared-memory candidate evaluation for greedy selection.

One greedy iteration of Algorithm 1 scores every remaining candidate against
the same :class:`~repro.core.selection.engine.EntropyEngine` state — a pure
read-only array pass per candidate (one grouped ``np.bincount`` plus one
channel transform), with no shared mutable state.  That makes the candidate
scan embarrassingly parallel, and on scale corpora (supports past ``2^20``,
hundreds of candidate facts) the scan is the system bottleneck the paper's
Table V measures.

This module shards the scan across a ``multiprocessing`` pool:

* **Fork-inherited shared memory** — the pool is created with the ``fork``
  start method *after* the live engine has been published to a module global,
  so every worker inherits the engine's read-only state (support masks,
  probability vector, cached per-fact bit columns, interest cells) via
  copy-on-write pages.  Nothing about the support is ever pickled; the only
  data crossing process boundaries are fact-id chunks going out and float
  entropies coming back.
* **State replay instead of state shipping** — the incremental
  :class:`~repro.core.selection.engine.SelectionState` grows by one task per
  iteration, and shipping its arrays (``O(|O|)`` per iteration) would undo
  the sharing.  Workers instead keep their own state and replay the parent's
  ``extend`` calls from the selected-task prefix — one extension per
  iteration, the cost of a single candidate evaluation.  Because ``extend``
  is deterministic over the shared arrays, the replayed state is bit-for-bit
  the parent's state, so every worker-computed entropy is exactly the float
  the serial scan would have produced.
* **Chunked dispatch with an auto-serial policy** — candidates are dispatched
  in order-preserving chunks (several per worker, for load balance), and a
  :class:`ParallelPolicy` decides per iteration whether parallelism pays at
  all: below a work threshold (candidates × support rows) the evaluator
  reports "serial" and the caller runs the ordinary in-process scan, so
  small Table-V-sized rounds never pay the fork or IPC overhead.

* **Persistent pools across rounds** — a fork is only free of state shipping
  while the engine's posterior matches the fork-time snapshot, which is why
  the per-call evaluator re-forks after every ``EntropyEngine.reweight``.
  The *persistent* mode instead keeps one pool alive for a whole multi-round
  refinement run and ships each round's posterior through a
  :class:`multiprocessing.shared_memory` ring of probability snapshots
  (:class:`_SnapshotRing`): the parent writes the reweighted (already
  normalised) vector into the next ring slot, and every dispatch carries a
  tiny generation header ``(reweights, slot, channel_swaps, channel)``.  A
  worker whose inherited engine is behind copies the snapshot byte for byte
  (:meth:`EntropyEngine.load_probabilities` — no renormalisation, so all
  later float operations stay bit-identical to the parent's) and replays any
  ``set_channel`` swap (adaptive re-calibration) from the header, then
  rebuilds its selection state exactly as on first contact.  Fork cost is
  paid once per run instead of once per round.

Selection results are **bit-for-bit identical** to the serial path by
construction: the parallel evaluator returns one entropy per candidate in
candidate order, and the caller replays the exact serial ranking loop
(same ``TIE_TOLERANCE`` first-index-wins comparison, same pruning bound)
over those values.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import warnings
from dataclasses import dataclass
from functools import partial
from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.crowd import ChannelModel
from repro.core.selection.base import SelectionResult
from repro.core.selection.engine import EntropyEngine, SelectionState
from repro.exceptions import SelectionError

#: Default auto-serial threshold, in work units of candidates × support rows.
#: One unit is roughly one support-row visit; forking a pool costs on the
#: order of millions of row visits, so below ~2^22 units the serial scan wins
#: (the Table-V hot path — tens of candidates over a few-thousand-row support
#: — sits orders of magnitude under it and never leaves the serial path).
DEFAULT_PARALLEL_THRESHOLD = 1 << 22

#: Chunks dispatched per worker per iteration when no explicit chunk size is
#: configured: more than one for load balance (candidate costs vary with the
#: cached-partition width), few enough that IPC stays negligible.
_CHUNKS_PER_WORKER = 4

#: Slots in a persistent pool's shared-memory snapshot ring.  ``pool.map`` is
#: synchronous, so one slot would suffice for correctness; a small ring keeps
#: the parent from overwriting the page a straggling worker is still reading
#: if dispatch ever becomes asynchronous.
_SNAPSHOT_SLOTS = 4

#: Published engine the pool workers inherit at fork time.  Set by
#: :meth:`ParallelEvaluator._ensure_pool` immediately before the fork and
#: cleared right after: the parent never keeps a module-level reference, the
#: children each keep their inherited copy.
_FORK_ENGINE: Optional[EntropyEngine] = None

#: Published snapshot ring of a *persistent* pool, inherited the same way.
#: The underlying shared-memory mapping is ``MAP_SHARED``, so parent writes
#: after the fork are visible to every worker.
_FORK_RING: Optional["_SnapshotRing"] = None

#: Per-worker replayed selection state (lives only in pool worker processes).
_WORKER_STATE: Optional[SelectionState] = None


def fork_available() -> bool:
    """Whether this platform can share engine state via the ``fork`` method."""
    return "fork" in multiprocessing.get_all_start_methods()


class _SnapshotRing:
    """A shared-memory ring of posterior snapshots for one persistent pool.

    One float64 row per slot, each the full support-aligned probability
    vector.  The parent owns the segment: it publishes a reweighted posterior
    with :meth:`publish` (slot chosen by generation), workers read their slot
    with :meth:`read`.  Workers inherit the mapped segment at fork time —
    shared, not copy-on-write — so a publish after the fork is immediately
    visible to every worker without any pickling or re-attach.
    """

    def __init__(self, support_size: int, slots: int = _SNAPSHOT_SLOTS):
        self._slots = slots
        self._support_size = support_size
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, slots * support_size * 8)
        )
        self._array = np.ndarray(
            (slots, support_size), dtype=np.float64, buffer=self._shm.buf
        )

    def publish(self, generation: int, probabilities: np.ndarray) -> int:
        """Copy ``probabilities`` into the slot for ``generation``; return it."""
        slot = generation % self._slots
        self._array[slot, :] = probabilities
        return slot

    def read(self, slot: int) -> np.ndarray:
        """The snapshot in ``slot``, as a *view* of the shared segment.

        Callers must copy before keeping it (``EntropyEngine.
        load_probabilities`` does) — a later :meth:`publish` to the same slot
        would mutate the view in place.  Returning the view keeps the worker
        sync path at exactly one full-support copy per generation.
        """
        return self._array[slot]

    def close(self) -> None:
        """Release the parent's mapping and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        # The ndarray view pins the exported buffer; drop it before closing.
        self._array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self._shm = None


@dataclass(frozen=True)
class ParallelPolicy:
    """When and how to shard candidate evaluations across processes.

    Attributes
    ----------
    workers:
        Worker processes to use; ``None`` means one per available CPU.
        A resolved count below two always selects the serial path.
    parallel_threshold:
        Minimum work size (candidates × support rows) of one iteration's scan
        before the pool is used; smaller scans run serially so that small
        rounds never regress.  Zero forces parallelism whenever possible.
    chunk_size:
        Candidates per dispatched chunk; ``None`` derives a size giving each
        worker several chunks for load balance.
    """

    workers: Optional[int] = None
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise SelectionError(f"workers must be positive, got {self.workers}")
        if self.parallel_threshold < 0:
            raise SelectionError(
                f"parallel_threshold must be non-negative, got {self.parallel_threshold}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SelectionError(f"chunk_size must be positive, got {self.chunk_size}")

    def resolved_workers(self) -> int:
        """The worker count this policy resolves to on this machine."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    def should_parallelise(self, num_candidates: int, support_size: int) -> bool:
        """Decide serial vs. parallel for one iteration's candidate scan."""
        if self.resolved_workers() < 2 or not fork_available():
            return False
        if num_candidates < 2:
            return False
        return num_candidates * support_size >= self.parallel_threshold

    def resolved_chunk_size(self, num_candidates: int) -> int:
        """Candidates per chunk for a scan of ``num_candidates``."""
        if self.chunk_size is not None:
            return self.chunk_size
        per_worker = self.resolved_workers() * _CHUNKS_PER_WORKER
        return max(1, math.ceil(num_candidates / per_worker))


def _replay_state(engine: EntropyEngine, task_ids: Tuple[str, ...]) -> SelectionState:
    """Rebuild the parent's selection state inside a pool worker.

    The worker keeps the state of the previous iteration; committing the
    parent's newly selected task is one ``extend`` call.  A non-prefix state
    (first call, or a fresh selection on a reused pool) restarts from the
    empty state.
    """
    global _WORKER_STATE
    state = _WORKER_STATE
    if state is None or state.task_ids != task_ids[: state.width]:
        state = engine.initial_state()
    for fact_id in task_ids[state.width:]:
        state = engine.extend(state, fact_id)
    _WORKER_STATE = state
    return state


def _evaluate_chunk(task_ids: Tuple[str, ...], chunk: Sequence[str]) -> List[float]:
    """Worker entry point: ``H(T ∪ {f})`` for every candidate in ``chunk``."""
    engine = _FORK_ENGINE
    if engine is None:  # pragma: no cover - defensive: fork contract broken
        raise SelectionError("parallel worker started without a fork-shared engine")
    state = _replay_state(engine, task_ids)
    return [engine.extension_entropy(state, fact_id) for fact_id in chunk]


#: Generation header of one persistent-pool dispatch: the parent engine's
#: ``reweights`` counter, the ring slot its posterior snapshot occupies,
#: its ``channel_swaps`` counter, and the current channel model (``None``
#: while no swap has happened since the fork).
_SyncHeader = Tuple[int, int, int, Optional[ChannelModel]]


def _sync_worker_engine(engine: EntropyEngine, header: _SyncHeader) -> None:
    """Catch a fork-inherited worker engine up with the parent's generation.

    A stale posterior is loaded byte for byte from the shared snapshot ring; a
    stale channel model is replayed through ``set_channel`` (the same call the
    parent's session made).  Either sync invalidates the worker's replayed
    selection state — its cached tables embed the old probabilities and
    channel accuracies — so the next :func:`_replay_state` restarts from the
    empty state, exactly as on first contact after a fork.
    """
    global _WORKER_STATE
    reweights, slot, channel_swaps, channel = header
    if reweights != engine.reweights:
        ring = _FORK_RING
        if ring is None:  # pragma: no cover - defensive: fork contract broken
            raise SelectionError(
                "persistent parallel worker has no fork-shared snapshot ring"
            )
        engine.load_probabilities(ring.read(slot), reweights)
        _WORKER_STATE = None
    if channel_swaps != engine.channel_swaps:
        if channel is None:  # pragma: no cover - defensive: header contract broken
            raise SelectionError(
                "persistent pool header advanced the channel generation "
                "without shipping the channel model"
            )
        engine.set_channel(channel)
        engine.channel_swaps = channel_swaps
        _WORKER_STATE = None


def _evaluate_chunk_persistent(
    header: _SyncHeader, task_ids: Tuple[str, ...], chunk: Sequence[str]
) -> List[float]:
    """Persistent-pool worker entry point: sync generations, then score."""
    engine = _FORK_ENGINE
    if engine is None:  # pragma: no cover - defensive: fork contract broken
        raise SelectionError("parallel worker started without a fork-shared engine")
    _sync_worker_engine(engine, header)
    state = _replay_state(engine, task_ids)
    return [engine.extension_entropy(state, fact_id) for fact_id in chunk]


class ParallelEvaluator:
    """Shards one engine's candidate evaluations across a fork pool.

    By default the evaluator is scoped to one selection call: the pool is
    forked lazily on the first iteration whose scan clears the policy
    threshold (so the engine's probability vector is current at fork time)
    and reused for the remaining iterations of that call.  Use as a context
    manager so the pool is always reclaimed — even when a selector raises
    mid-scan.

    With ``persistent=True`` the evaluator instead survives across rounds of
    a multi-round refinement run (it is then owned by a
    :class:`~repro.core.selection.session.RefinementSession`): before the
    fork it allocates a shared-memory :class:`_SnapshotRing`, and every
    dispatch carries a generation header so workers re-sync their inherited
    engine with the parent's reweighted posterior and swapped channel model
    instead of the pool being re-forked.

    Attributes
    ----------
    workers:
        Worker processes actually forked (0 while every scan stayed serial).
    chunk_size:
        Chunk size of the most recent parallel dispatch (0 if none).
    parallel_evaluations:
        Total candidate evaluations served by the pool (cumulative over the
        evaluator's lifetime, i.e. over all rounds for a persistent pool).
    """

    def __init__(
        self,
        engine: EntropyEngine,
        policy: ParallelPolicy,
        persistent: bool = False,
    ):
        if policy.resolved_workers() >= 2 and not fork_available():
            warnings.warn(
                "this platform has no fork start method, so the configured "
                "parallel policy cannot engage; all candidate scans will run "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self._engine = engine
        self._policy = policy
        self._persistent = persistent
        self._pool = None
        self._ring: Optional[_SnapshotRing] = None
        self._published_reweights = 0
        self._published_slot = -1
        self._fork_channel_swaps = 0
        self.workers = 0
        self.chunk_size = 0
        self.parallel_evaluations = 0

    @property
    def persistent(self) -> bool:
        """Whether this evaluator survives posterior reweights between scans."""
        return self._persistent

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the worker pool and release the snapshot ring (idempotent)."""
        try:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
        finally:
            if self._ring is not None:
                self._ring.close()
                self._ring = None

    def refresh_batch_size(self) -> int:
        """Candidates a lazy (CELF) selector should refresh per wave.

        Enough to hand every worker its configured chunk share, so a wave
        that clears the policy threshold saturates the pool; small enough
        that lazy evaluation still skips the long tail of stale candidates.
        """
        workers = self._policy.resolved_workers()
        chunk = self._policy.chunk_size or _CHUNKS_PER_WORKER
        return max(1, workers * chunk)

    def would_parallelise(self, num_candidates: int) -> bool:
        """Whether a scan of ``num_candidates`` would engage the pool.

        Lets batching callers (the CELF wave loop) avoid assembling a batch
        that :meth:`evaluate` would only hand back for in-process scoring.
        """
        return self._policy.should_parallelise(
            num_candidates, self._engine.support_masks.shape[0]
        )

    def _ensure_pool(self):
        if self._pool is None:
            global _FORK_ENGINE, _FORK_RING
            context = multiprocessing.get_context("fork")
            self.workers = self._policy.resolved_workers()
            if self._persistent:
                # The ring must exist before the fork so workers inherit the
                # shared mapping; the generation counters pin the fork-time
                # state every worker starts from.
                self._ring = _SnapshotRing(self._engine.probabilities.shape[0])
                self._published_reweights = self._engine.reweights
                self._published_slot = -1
                self._fork_channel_swaps = self._engine.channel_swaps
            # Publish the engine (and ring) for the duration of the fork
            # only: workers inherit them through copy-on-write memory, the
            # parent keeps no module-level reference.
            _FORK_ENGINE = self._engine
            _FORK_RING = self._ring
            try:
                self._pool = context.Pool(processes=self.workers)
            finally:
                _FORK_ENGINE = None
                _FORK_RING = None
        return self._pool

    def _sync_header(self) -> _SyncHeader:
        """Publish any pending posterior snapshot; return the dispatch header."""
        engine = self._engine
        if engine.reweights != self._published_reweights:
            self._published_slot = self._ring.publish(
                engine.reweights, engine.probabilities
            )
            self._published_reweights = engine.reweights
        channel = (
            engine.crowd
            if engine.channel_swaps != self._fork_channel_swaps
            else None
        )
        return (
            engine.reweights,
            self._published_slot,
            engine.channel_swaps,
            channel,
        )

    def evaluate(
        self, state: SelectionState, candidates: Sequence[str]
    ) -> Optional[List[float]]:
        """Score all ``candidates`` against ``state``, in candidate order.

        Returns ``None`` when the policy elects the serial path for this scan
        (too little work, too few workers, or no ``fork`` support); the caller
        then runs its ordinary in-process loop.
        """
        support_size = self._engine.support_masks.shape[0]
        if not self._policy.should_parallelise(len(candidates), support_size):
            return None
        pool = self._ensure_pool()
        chunk_size = self._policy.resolved_chunk_size(len(candidates))
        self.chunk_size = chunk_size
        chunks = [
            list(candidates[start:start + chunk_size])
            for start in range(0, len(candidates), chunk_size)
        ]
        if self._persistent:
            worker = partial(
                _evaluate_chunk_persistent, self._sync_header(), state.task_ids
            )
        else:
            worker = partial(_evaluate_chunk, state.task_ids)
        scored = pool.map(worker, chunks)
        self.parallel_evaluations += len(candidates)
        return [entropy for part in scored for entropy in part]


class ParallelSelectorMixin:
    """Parallel-scan wiring shared by the greedy selector family.

    A selector mixing this in accepts a :class:`ParallelPolicy` (constructor
    argument and ``parallel`` property) and funnels every scan through
    :meth:`_scan`, which picks the evaluator in priority order:

    1. a *session-owned persistent* evaluator, when the selection runs
       against a :class:`~repro.core.selection.session.RefinementSession`
       configured with a parallel policy (fork cost amortised over the whole
       run; the selector does not close it);
    2. the selector's own policy, wrapped in a per-call evaluator whose
       context manager guarantees the pool is reclaimed even when the scan
       raises;
    3. the plain serial path when neither is configured.

    Either way the per-selection ``SelectionStats`` report only what *this*
    selection used: worker counts are zeroed when every scan of the call
    stayed under the auto-serial threshold, and a persistent evaluator's
    cumulative counters are differenced around the call.
    """

    _parallel: Optional[ParallelPolicy] = None

    def __init__(self, parallel: Optional[ParallelPolicy] = None):
        self._parallel = parallel

    @property
    def parallel(self) -> Optional[ParallelPolicy]:
        """The configured parallel-scan policy (``None`` means always serial)."""
        return self._parallel

    @parallel.setter
    def parallel(self, policy: Optional[ParallelPolicy]) -> None:
        self._parallel = policy

    def _scan(
        self,
        engine: EntropyEngine,
        k: int,
        candidates: Sequence[str],
        runner,
        shared_evaluator: Optional[ParallelEvaluator] = None,
    ) -> SelectionResult:
        """Run ``runner(engine, k, candidates, evaluator)`` with the right evaluator."""
        if shared_evaluator is not None:
            return self._instrumented(shared_evaluator, runner, engine, k, candidates)
        if self._parallel is None:
            return runner(engine, k, candidates, None)
        with ParallelEvaluator(engine, self._parallel) as evaluator:
            return self._instrumented(evaluator, runner, engine, k, candidates)

    @staticmethod
    def _instrumented(
        evaluator: ParallelEvaluator,
        runner,
        engine: EntropyEngine,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        before = evaluator.parallel_evaluations
        result = runner(engine, k, candidates, evaluator)
        # The evaluator is the single source of truth for the execution-mode
        # bookkeeping: it alone knows what its pool actually served.  For a
        # persistent evaluator the counters span many selections, so report
        # the delta — and a call whose scans all stayed auto-serial reports
        # zero workers even though the long-lived pool exists.
        served = evaluator.parallel_evaluations - before
        result.stats.parallel_evaluations = served
        result.stats.workers = evaluator.workers if served else 0
        result.stats.chunk_size = evaluator.chunk_size if served else 0
        return result
