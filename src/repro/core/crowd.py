"""The noisy-crowd answer model (Section II-B of the paper).

A crowd is characterised by a single accuracy ``Pc ∈ [0.5, 1]``: every task
("is fact *f* true?") is answered correctly with probability ``Pc``,
independently of all other tasks.  Given the joint output distribution this
induces a distribution over *answer sets* (Equation 2), whose entropy
``H(T)`` is exactly what the task-selection algorithms maximise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.assignment import project_mask
from repro.core.distribution import JointDistribution, entropy_of
from repro.exceptions import InvalidCrowdModelError, SelectionError


@dataclass(frozen=True)
class CrowdModel:
    """Crowd answer model with a shared worker accuracy ``Pc``.

    Parameters
    ----------
    accuracy:
        Probability that a worker's answer to any single task is correct.
        Must lie in ``[0.5, 1.0]`` (Definition 2).
    """

    accuracy: float

    def __post_init__(self) -> None:
        if not 0.5 <= self.accuracy <= 1.0:
            raise InvalidCrowdModelError(
                f"crowd accuracy must be in [0.5, 1.0], got {self.accuracy}"
            )

    @property
    def error_rate(self) -> float:
        """Probability that a single answer is wrong (``1 − Pc``)."""
        return 1.0 - self.accuracy

    def answer_likelihood(self, num_same: int, num_diff: int) -> float:
        """Likelihood ``P(Ans | o) = Pc^#Same · (1 − Pc)^#Diff`` of an answer set.

        ``num_same`` and ``num_diff`` count the selected facts whose crowd
        judgment agrees / disagrees with the candidate output ``o``.
        """
        if num_same < 0 or num_diff < 0:
            raise InvalidCrowdModelError("agreement counts must be non-negative")
        return (self.accuracy ** num_same) * (self.error_rate ** num_diff)

    # -- answer-set distributions (Equation 2) --------------------------------------

    def answer_distribution(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> JointDistribution:
        """Distribution over crowd answer sets for the tasks ``task_ids``.

        Implements Equation 2: for every possible answer vector ``a`` over the
        selected facts,

        ``P(a) = Σ_o P(o) · Pc^#Same(a, o) · (1 − Pc)^#Diff(a, o)``.

        The result is returned as a :class:`JointDistribution` whose "facts"
        are the selected task ids and whose assignments are answer vectors.
        """
        if not task_ids:
            raise SelectionError("task set must contain at least one fact")
        if len(set(task_ids)) != len(task_ids):
            raise SelectionError("task set contains duplicate fact ids")
        positions = distribution.positions(task_ids)
        k = len(positions)

        # Likelihood of an answer vector given an output depends only on the
        # output's projection onto the task positions, so aggregate those first.
        projected: Dict[int, float] = {}
        for mask, probability in distribution.items():
            sub = project_mask(mask, positions)
            projected[sub] = projected.get(sub, 0.0) + probability

        accuracy = self.accuracy
        error = self.error_rate
        answer_probs: Dict[int, float] = {}
        for answer_mask in range(1 << k):
            total = 0.0
            for output_sub, probability in projected.items():
                diff = bin(answer_mask ^ output_sub).count("1")
                same = k - diff
                total += probability * (accuracy ** same) * (error ** diff)
            if total > 0.0:
                answer_probs[answer_mask] = total
        return JointDistribution(task_ids, answer_probs, normalise=True)

    def task_entropy(
        self, distribution: JointDistribution, task_ids: Sequence[str]
    ) -> float:
        """Entropy ``H(T)`` of the answer-set distribution for ``task_ids``.

        This is the objective of the task-selection problem (Equation 4).
        """
        return self.answer_distribution(distribution, task_ids).entropy()

    def full_answer_joint(self, distribution: JointDistribution) -> JointDistribution:
        """Answer joint distribution over *all* facts (the paper's preprocessing).

        This is Table IV of the running example: the distribution of the
        crowd's answers if every fact were asked.  Marginalising it over any
        task set yields that task set's answer distribution, which is what
        Algorithm 2 exploits.
        """
        return self.answer_distribution(distribution, distribution.fact_ids)

    # -- joint fact/answer distributions (needed by query-based selection) ----------

    def joint_fact_answer_entropy(
        self,
        distribution: JointDistribution,
        interest_ids: Sequence[str],
        task_ids: Sequence[str],
    ) -> float:
        """Joint entropy ``H(I, T)`` of facts-of-interest values and crowd answers.

        Used by query-based CrowdFusion (Section IV), where the utility after
        asking is ``Q(I | T) = H(T) − H(I, T)``.  If ``task_ids`` is empty the
        result is simply ``H(I)``.
        """
        interest_positions = distribution.positions(interest_ids)
        if not task_ids:
            return distribution.marginalize(interest_ids).entropy()
        task_positions = distribution.positions(task_ids)
        k = len(task_positions)
        accuracy = self.accuracy
        error = self.error_rate

        # Group outputs by their joint projection onto (interest, tasks): the
        # answer likelihood depends only on the task projection, and the
        # interest projection identifies the joint cell.
        grouped: Dict[tuple, float] = {}
        for mask, probability in distribution.items():
            interest_sub = project_mask(mask, interest_positions)
            task_sub = project_mask(mask, task_positions)
            key = (interest_sub, task_sub)
            grouped[key] = grouped.get(key, 0.0) + probability

        joint: Dict[tuple, float] = {}
        for (interest_sub, task_sub), probability in grouped.items():
            for answer_mask in range(1 << k):
                diff = bin(answer_mask ^ task_sub).count("1")
                same = k - diff
                mass = probability * (accuracy ** same) * (error ** diff)
                if mass <= 0.0:
                    continue
                key = (interest_sub, answer_mask)
                joint[key] = joint.get(key, 0.0) + mass
        return entropy_of(joint.values())
