"""Greedy approximate task selection (Algorithm 1 of the paper).

Because the answer-set entropy ``H(T)`` is monotone and submodular in the
task set, iteratively adding the fact with the largest marginal entropy gain
achieves a ``(1 − 1/e)`` approximation of the optimum (Nemhauser et al.).
The selector stops early (``K* < k``) when no candidate yields a positive
gain, exactly as lines 5–6 of Algorithm 1 prescribe.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.utility import crowd_entropy

#: Gains smaller than this are treated as zero ("no benefit from one more task").
GAIN_TOLERANCE = 1e-9


class GreedySelector(TaskSelector):
    """Algorithm 1: iterative greedy selection maximising ``H(T)``.

    Candidates are ranked by the answer-set entropy ``H(T ∪ {f})``; the early
    stop (lines 5–6) uses the *net* gain ``ρ − H(Crowd)``, i.e. the expected
    utility improvement ``ΔQ`` of adding one more task.  A noisy crowd adds
    exactly ``H(Crowd)`` of answer entropy even for a fact that is already
    certain, so subtracting it is what makes "no benefit from asking one more
    task" detect certainty (Theorem 2: the net gain is positive exactly while
    an uncertain fact remains).
    """

    name = "greedy"

    def _select(
        self,
        distribution: JointDistribution,
        crowd: CrowdModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        stats = SelectionStats()
        selected: List[str] = []
        remaining = list(candidates)
        current_entropy = 0.0
        noise_entropy = crowd_entropy(crowd.accuracy)

        for _iteration in range(k):
            stats.iterations += 1
            best_id = None
            best_entropy = float("-inf")
            for fact_id in remaining:
                stats.candidate_evaluations += 1
                entropy = crowd.task_entropy(distribution, selected + [fact_id])
                if entropy > best_entropy + TIE_TOLERANCE:
                    best_entropy = entropy
                    best_id = fact_id
            if best_id is None:
                break
            gain = best_entropy - current_entropy - noise_entropy
            if gain <= GAIN_TOLERANCE:
                # No candidate improves the expected utility: stop with K* < k.
                break
            selected.append(best_id)
            remaining.remove(best_id)
            current_entropy = best_entropy
            if not remaining:
                break

        return SelectionResult(
            task_ids=tuple(selected), objective=current_entropy, stats=stats
        )
