"""Ablations beyond the paper's headline experiments.

Three design choices called out in DESIGN.md are quantified here:

1. **Pruning** — how much scanning work Theorem 3 actually saves on top of
   plain greedy (the paper reports large wall-clock wins; with the provably
   safe slack bound the savings are modest, which we document honestly).
2. **Preprocessing / partition refinement** — the evaluation-count and time
   reduction of the vectorised incremental algorithm.
3. **Correlated priors** — whether coupling a book's claims through
   mutual-exclusion rules (instead of an independent product) changes how
   fast the crowd budget pays off.
"""

import numpy as np
import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import get_selector
from repro.correlation.rules import MutualExclusionRule
from repro.evaluation.experiment import ExperimentConfig, build_problems, run_quality_experiment
from repro.evaluation.reporting import format_table
from repro.fusion.crh import ModifiedCRH

from _bench_utils import write_result

_RESULTS = {}


def ablation_distribution(num_facts=16, support=384, seed=3):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    fact_ids = tuple(f"f{i}" for i in range(num_facts))
    return JointDistribution(
        fact_ids, dict(zip((int(m) for m in masks), probabilities))
    )


DIST = ablation_distribution()
CROWD = CrowdModel(0.8)
K = 5


@pytest.mark.parametrize(
    "selector",
    [
        "greedy_reference",
        "greedy",
        "greedy_lazy",
        "greedy_prune",
        "greedy_pre",
        "greedy_prune_pre",
    ],
)
def test_ablation_selector_cost(benchmark, selector):
    """Benchmark one selection round per greedy variant on the same input."""
    result = benchmark.pedantic(
        lambda: get_selector(selector).select(DIST, CROWD, K),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    _RESULTS[selector] = {
        "seconds": benchmark.stats.stats.mean,
        "evaluations": result.stats.candidate_evaluations,
        "pruned_facts": result.stats.pruned_facts,
        "task_ids": result.task_ids,
    }
    assert len(result.task_ids) == K


def test_ablation_pruning_and_preprocessing_report(benchmark):
    """Persist the ablation table and check the acceleration ordering."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 6:
        pytest.skip("selector ablation benchmarks did not run")

    rows = [
        [
            name,
            values["seconds"],
            values["evaluations"],
            values["pruned_facts"],
        ]
        for name, values in _RESULTS.items()
    ]
    write_result(
        "ablation_selectors.txt",
        format_table(
            ["selector", "mean seconds", "candidate evaluations", "pruned facts"],
            rows,
        ),
    )

    # All variants select the same task set (safety of the accelerations).
    task_sets = {values["task_ids"] for values in _RESULTS.values()}
    assert len(task_sets) == 1
    # The vectorized engine gives the dominant speedup over the seed path.
    assert _RESULTS["greedy"]["seconds"] < _RESULTS["greedy_reference"]["seconds"] / 2
    # Pruning and lazy evaluation never increase the number of evaluations.
    assert (
        _RESULTS["greedy_prune"]["evaluations"]
        <= _RESULTS["greedy"]["evaluations"]
    )
    assert (
        _RESULTS["greedy_lazy"]["evaluations"]
        <= _RESULTS["greedy"]["evaluations"]
    )


def test_ablation_correlated_prior(benchmark, book_corpus):
    """Correlated priors vs independent priors under the same crowd budget."""

    def exclusive_rules(entity, fact_ids):
        if len(fact_ids) < 2:
            return []
        # Author-list statements about one book: most are mutually exclusive,
        # but reorderings mean more than one can be true — allow two.
        return [MutualExclusionRule(fact_ids, strength=0.7, max_true=2)]

    def run_both():
        outcomes = {}
        for label, factory in (("independent", None), ("correlated", exclusive_rules)):
            problems = build_problems(
                book_corpus.database,
                book_corpus.gold,
                ModifiedCRH(),
                difficulties=book_corpus.difficulties,
                max_facts_per_entity=8,
                rule_factory=factory,
            )
            config = ExperimentConfig(
                selector="greedy_prune_pre",
                k=2,
                budget_per_entity=10,
                worker_accuracy=0.85,
                seed=47,
            )
            outcomes[label] = run_quality_experiment(problems, config)
        return outcomes

    outcomes = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    rows = [
        [
            label,
            result.initial_point.f1,
            result.final_point.f1,
            result.final_point.utility,
        ]
        for label, result in outcomes.items()
    ]
    write_result(
        "ablation_correlated_prior.txt",
        format_table(
            ["prior", "F1 before", "F1 after", "final utility"],
            rows,
            float_format="{:.3f}",
        ),
    )
    # Both priors must benefit from the crowd budget; the correlated prior
    # should not end up clearly worse than the independent one.
    for result in outcomes.values():
        assert result.final_point.utility > result.initial_point.utility
    assert (
        outcomes["correlated"].final_point.f1
        >= outcomes["independent"].final_point.f1 - 0.08
    )
