# Developer entry points for the CrowdFusion reproduction.
#
# The library is import-run from src/ (no install step needed); every target
# works in a fresh checkout.

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test bench bench-smoke bench-compiled-smoke chaos-smoke serve-smoke orchestrate-smoke cluster-smoke

# Tier-1 suite: the fast default (excludes the slow 2^20-support scenarios).
test:
	$(PYTEST) -x -q

# All benchmark modules except the slow scale scenarios.  (The bench files
# deliberately do not match pytest's test_*.py pattern, so they must be
# passed explicitly.)
bench:
	$(PYTEST) -q benchmarks/bench_*.py

# CI-sized exercise of the multiprocess selection paths.  The parallel
# markers are normally skipped on constrained hosts, so this forces them on
# (2-CPU runners included): the full parallel equivalence suites — per-call
# sharding, persistent pools, entity fan-out, CLI flags — plus one tiny
# persistent-pool benchmark scenario, keeping the fork paths exercised
# outside manual multi-core runs.
bench-smoke:
	REPRO_FORCE_PARALLEL_TESTS=1 $(PYTEST) -q -m "parallel and not slow" \
		tests/core/selection/test_parallel.py \
		tests/core/selection/test_persistent_pool.py \
		tests/core/selection/test_multiplex.py \
		tests/evaluation/test_parallel_entities.py \
		tests/service/test_shared_pool.py \
		tests/test_cli.py
	REPRO_FORCE_PARALLEL_TESTS=1 $(PYTEST) -q -m "parallel and not slow" \
		benchmarks/bench_selection_hotpath.py -k persistent_pool_smoke

# CI-sized exercise of the kernel ladder and the packed wide-fact
# representation: unit + property suites for the bit planes and the kernel
# registry, the cross-tier selection-equivalence suite, and the CI-sized
# compiled/wide-fact benchmark scenarios.  On hosts without numba the
# compiled-tier cases skip (never fail) and the numpy/reference tiers still
# run, so the target is green everywhere.
bench-compiled-smoke:
	$(PYTEST) -q \
		tests/core/test_bitplanes.py \
		tests/core/test_kernels.py \
		tests/core/selection/test_kernel_equivalence.py
	$(PYTEST) -q benchmarks/bench_compiled_kernels.py -k "smoke or wide_facts"

# The fault-injection chaos suite: worker kills mid-scan, hung dispatches,
# corrupted generation headers, merge crashes mid-batch, dropped client
# connections — each asserting the runtime recovers to a trajectory
# bit-identical to an undisturbed run, degrades gracefully past the circuit
# breaker, and leaks no worker processes or /dev/shm segments.  Parallel
# tests are forced on so the fork paths run even on constrained hosts.
chaos-smoke:
	REPRO_FORCE_PARALLEL_TESTS=1 $(PYTEST) -q -m chaos

# CI-sized exercise of the durable orchestrator: the journal/checkpoint/lock
# primitives, the sharded sweep's serial-equivalence and crash-resume suites,
# the service snapshot/restore + eviction suite, and the orchestration
# benchmark scenarios (checkpoint overhead vs the in-memory fan-out, resume
# latency) recorded into benchmarks/results/BENCH_selection.json.  Parallel
# tests are forced on so the fork paths run even on constrained hosts.
orchestrate-smoke:
	REPRO_FORCE_PARALLEL_TESTS=1 $(PYTEST) -q \
		tests/orchestration \
		tests/service/test_persistence.py
	REPRO_FORCE_PARALLEL_TESTS=1 $(PYTEST) -q benchmarks/bench_orchestrator.py

# Boots a real refinement-service server on a loopback port, drives one full
# create → select → post → posterior → close round-trip through the JSON
# client, and asserts that no worker processes leaked.
serve-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.service.smoke

# Runs one sweep on the single-host durable orchestrator and again on the
# lease-fenced cluster coordinator with two loopback shard workers — one
# SIGKILLed mid-lease — and asserts the cluster's curve.jsonl comes out
# byte-identical, the kill was fenced and reassigned, and no worker
# processes leaked.
cluster-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.orchestration.cluster_smoke
