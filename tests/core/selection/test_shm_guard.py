"""Shared-memory leak guard: no orphaned ring segments on abnormal exit.

A snapshot ring's ``/dev/shm`` segment is normally unlinked by ``close()``;
these tests pin the guard that covers the *abnormal* paths — a process
killed by SIGTERM (container stop) and an interpreter exit that never called
``close()`` — by observing real child interpreters from the outside.  The
regression they guard against: a SIGTERM'd parent leaving one segment per
live ring behind, plus the resource tracker's "leaked shared_memory"
complaint at exit.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.selection import parallel
from repro.core.selection.parallel import _SnapshotRing

SRC_DIR = str(Path(parallel.__file__).resolve().parents[3])

#: Child that owns one live ring and reports its segment name, then idles
#: (SIGTERM case) or exits without ever closing the ring (atexit case).
CHILD_TEMPLATE = """\
import sys, time
from repro.core.selection.parallel import _SnapshotRing
ring = _SnapshotRing(64)
print(ring._shm.name, flush=True)
{tail}
"""


def _spawn_child(tail: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=SRC_DIR)
    return subprocess.Popen(
        [sys.executable, "-c", CHILD_TEMPLATE.format(tail=tail)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )


def _segment_path(name: str) -> Path:
    return Path("/dev/shm") / name


def _wait_for_unlink(path: Path, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not path.exists():
            return True
        time.sleep(0.02)
    return not path.exists()


needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="segment observation needs a /dev/shm filesystem",
)


@needs_dev_shm
def test_sigterm_unlinks_the_segment_and_preserves_exit_status():
    child = _spawn_child("time.sleep(60)")
    try:
        name = child.stdout.readline().strip()
        assert name, "child never reported its segment name"
        segment = _segment_path(name)
        assert segment.exists(), "child's live segment should be visible"

        child.send_signal(signal.SIGTERM)
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    stderr = child.stderr.read()

    # The guard reaps the segment, then chains to the default disposition so
    # the exit status still reads "terminated by SIGTERM".
    assert child.returncode == -signal.SIGTERM
    assert _wait_for_unlink(segment), f"segment {name} leaked after SIGTERM"
    assert "leaked shared_memory" not in stderr


@needs_dev_shm
def test_atexit_reaps_rings_never_closed():
    child = _spawn_child("sys.exit(0)")
    try:
        name = child.stdout.readline().strip()
        child.wait(timeout=10)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    stderr = child.stderr.read()

    assert child.returncode == 0
    assert name, "child never reported its segment name"
    assert _wait_for_unlink(_segment_path(name)), f"segment {name} leaked at exit"
    assert "leaked shared_memory" not in stderr


def test_close_unregisters_from_the_live_registry():
    before = set(parallel._LIVE_RINGS)
    ring = _SnapshotRing(16)
    assert ring in parallel._LIVE_RINGS
    ring.close()
    assert ring not in parallel._LIVE_RINGS
    # close() is idempotent and leaves unrelated rings registered.
    ring.close()
    assert before <= set(parallel._LIVE_RINGS) | {ring}


def test_guard_is_installed_once_per_owning_process():
    ring = _SnapshotRing(16)
    try:
        assert parallel._GUARD_PID == os.getpid()
        handler = signal.getsignal(signal.SIGTERM)
        # A second ring must not re-chain the handler to itself.
        second = _SnapshotRing(16)
        try:
            assert signal.getsignal(signal.SIGTERM) is handler
            assert parallel._PREV_SIGTERM is not parallel._sigterm_reap_and_chain
        finally:
            second.close()
    finally:
        ring.close()
