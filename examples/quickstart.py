"""Quickstart: the paper's running example end to end.

Loads the four Hong Kong facts (Tables I & II), selects the best two tasks to
ask a crowd with accuracy 0.8 (reproducing Table III's conclusion that
{f1, f4} is the best pair), merges simulated crowd answers, and prints how
the marginals and the utility change.

Run with:  python examples/quickstart.py
"""

from repro.core import CrowdFusionEngine, CrowdModel, pws_quality
from repro.core.selection import get_selector
from repro.crowdsim import SimulatedPlatform, WorkerPool
from repro.datasets import running_example_distribution, running_example_facts
from repro.evaluation import format_table


def main() -> None:
    facts = running_example_facts()
    prior = running_example_distribution()
    crowd = CrowdModel(accuracy=0.8)

    print("Facts (Table I):")
    rows = [
        [fact.fact_id, fact.describe(), prior.marginal(fact.fact_id)]
        for fact in facts
    ]
    print(format_table(["id", "statement", "P(true)"], rows, float_format="{:.2f}"))
    print(f"\nPrior utility Q(F) = {pws_quality(prior):.4f}")

    # One-shot task selection: which two facts should the crowd judge?
    selection = get_selector("greedy_prune_pre").select(prior, crowd, k=2)
    print(f"\nBest 2 tasks to ask (greedy): {selection.task_ids} "
          f"with answer entropy H(T) = {selection.objective:.3f}")

    # Gold labels the simulated workers answer from: Hong Kong is in Asia,
    # has more than 500k people, is majority Chinese, and is not in Europe.
    gold = {"f1": True, "f2": True, "f3": True, "f4": False}
    platform = SimulatedPlatform(
        ground_truth=gold, workers=WorkerPool.homogeneous(10, accuracy=0.8, seed=6)
    )

    engine = CrowdFusionEngine(
        selector=get_selector("greedy_prune_pre"),
        crowd=crowd,
        budget=6,
        tasks_per_round=2,
    )
    result = engine.run(prior, platform)

    print(f"\nRounds executed: {len(result.rounds)}  (budget {engine.budget} tasks)")
    for record in result.rounds:
        answers = ", ".join(
            f"{fact_id}={'T' if record.answers[fact_id] else 'F'}"
            for fact_id in record.task_ids
        )
        print(
            f"  round {record.round_index}: asked {record.task_ids} -> {answers}; "
            f"utility {record.utility_before:.3f} -> {record.utility_after:.3f}"
        )

    print("\nPosterior marginals vs prior:")
    posterior = result.final_distribution
    rows = [
        [fact_id, prior.marginal(fact_id), posterior.marginal(fact_id), str(gold[fact_id])]
        for fact_id in prior.fact_ids
    ]
    print(format_table(["fact", "prior", "posterior", "gold"], rows, float_format="{:.3f}"))
    print(f"\nFinal utility Q(F) = {result.final_utility:.4f} "
          f"(improvement {result.final_utility - result.initial_utility:+.4f})")
    print(f"Predicted labels: {result.predicted_labels()}")


if __name__ == "__main__":
    main()
