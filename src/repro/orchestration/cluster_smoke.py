"""End-to-end smoke test of the cluster orchestrator (``make cluster-smoke``).

Runs the same sweep twice: once on the single-host durable orchestrator,
once on the lease-fenced cluster with two forked loopback workers — one of
which is SIGKILLed mid-lease by a watcher thread.  Asserts the cluster's
``curve.jsonl`` is byte-identical to the undisturbed single-host run, that
the kill was detected and the lease fenced, and that no worker processes
leaked (``multiprocessing.active_children()`` is empty).  Exits non-zero on
any failure, so it slots straight into CI.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import build_problems
from repro.evaluation.experiment import ExperimentConfig
from repro.fusion import ModifiedCRH
from repro.orchestration import (
    ClusterConfig,
    OrchestratorConfig,
    run_checkpointed_experiment,
    run_cluster_experiment,
)
from repro.orchestration.journal import read_records
from repro.orchestration.orchestrator import CURVE_NAME, JOURNAL_NAME
from repro.testing import faults
from repro.testing.faults import FaultPlan


def _problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=6, num_sources=10, max_sources_per_book=8, seed=3)
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


def _assassin(journal_path: Path, killed: dict) -> None:
    """SIGKILL one local worker once both hold a lease (so it dies mid-lease)."""
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        grants = set()
        if journal_path.exists():
            grants = {
                record["worker"]
                for record in read_records(str(journal_path))
                if record["type"] == "lease_granted"
            }
        children = multiprocessing.active_children()
        if len(grants) >= 2 and children:
            victim = children[0]
            killed["pid"] = victim.pid
            os.kill(victim.pid, signal.SIGKILL)
            return
        time.sleep(0.02)


def main() -> int:
    problems = _problems()
    config = ExperimentConfig(
        selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=11
    )
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as scratch:
        single_dir = os.path.join(scratch, "single")
        report = run_checkpointed_experiment(
            problems, config, OrchestratorConfig(run_dir=single_dir, shards=1)
        )
        print(f"single-host sweep: {report.completed}/{len(problems)} entities")

        cluster_dir = os.path.join(scratch, "cluster")
        cluster = ClusterConfig(
            run_dir=cluster_dir,
            lease_ttl_s=6.0,
            heartbeat_s=0.3,
            lease_entities=3,
            max_attempts=5,
            local_workers=2,
        )
        # Stretch each entity so the kill reliably lands mid-lease.
        faults.install(FaultPlan(delay_entity_seconds=0.3))
        killed: dict = {}
        watcher = threading.Thread(
            target=_assassin, args=(Path(cluster_dir) / JOURNAL_NAME, killed),
            daemon=True,
        )
        watcher.start()
        try:
            cluster_report = run_cluster_experiment(problems, config, cluster)
        finally:
            faults.uninstall()
        watcher.join(timeout=5.0)

        if not killed:
            print("FAIL: the watcher never found a leased worker to kill",
                  file=sys.stderr)
            return 1
        print(f"killed worker pid {killed['pid']} mid-lease; "
              f"{cluster_report.stats.leases_expired} lease(s) fenced, "
              f"epoch {cluster_report.stats.epoch}")
        if cluster_report.stats.leases_expired < 1:
            print("FAIL: the kill was never detected as a fenced lease",
                  file=sys.stderr)
            return 1
        if cluster_report.quarantined:
            print(f"FAIL: entities quarantined: {cluster_report.quarantined}",
                  file=sys.stderr)
            return 1

        single_curve = Path(single_dir, CURVE_NAME).read_bytes()
        cluster_curve = Path(cluster_dir, CURVE_NAME).read_bytes()
        if single_curve != cluster_curve:
            print("FAIL: cluster curve is not byte-identical to single-host",
                  file=sys.stderr)
            return 1
        print(f"curves byte-identical ({len(single_curve)} bytes)")

    leaked = multiprocessing.active_children()
    if leaked:
        print(f"FAIL: leaked worker processes: {leaked}", file=sys.stderr)
        return 1
    print("cluster-smoke OK: worker killed mid-lease, range reassigned, "
          "curve byte-identical, no leaked workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
