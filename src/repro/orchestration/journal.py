"""Crash-safe journal, checkpoint and lock primitives for run directories.

Three durability building blocks, shared by the experiment orchestrator and
the service session snapshot store:

* :class:`JournalWriter` / :func:`read_records` — an append-only JSON-lines
  event log.  Every append is flushed and ``fsync``'d before the caller
  proceeds, so a record either made it to disk whole or the reader sees (at
  most) one torn trailing line, which it silently drops — exactly the state
  a crash between ``write`` and ``fsync`` can leave behind.
* :func:`atomic_write_json` / :func:`read_json` — tmp-write, fsync, rename,
  directory-fsync checkpoints.  ``rename`` is atomic on POSIX, so a reader
  observes either the previous checkpoint or the new one, never a torn file;
  stale ``*.tmp`` leftovers from a crash are ignored (and reaped on the next
  successful write).
* :class:`RunLock` — a pid lock file guarding a run directory.  A lock held
  by a live process refuses the acquire; a lock left behind by a dead pid is
  taken over, so a SIGKILL'd orchestrator never bricks its run directory.

Every durability-relevant syscall path has a fault hook
(:mod:`repro.testing.faults`): ``journal_append`` can return ``"enospc"``
(the append raises :class:`OSError` with ``ENOSPC`` *before* writing),
``checkpoint_write`` can return ``"torn"`` (half the payload is written to
the tmp file and the rename is skipped — simulating a kill mid-write), and
``run_lock`` can return ``"stale_lock"`` (a dead-pid lock file is planted
before the acquire, forcing the takeover path).
"""

from __future__ import annotations

import errno
import json
import os
import time
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.exceptions import OrchestrationError
from repro.testing import faults


def _fsync_dir(directory: str) -> None:
    """Flush directory metadata (the rename itself) to disk, best effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def _encode(record: Dict[str, Any]) -> str:
    """One journal line: compact JSON, stable key order, exact float repr.

    ``json`` serialises floats with ``repr``, which round-trips IEEE-754
    doubles exactly — the property that makes journalled trajectories
    bit-identical on resume.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class JournalWriter:
    """Append-only, fsync-per-record JSON-lines journal."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record; raises ``OSError`` on a full disk."""
        directive = faults.fire("journal_append", path=self.path)
        if directive == "enospc":
            raise OSError(errno.ENOSPC, "No space left on device (injected)")
        self._handle.write(_encode(record) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_records(path: str) -> List[Dict[str, Any]]:
    """Read every whole record from a journal, dropping a torn trailing line.

    A torn line anywhere *except* the tail means the file was corrupted by
    something other than a crash mid-append and raises
    :class:`OrchestrationError` — resuming from a lying journal silently
    would be worse than failing loudly.
    """
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A well-formed journal ends with a newline, so the final split element
    # is empty; anything else is the torn tail of an interrupted append.
    if lines and lines[-1] == "":
        lines.pop()
    records: List[Dict[str, Any]] = []
    for position, line in enumerate(lines):
        try:
            records.append(json.loads(line))
        except ValueError:
            if position == len(lines) - 1:
                break  # torn trailing line from a crash mid-append
            raise OrchestrationError(
                f"journal {path} is corrupt at line {position + 1} "
                "(torn records are only tolerated at the tail)"
            )
    return records


def iter_records(path: str) -> Iterator[Dict[str, Any]]:
    """Iterate :func:`read_records` lazily (convenience for large journals)."""
    yield from read_records(path)


def merge_journals(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Merge per-worker journals into one deterministic record stream.

    Each journal is read with :func:`read_records` independently, so the
    one-torn-trailing-line tolerance applies **per journal**: a shard worker
    SIGKILLed mid-append leaves a torn tail in *its* file, and that file is
    not the last one in merge order — the tolerance must travel with the
    file, not with the concatenation.  Records are ordered deterministically
    (sorted journal path, then in-file position).

    ``entity_done`` records are deduplicated by entity index — duplicated
    delivery is legal at this layer (a retransmit racing its original, a
    reassigned range completed twice) as long as the payloads agree; the
    first copy in merge order wins.  Conflicting payloads for the same
    entity mean the bit-identity guarantee is already broken upstream and
    raise :class:`OrchestrationError` rather than silently assembling a
    curve from diverging trajectories.
    """
    merged: List[Dict[str, Any]] = []
    done: Dict[int, Dict[str, Any]] = {}
    for path in sorted(paths):
        for record in read_records(path):
            if record.get("type") == "entity_done":
                index = int(record["index"])
                previous = done.get(index)
                if previous is not None:
                    if previous.get("payload") != record.get("payload"):
                        raise OrchestrationError(
                            f"conflicting entity_done payloads for entity "
                            f"{index} across merged journals (second copy in "
                            f"{path}); the per-entity seed derivation should "
                            "make duplicates identical — refusing to merge"
                        )
                    continue
                done[index] = record
            merged.append(record)
    return merged


def atomic_write_json(path: str, payload: Dict[str, Any]) -> None:
    """Write ``payload`` to ``path`` atomically (tmp + fsync + rename).

    After this returns the file is durably the new payload; if the process
    dies anywhere inside, the previous file content is untouched and at most
    a ``*.tmp`` sibling is left behind (cleaned up by the next write and
    ignored by :func:`read_json`).
    """
    directive = faults.fire("checkpoint_write", path=path)
    tmp_path = path + ".tmp"
    data = _encode(payload)
    if directive == "torn":
        # Simulate a kill halfway through the tmp write: flush a prefix of
        # the payload, skip the rename, and die the way a SIGKILL would.
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(data[: max(1, len(data) // 2)])
            handle.flush()
            os.fsync(handle.fileno())
        raise faults.FaultInjected(f"injected torn checkpoint write ({path})")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp_path, path)
    _fsync_dir(os.path.dirname(path) or ".")


def read_json(path: str) -> Optional[Dict[str, Any]]:
    """Read an atomic-write checkpoint; ``None`` when it does not exist.

    ``*.tmp`` leftovers are never read — they are, by construction, the
    possibly-torn half of a write that did not commit.
    """
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.loads(handle.read())


#: Bounded retries for the in-flux windows of a racing acquire: a lock file
#: observed empty (holder mid-write) or vanishing (holder mid-takeover).
_ACQUIRE_ATTEMPTS = 50
_ACQUIRE_BACKOFF_S = 0.01


class RunLock:
    """Pid lock file guarding a run directory against concurrent writers.

    ``acquire`` refuses when the recorded pid is alive, takes over when it is
    dead (a crashed orchestrator must not brick its run directory), and
    creates its own lock with ``O_CREAT|O_EXCL`` so two racing acquirers
    serialize in the kernel: exactly one creation succeeds.  Stale-lock
    takeover is an ``os.rename`` to a per-acquirer graveyard name — again
    exactly one racer's rename succeeds; the loser re-reads the winner's
    fresh lock and refuses with a clear error.  ``release`` only removes the
    lock when it still belongs to this process.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._owned = False

    def acquire(self) -> None:
        directive = faults.fire("run_lock", path=self.path)
        if directive == "stale_lock":
            # Plant a lock from a guaranteed-dead pid so the takeover path
            # runs deterministically under test.
            atomic_write_json(self.path, {"pid": _dead_pid()})
        unreadable = 0
        for attempt in range(_ACQUIRE_ATTEMPTS):
            if self._try_create():
                return
            holder_pid = self._holder_pid()
            if holder_pid is None:
                # The lock vanished (a racing takeover in flight) or its
                # creator is between open and write; back off briefly and
                # look again.  A lock that stays unreadable for half the
                # retry budget is the debris of a crash inside that window —
                # fall through and treat it as stale.
                unreadable += 1
                if unreadable < _ACQUIRE_ATTEMPTS // 2:
                    time.sleep(_ACQUIRE_BACKOFF_S)
                    continue
                holder_pid = -1
            if holder_pid == os.getpid():
                self._owned = True  # re-entrant acquire by the same process
                return
            if holder_pid > 0 and _pid_alive(holder_pid):
                raise OrchestrationError(
                    f"run directory is locked by live process {holder_pid} "
                    f"({self.path}); refusing concurrent access"
                )
            grave = f"{self.path}.stale.{os.getpid()}.{attempt}"
            try:
                os.rename(self.path, grave)
            except FileNotFoundError:
                continue  # another racer already renamed it away
            try:
                os.unlink(grave)
            except OSError:  # pragma: no cover - already reaped
                pass
        raise OrchestrationError(
            f"could not acquire run lock {self.path}: the lock file kept "
            f"changing hands for {_ACQUIRE_ATTEMPTS} attempts"
        )

    def _try_create(self) -> bool:
        """Atomically create the lock file; ``True`` when this process now owns it."""
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return False
        try:
            os.write(fd, (_encode({"pid": os.getpid()}) + "\n").encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        self._owned = True
        return True

    def _holder_pid(self) -> Optional[int]:
        """The pid recorded in the lock file; ``None`` when missing or unreadable."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                payload = json.loads(handle.read())
            return int(payload.get("pid", -1))
        except (OSError, ValueError):
            return None

    def release(self) -> None:
        if not self._owned:
            return
        self._owned = False
        holder = read_json(self.path)
        if holder is not None and int(holder.get("pid", -1)) == os.getpid():
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "RunLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process we could signal."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - live but not ours
        return True
    return True


def _dead_pid() -> int:
    """A pid that is certainly not a live process (for the stale-lock fault)."""
    child = os.fork()
    if child == 0:
        os._exit(0)
    os.waitpid(child, 0)
    return child
