"""The vectorized, incremental entropy engine behind every selector.

One greedy iteration of Algorithm 1 evaluates ``H(T ∪ {f})`` for every
remaining candidate ``f``.  The engine makes a single evaluation cheap by
combining three ideas:

1. **Vectorized preprocessing** — the output support is held once as
   contiguous NumPy arrays (masks, probabilities, and one 0/1 column per
   candidate fact), so no per-candidate pass ever touches Python dicts.

2. **Incremental partition refinement** (Algorithm 2 of the paper) — the
   projection of every output onto the already-selected task set is cached in
   the :class:`SelectionState` and only *extended by one bit* per candidate,
   instead of being recomputed from the raw masks.

3. **Incremental channel reuse** — the selected set's noise-convolved answer
   distribution ``B = Chan(grouped(T))`` is cached in the state.  For a
   candidate ``f``, only the mass where ``f`` is true needs a fresh
   convolution: with ``B₁ = Chan(grouped(T, f=true))`` linearity gives
   ``B₀ = B − B₁``, and the answer distribution of ``T ∪ {f}`` is the pair
   ``(acc_f·B₁ + (1−acc_f)·B₀, (1−acc_f)·B₁ + acc_f·B₀)`` interleaved — one
   ``O(w·2^w)`` transform per candidate instead of rebuilding everything.

The channels need not be uniform: the engine accepts any
:class:`~repro.core.crowd.ChannelModel`, keeping one ``(acc_i, 1 − acc_i)``
pair per selected bit (cached in :attr:`SelectionState.bit_accuracies`).
Uniform models take the original shared-BSC code path, which the
heterogeneous kernels reproduce bit-for-bit when accuracies are equal.

The same machinery serves query-based selection (Section IV): the support is
additionally partitioned into *facts-of-interest cells* (distinct projections
onto ``I``), the cached table keeps one row per cell, and both ``H(T)`` and
``H(I, T)`` fall out of the same convolved table.

The engine is also the unit of cross-round reuse: :meth:`reweight` applies a
Bayesian update to the cached probability vector in place (the support masks,
bit columns and interest cells never change), which is what lets a
:class:`~repro.core.selection.session.RefinementSession` amortise one engine
over an entire multi-round run instead of rebuilding it after every merge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.entropy import (
    bit_column,
    bsc_transform,
    bsc_transform_rows,
    channel_transform,
    channel_transform_rows,
    entropy_bits,
    project_columns,
)
from repro.core.kernels import KernelSet, resolve_kernels, warmup
from repro.core.utility import crowd_entropy
from repro.exceptions import SelectionError

#: Hard cap on the number of channeled table entries (cells × answer vectors).
_MAX_TABLE_ENTRIES = 1 << 26

#: Largest task set a single evaluation may enumerate answer vectors for —
#: kept equal to the cap in :mod:`repro.core.crowd` so the engine and the
#: crowd model refuse the same workloads.
_MAX_TASK_BITS = 24

#: Supports larger than this do not cache the per-fact ``probabilities × bits``
#: products: on a 2^20-row support each cached product costs 8 MB, so a
#: hundreds-of-candidates scan would hold gigabytes for a multiply that takes
#: ~1 ms to redo.  The recomputed product is the identical float array, so
#: results are unchanged either way.
_WEIGHTED_CACHE_MAX_SUPPORT = 1 << 18

#: Placeholder passed to the fused scan kernels for uniform channel models
#: (a kernel signature takes the per-bit accuracy vector unconditionally).
_NO_BIT_ACCURACIES = np.empty(0, dtype=np.float64)


@dataclass(frozen=True)
class SelectionState:
    """Cached per-round state of an incrementally grown task set.

    Attributes
    ----------
    task_ids:
        Selected fact ids, in selection order (most recent last).
    width:
        Number of selected tasks (bits per answer vector).
    entropy:
        Answer-set entropy ``H(T)`` of the selected set.
    joint_entropy:
        Joint entropy ``H(I, T)`` when the engine partitions by facts of
        interest; equals ``entropy`` for engines without interest cells
        (one cell holding the whole support).
    projection:
        Per-support-row projection onto the selected tasks; the most recently
        selected task occupies the least significant bit.
    combined:
        Per-support-row bincount key ``(cell << width) | projection``.
    table:
        Noise-convolved mass table of shape ``(num_cells, 2**width)``:
        ``table[c, a]`` is the joint probability of interest cell ``c`` and
        answer vector ``a``.
    bit_accuracies:
        Per-bit channel accuracies aligned with ``projection`` (least
        significant bit first, i.e. reverse selection order); ``None`` for
        uniform channel models, whose single accuracy lives on the engine.
    """

    task_ids: Tuple[str, ...]
    width: int
    entropy: float
    joint_entropy: float
    projection: np.ndarray
    combined: np.ndarray
    table: np.ndarray
    bit_accuracies: Optional[np.ndarray] = None


class EntropyEngine:
    """Vectorized evaluator of answer-set entropies over one distribution.

    Parameters
    ----------
    distribution:
        The joint output distribution whose support backs all evaluations.
    crowd:
        Channel model defining the per-task noise channels (the paper's
        uniform :class:`~repro.core.crowd.CrowdModel` or any heterogeneous
        :class:`~repro.core.crowd.ChannelModel`).
    interest_ids:
        Optional facts of interest.  When given, states additionally track
        ``H(I, T)`` so query-based utilities ``Q(I|T) = H(T) − H(I, T)`` come
        from the same cached table.
    kernel:
        Kernel-tier request resolved through
        :func:`repro.core.kernels.resolve_kernels` — ``auto`` (the default;
        env-overridable via ``REPRO_KERNEL``), ``compiled``, ``numpy`` or
        ``reference``.  Selections are identical across tiers; the compiled
        tier fuses each per-candidate scan into one native call.
    packed:
        Support-mask layout override.  ``None`` (the default) keeps the
        ``int64`` column up to 63 facts and switches to packed uint64 bit
        planes (:mod:`repro.core.bitplanes`) beyond; ``True``/``False``
        force the packed/legacy layout — ``False`` on a wide distribution
        reinstates the historical object-dtype path (benchmarked as the
        ``wide_facts/*`` baseline, not meant for production use).
    """

    #: Whether this engine is an :meth:`interest_view` snapshot (views share
    #: the parent's probability vector and therefore refuse to reweight).
    _is_view = False

    def __init__(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        interest_ids: Optional[Sequence[str]] = None,
        kernel: str = "auto",
        packed: Optional[bool] = None,
    ):
        self._distribution = distribution
        self._crowd = crowd
        self._uniform = crowd.uniform_accuracy
        self._kernels: KernelSet = resolve_kernels(kernel)
        if packed is None:
            packed = distribution.num_facts > 63
        if packed:
            # The packed layout never materialises the object-dtype mask
            # column: planes and the probability vector come straight from
            # the distribution's dict storage.
            self._masks = distribution.support_planes()
            self._probabilities = distribution.support_probabilities()
        else:
            masks, probabilities = distribution.support_arrays()
            self._masks = masks
            self._probabilities = probabilities
        self._cell_index, self._num_cells = self._build_interest_cells(interest_ids)
        self._bits: Dict[str, np.ndarray] = {}
        self._weighted_bits: Dict[str, np.ndarray] = {}
        self._accuracy: Dict[str, float] = {}
        self._noise: Dict[str, float] = {}
        #: Number of entropy evaluations served (one per scored candidate).
        self.evaluations = 0
        #: Number of Bayesian reweights applied (rounds served by this engine).
        self.reweights = 0
        #: Number of channel-model swaps applied (:meth:`set_channel` calls).
        #: Together with :attr:`reweights` this is the engine's *generation*:
        #: persistent pool workers compare both counters against the parent's
        #: to decide whether their inherited state needs a re-sync.
        self.channel_swaps = 0

    def _build_interest_cells(
        self, interest_ids: Optional[Sequence[str]]
    ) -> "Tuple[np.ndarray, int]":
        """Dense cell index of the support's projections onto ``interest_ids``.

        One cell per distinct interest projection present in the support
        (a single cell holding everything when there is no interest set);
        shared by the constructor and :meth:`interest_view`.
        """
        if interest_ids:
            interest_positions = self._distribution.positions(interest_ids)
            interest_sub = project_columns(self._masks, interest_positions)
            _, cell_index = np.unique(interest_sub, return_inverse=True)
            cell_index = cell_index.astype(np.int64)
            return cell_index, int(cell_index.max()) + 1
        return np.zeros(self._masks.shape[0], dtype=np.int64), 1

    @property
    def distribution(self) -> JointDistribution:
        """The distribution the engine was *built* on.

        After :meth:`reweight` the cached probabilities diverge from this
        object; sessions materialise the current posterior on demand.
        """
        return self._distribution

    @property
    def crowd(self) -> ChannelModel:
        return self._crowd

    @property
    def uniform_accuracy(self) -> Optional[float]:
        """Shared channel accuracy, or ``None`` for heterogeneous models."""
        return self._uniform

    @property
    def support_masks(self) -> np.ndarray:
        """Support bitmasks, aligned with :attr:`probabilities` (never mutated).

        An ``int64`` column up to 63 facts; a packed ``(rows, words)`` uint64
        bit-plane array beyond (``shape[0]`` is the support size either way).
        """
        return self._masks

    @property
    def kernel_tier(self) -> str:
        """The resolved kernel tier scoring this engine's candidate scans."""
        return self._kernels.tier

    def warmup_kernels(self) -> None:
        """Force-compile this engine's kernel tier (no-op past the first call).

        The parallel evaluators call this in the parent process immediately
        before forking worker pools, so JIT compilation happens exactly once
        and the workers inherit the machine code through copy-on-write.
        """
        warmup(self._kernels)

    @property
    def probabilities(self) -> np.ndarray:
        """The current (possibly reweighted) probability vector over the support."""
        return self._probabilities

    def bits(self, fact_id: str) -> np.ndarray:
        """0/1 truth column of ``fact_id`` over the support (cached).

        Stored as ``int8`` — one byte per support row — so a scale corpus
        (2^20 rows, hundreds of candidate facts) keeps its whole column cache
        in tens of megabytes; every consumer (``|`` into an ``int64``
        projection, ``×`` into a float64 product) promotes losslessly.
        """
        column = self._bits.get(fact_id)
        if column is None:
            position = self._distribution.position(fact_id)
            # bit_column dispatches on the mask layout: int64 column, packed
            # uint64 planes, or (legacy) object-dtype Python ints.
            column = bit_column(self._masks, position)
            self._bits[fact_id] = column
        return column

    def weighted_bits(self, fact_id: str) -> np.ndarray:
        """Support probabilities masked to rows where ``fact_id`` is true.

        Cached per fact on ordinarily sized supports; past
        :data:`_WEIGHTED_CACHE_MAX_SUPPORT` rows the product is recomputed on
        demand (same floats, a fraction of the memory).
        """
        weighted = self._weighted_bits.get(fact_id)
        if weighted is None:
            weighted = self._probabilities * self.bits(fact_id)
            if self._probabilities.shape[0] <= _WEIGHTED_CACHE_MAX_SUPPORT:
                self._weighted_bits[fact_id] = weighted
        return weighted

    def accuracy_for(self, fact_id: str) -> float:
        """Channel accuracy of ``fact_id`` (cached lookup into the model)."""
        accuracy = self._accuracy.get(fact_id)
        if accuracy is None:
            accuracy = self._crowd.accuracy_for(fact_id)
            self._accuracy[fact_id] = accuracy
        return accuracy

    def noise_entropy(self, fact_id: str) -> float:
        """Per-task crowd entropy ``H(Crowd_f)`` of ``fact_id``'s channel (cached)."""
        noise = self._noise.get(fact_id)
        if noise is None:
            noise = crowd_entropy(self.accuracy_for(fact_id))
            self._noise[fact_id] = noise
        return noise

    # -- cross-round reuse ----------------------------------------------------------

    def set_channel(self, crowd: ChannelModel) -> None:
        """Swap the channel model in place, keeping every structural cache.

        Used by adaptive re-calibration: as rounds accumulate, a session may
        re-estimate per-fact accuracies and hand the engine the updated model.
        Support masks, bit columns and interest cells are untouched; only the
        per-fact accuracy / noise-entropy caches reset.  Existing interest
        views are snapshots of the *old* channel (they copy the accuracy
        caches at creation) — discard and rebuild them after a swap, as
        sessions do on every merge.
        """
        self._crowd = crowd
        self._uniform = crowd.uniform_accuracy
        self._accuracy.clear()
        self._noise.clear()
        self.channel_swaps += 1

    def interest_view(self, interest_ids: Sequence[str]) -> "EntropyEngine":
        """A facts-of-interest view sharing this engine's cached arrays.

        Batched multi-query selection scores many queries' task sets against
        one entity: every query needs its own interest-cell partition, but
        the expensive per-fact state — support masks, probability vector and
        the cached 0/1 bit columns — is interest-independent.  The returned
        engine *shares* those by reference (the bit-column cache is the same
        dict object, so a column materialised for one query is warm for
        every other) and only computes the view's own cell index.

        The view is a snapshot of the current probabilities: it must not be
        reweighted (sessions rebuild their views after each merge), and its
        evaluation counters are independent of the parent's.
        """
        view = EntropyEngine.__new__(EntropyEngine)
        view._distribution = self._distribution
        view._crowd = self._crowd
        view._uniform = self._uniform
        view._kernels = self._kernels
        view._masks = self._masks
        view._probabilities = self._probabilities
        # The bit columns are channel- and probability-independent, so the
        # cache is shared as the same dict object: a column materialised for
        # one query is warm for every other (and for the parent).
        view._bits = self._bits
        # Everything that depends on the snapshot — the probability products,
        # the channel accuracies — is seeded from the parent but kept
        # private, so a later reweight or channel swap on the parent can
        # never be poisoned by a stale view (nor vice versa).
        view._accuracy = dict(self._accuracy)
        view._noise = dict(self._noise)
        view._weighted_bits = dict(self._weighted_bits)
        view._cell_index, view._num_cells = view._build_interest_cells(interest_ids)
        view._is_view = True
        view.evaluations = 0
        view.reweights = 0
        view.channel_swaps = 0
        return view

    def reweight(self, weights: np.ndarray) -> None:
        """Apply a Bayesian update to the cached probabilities, in place.

        ``weights[i]`` multiplies the mass of support row ``i`` (the same
        alignment contract as :meth:`JointDistribution.reweight_array`); the
        result is renormalised.  Masks, bit columns and interest cells are
        untouched, so all structural caches stay valid — only the per-fact
        ``weighted_bits`` products are invalidated.  Rows whose mass reaches
        exactly zero are kept (every consumer ignores non-positive mass),
        preserving row alignment for later reweights.
        """
        if self._is_view:
            raise SelectionError(
                "interest views share their parent's probability vector and "
                "cannot be reweighted; reweight the owning engine instead"
            )
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != self._probabilities.shape:
            raise SelectionError(
                f"expected {self._probabilities.shape[0]} weights aligned to the "
                f"support, got {weights.shape}"
            )
        if np.isnan(weights).any() or (weights < 0.0).any():
            raise SelectionError("reweight weights must be non-negative numbers")
        masses = self._probabilities * weights
        total = masses.sum()
        if total <= 0.0:
            raise SelectionError("reweighting removed all probability mass")
        self._probabilities = masses / total
        self._weighted_bits.clear()
        self.reweights += 1

    def load_probabilities(self, probabilities: np.ndarray, reweights: int) -> None:
        """Replace the probability vector verbatim with a peer's snapshot.

        The persistent-pool sync primitive: a fork-inherited worker engine
        catches up with its parent by copying the parent's already-normalised
        posterior byte for byte (no renormalisation, so every later float
        operation is bit-identical to the parent's) and adopting the parent's
        :attr:`reweights` generation.  Structural caches (masks, bit columns,
        interest cells) stay valid exactly as they do across
        :meth:`reweight`; only the ``weighted_bits`` products are dropped.
        """
        if self._is_view:
            raise SelectionError(
                "interest views share their parent's probability vector and "
                "cannot load snapshots; sync the owning engine instead"
            )
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if probabilities.shape != self._probabilities.shape:
            raise SelectionError(
                f"expected a snapshot of {self._probabilities.shape[0]} "
                f"probabilities aligned to the support, got {probabilities.shape}"
            )
        self._probabilities = probabilities.copy()
        self._weighted_bits.clear()
        self.reweights = reweights

    # -- incremental path -----------------------------------------------------------

    def initial_state(self) -> SelectionState:
        """State of the empty task set (``H(T) = 0``, ``H(I, T) = H(I)``)."""
        cell_mass = np.bincount(
            self._cell_index, weights=self._probabilities, minlength=self._num_cells
        )
        return SelectionState(
            task_ids=(),
            width=0,
            entropy=0.0,
            joint_entropy=entropy_bits(cell_mass),
            projection=np.zeros(self._masks.shape[0], dtype=np.int64),
            combined=self._cell_index.copy(),
            table=cell_mass.reshape(self._num_cells, 1),
            bit_accuracies=None if self._uniform is not None else np.empty(0),
        )

    def _convolve_extension(
        self, state: SelectionState, fact_id: str
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Channel tables ``(A_false, A_true)`` of ``T ∪ {fact_id}`` + its accuracy.

        ``A_true[c, a]`` is the joint mass of cell ``c``, selected-answer
        vector ``a`` and a "true" answer for the candidate; ``A_false``
        likewise for a "false" answer.
        """
        width = state.width
        grouped_true = np.bincount(
            state.combined,
            weights=self.weighted_bits(fact_id),
            minlength=self._num_cells << width,
        ).reshape(self._num_cells, 1 << width)
        if self._uniform is not None:
            channeled_true = bsc_transform_rows(grouped_true, width, self._uniform)
            accuracy = self._uniform
        else:
            channeled_true = channel_transform_rows(grouped_true, state.bit_accuracies)
            accuracy = self.accuracy_for(fact_id)
        # Linearity of the channel: Chan(grouped_false) = Chan(grouped) − Chan(grouped_true).
        # The subtraction can leave ~1e-16 negative residue; clamp it so the
        # entropy kernel treats it as the zero it mathematically is.
        channeled_false = state.table - channeled_true
        np.maximum(channeled_false, 0.0, out=channeled_false)
        error = 1.0 - accuracy
        answer_true = accuracy * channeled_true + error * channeled_false
        answer_false = error * channeled_true + accuracy * channeled_false
        return answer_false, answer_true, accuracy

    def extension_entropies(
        self, state: SelectionState, fact_id: str
    ) -> Tuple[float, float]:
        """Return ``(H(T ∪ {f}), H(I, T ∪ {f}))`` without mutating the state."""
        self.evaluations += 1
        scan = self._kernels.extension_scan
        if scan is not None:
            # The fused tiers (compiled / reference) run the whole pipeline —
            # masked grouping, channel butterflies, candidate channel, both
            # entropies — as one kernel call with no temporary tables.
            if self._uniform is not None:
                uniform_accuracy = self._uniform
                candidate_accuracy = self._uniform
                bit_accuracies = _NO_BIT_ACCURACIES
            else:
                uniform_accuracy = -1.0
                candidate_accuracy = self.accuracy_for(fact_id)
                bit_accuracies = state.bit_accuracies
            task_entropy, joint_entropy = scan(
                state.combined,
                self.bits(fact_id),
                self._probabilities,
                state.table.reshape(-1),
                self._num_cells,
                state.width,
                bit_accuracies,
                uniform_accuracy,
                candidate_accuracy,
            )
            return float(task_entropy), float(joint_entropy)
        answer_false, answer_true, _ = self._convolve_extension(state, fact_id)
        joint_entropy = entropy_bits(answer_false) + entropy_bits(answer_true)
        if self._num_cells == 1:
            return joint_entropy, joint_entropy
        task_entropy = entropy_bits(answer_false.sum(axis=0)) + entropy_bits(
            answer_true.sum(axis=0)
        )
        return task_entropy, joint_entropy

    def extension_entropy(self, state: SelectionState, fact_id: str) -> float:
        """Answer-set entropy ``H(T ∪ {f})`` of extending the state by one task."""
        return self.extension_entropies(state, fact_id)[0]

    def extend(self, state: SelectionState, fact_id: str) -> SelectionState:
        """Commit ``fact_id`` into the state, refining the cached partition."""
        width = state.width + 1
        if width > _MAX_TASK_BITS or (self._num_cells << width) > _MAX_TABLE_ENTRIES:
            raise SelectionError(
                f"selection state table would exceed {_MAX_TABLE_ENTRIES} entries "
                f"or {_MAX_TASK_BITS} tasks ({self._num_cells} cells x 2^{width} "
                "answer vectors)"
            )
        answer_false, answer_true, accuracy = self._convolve_extension(state, fact_id)
        table = np.empty((self._num_cells, 1 << width))
        # The new task takes the least significant answer bit, matching the
        # projection refinement below.
        table[:, 0::2] = answer_false
        table[:, 1::2] = answer_true
        joint_entropy = entropy_bits(answer_false) + entropy_bits(answer_true)
        if self._num_cells == 1:
            task_entropy = joint_entropy
        else:
            task_entropy = entropy_bits(answer_false.sum(axis=0)) + entropy_bits(
                answer_true.sum(axis=0)
            )
        refine = self._kernels.refine_partition
        if refine is not None:
            # Integer-only fused refinement — bit-identical to the two
            # vectorized expressions below.
            projection, combined = refine(
                state.projection, self.bits(fact_id), self._cell_index, width
            )
        else:
            projection = (state.projection << 1) | self.bits(fact_id)
            combined = (self._cell_index << width) | projection
        if state.bit_accuracies is None:
            bit_accuracies = None
        else:
            bit_accuracies = np.concatenate(([accuracy], state.bit_accuracies))
        return SelectionState(
            task_ids=state.task_ids + (fact_id,),
            width=width,
            entropy=task_entropy,
            joint_entropy=joint_entropy,
            projection=projection,
            combined=combined,
            table=table,
            bit_accuracies=bit_accuracies,
        )

    # -- from-scratch path ----------------------------------------------------------

    def task_entropy(self, task_ids: Sequence[str]) -> float:
        """``H(T)`` of an arbitrary task set, computed in one shot.

        Used by the brute-force (OPT) selector, where task sets are not grown
        incrementally.
        """
        positions = self._distribution.positions(task_ids)
        k = len(positions)
        if k > _MAX_TASK_BITS:
            raise SelectionError(
                f"refusing to enumerate 2^{k} answer vectors in one evaluation "
                f"(task sets are limited to {_MAX_TASK_BITS} facts)"
            )
        self.evaluations += 1
        projected = project_columns(self._masks, positions)
        grouped = np.bincount(projected, weights=self._probabilities, minlength=1 << k)
        if self._uniform is not None:
            return entropy_bits(bsc_transform(grouped, k, self._uniform))
        return entropy_bits(
            channel_transform(grouped, self._crowd.accuracies(task_ids))
        )
