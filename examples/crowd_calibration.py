"""Estimating crowd accuracy with qualification pre-tests (Section V-C).

The paper observes that the real crowd's accuracy was about 0.86 and that
mis-estimating ``Pc`` hurts: underestimating slows convergence, overstating it
(``Pc = 1``) freezes early mistakes forever.  This example runs three
calibration workflows of increasing fidelity:

1. a **pooled pre-test** estimating one shared ``Pc`` from gold tasks;
2. a **per-domain pre-test** on a domain-skilled pool, turning the estimates
   into a heterogeneous :class:`CalibratedCrowdModel` whose per-fact channels
   change which tasks greedy selection picks;
3. an **end-to-end comparison** of the ``uniform`` / ``difficulty`` /
   ``calibrated`` crowd models on the refinement experiment.

Run with:  python examples/crowd_calibration.py
"""

from repro.core import CrowdModel
from repro.core.crowd import CalibratedCrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import get_selector
from repro.crowdsim import (
    QualificationTest,
    SimulatedPlatform,
    Worker,
    WorkerPool,
    calibrate_domain_accuracies,
)
from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import (
    ExperimentConfig,
    build_problems,
    format_table,
    run_quality_experiment,
)
from repro.fusion import ModifiedCRH

TRUE_WORKER_ACCURACY = 0.86


def pooled_pretest(corpus) -> float:
    """Estimate one shared Pc from a 20-statement gold pre-test."""
    pool = WorkerPool.heterogeneous(
        40, mean_accuracy=TRUE_WORKER_ACCURACY, spread=0.05, seed=53
    )
    platform = SimulatedPlatform(ground_truth=corpus.gold, workers=pool)
    sample = dict(list(corpus.gold.items())[:20])
    estimate = QualificationTest(sample, repetitions=5).run(platform)
    print(
        f"Pooled pre-test on {estimate.sample_size} tasks: estimated Pc = "
        f"{estimate.estimated_accuracy:.3f} "
        f"(95% interval [{estimate.interval_low:.3f}, {estimate.interval_high:.3f}]; "
        f"true pool mean {pool.mean_accuracy():.3f})"
    )
    return estimate.estimated_accuracy


def domain_calibrated_selection() -> None:
    """Per-domain channels change which tasks greedy selection asks."""
    # Workers are sharp on titles but barely better than chance on authors —
    # the paper's "reliable only in some domains" motivation.
    workers = WorkerPool(
        [
            Worker(f"w{i}", accuracy=0.8, domain_skills={"title": 0.97, "author": 0.55})
            for i in range(12)
        ],
        seed=5,
    )
    gold = {f"t{i}": True for i in range(4)} | {f"a{i}": True for i in range(4)}
    domains = {f"t{i}": "title" for i in range(4)} | {f"a{i}": "author" for i in range(4)}
    platform = SimulatedPlatform(ground_truth=gold, workers=workers, domains=domains)

    estimates = calibrate_domain_accuracies(platform, gold, domains, repetitions=25)
    rows = [
        [domain, result.estimated_accuracy, result.sample_size]
        for domain, result in estimates.items()
    ]
    print("\nPer-domain pre-test (true skills: title 0.97, author 0.55):")
    print(format_table(["domain", "estimated Pc", "samples"], rows, float_format="{:.3f}"))

    channel = CalibratedCrowdModel.from_domain_estimates(
        estimates, domains, default_accuracy=0.8
    )
    # Author facts are *more* uncertain a priori, so a uniform channel model
    # spends the whole round on them — even though the crowd can barely
    # answer author questions better than a coin flip.
    marginals = {fact_id: (0.65 if fact_id.startswith("t") else 0.5) for fact_id in gold}
    prior = JointDistribution.independent(marginals)
    uniform_pick = get_selector("greedy").select(prior, CrowdModel(0.8), k=3)
    calibrated_pick = get_selector("greedy").select(prior, channel, k=3)
    print(
        "\nGreedy task choice (authors more uncertain, but near-chance to ask):\n"
        f"  uniform Pc=0.8 channels:  {uniform_pick.task_ids}\n"
        f"  calibrated channels:      {calibrated_pick.task_ids}\n"
        "  (calibration steers the budget toward domains the crowd can "
        "actually answer)"
    )


def refinement_comparison(corpus, estimated_pc: float) -> None:
    """Compare assumed-Pc choices and channel-model fidelities end to end."""
    problems = build_problems(
        corpus.database, corpus.gold, ModifiedCRH(),
        difficulties=corpus.difficulties, max_facts_per_entity=8,
    )
    runs = {
        "estimated Pc (uniform)": dict(
            assumed_accuracy=round(estimated_pc, 3), crowd_model="uniform"
        ),
        "pessimistic Pc=0.6": dict(assumed_accuracy=0.6, crowd_model="uniform"),
        "blind trust Pc=1.0": dict(assumed_accuracy=1.0, crowd_model="uniform"),
        "difficulty channels": dict(
            assumed_accuracy=round(estimated_pc, 3), crowd_model="difficulty"
        ),
        "calibrated channels": dict(
            crowd_model="calibrated", calibration_facts=8, calibration_repetitions=6
        ),
    }
    rows = []
    for label, overrides in runs.items():
        config = ExperimentConfig(
            selector="greedy_prune_pre",
            k=2,
            budget_per_entity=14,
            worker_accuracy=TRUE_WORKER_ACCURACY,
            use_difficulties=True,
            seed=61,
            **overrides,
        )
        result = run_quality_experiment(problems, config)
        rows.append([label, result.final_point.f1, result.final_point.utility])

    print("\nRefinement quality after 14 tasks/book (workers really at Pc=0.86):")
    print(
        format_table(
            ["assumption", "final F1", "final utility"], rows, float_format="{:.3f}"
        )
    )
    print(
        "\nTakeaway (matches Section V-C): a well-estimated Pc dominates both "
        "a pessimistic estimate and blind trust in the crowd.  Heterogeneous "
        "channels are honest about hard statements — they spend budget where "
        "answers carry information and report lower self-assessed confidence "
        "— at the price of leaving the hardest facts unasked on a small "
        "budget; the domain demo above shows where that honesty pays off."
    )


def main() -> None:
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=25, num_sources=16, seed=37)
    )
    estimated_pc = pooled_pretest(corpus)
    domain_calibrated_selection()
    refinement_comparison(corpus, estimated_pc)


if __name__ == "__main__":
    main()
