"""Unit tests for the naive fact-entropy baseline (Section III-B discussion)."""

import itertools

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import FactEntropySelector, GreedySelector, get_selector
from repro.datasets.running_example import running_example_distribution


class TestFactEntropySelector:
    def test_registered_under_canonical_name(self):
        assert isinstance(get_selector("fact_entropy"), FactEntropySelector)

    def test_selects_most_uncertain_fact_first(self):
        dist = JointDistribution.independent({"a": 0.95, "b": 0.5, "c": 0.8})
        result = FactEntropySelector().select(dist, CrowdModel(0.7), 1)
        assert result.task_ids == ("b",)

    def test_greedily_maximises_fact_joint_entropy(self):
        dist = running_example_distribution()
        result = FactEntropySelector().select(dist, CrowdModel(0.8), 2)
        # First pick is the single most uncertain fact (f1, exactly 1 bit).
        assert result.task_ids[0] == "f1"
        # Being greedy, the pair is within the (1 − 1/e) factor of the best pair.
        best = max(
            dist.marginalize(pair).entropy()
            for pair in itertools.combinations(dist.fact_ids, 2)
        )
        achieved = dist.marginalize(result.task_ids).entropy()
        assert achieved <= best + 1e-9
        assert achieved >= (1 - 1 / 2.718281828) * best

    def test_differs_from_answer_entropy_greedy_with_noisy_crowd(self):
        """The paper's Table III point: the naive choice is not {f1, f4} at Pc = 0.8."""
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        naive = FactEntropySelector().select(dist, crowd, 2)
        informed = GreedySelector().select(dist, crowd, 2)
        assert set(naive.task_ids) != set(informed.task_ids)
        # And the informed choice achieves a higher answer-set entropy.
        assert informed.objective > naive.objective

    def test_matches_greedy_for_perfect_crowd(self):
        dist = running_example_distribution()
        crowd = CrowdModel(1.0)
        naive = FactEntropySelector().select(dist, crowd, 2)
        informed = GreedySelector().select(dist, crowd, 2)
        assert crowd.task_entropy(dist, naive.task_ids) == pytest.approx(
            crowd.task_entropy(dist, informed.task_ids), abs=1e-9
        )

    def test_objective_reported_as_answer_entropy(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        result = FactEntropySelector().select(dist, crowd, 2)
        assert result.objective == pytest.approx(
            crowd.task_entropy(dist, result.task_ids)
        )

    def test_stops_when_facts_are_certain(self):
        dist = JointDistribution.independent({"a": 1.0, "b": 0.5})
        result = FactEntropySelector().select(dist, CrowdModel(0.8), 2)
        assert result.task_ids == ("b",)
