"""Unit suite for the fault-injection harness itself.

The chaos suites trust :mod:`repro.testing.faults` to fire exactly where and
how often a plan says; this suite pins that contract — plan validation, the
env-var spec parser, inertness without an installed plan, the per-fault
budgets, and the directive strings the runtime interprets.
"""

import pytest

from repro.testing import faults
from repro.testing.faults import FaultInjected, FaultPlan


@pytest.fixture(autouse=True)
def disarm():
    """Every test starts and ends with no plan installed."""
    faults.uninstall()
    yield
    faults.uninstall()


class TestFaultPlanValidation:
    def test_positional_faults_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(kill_worker_at_dispatch=0)
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(fail_merge_at=-1)
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(drop_connection_after_responses=0)

    def test_budgets_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(kill_limit=-1)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(merge_limit=-2)

    def test_delays_must_be_non_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(delay_select_seconds=-0.1)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(hang_seconds=-1.0)

    def test_default_plan_is_valid_and_inert(self):
        plan = FaultPlan()
        assert plan.kill_worker_at_dispatch is None
        assert plan.fail_merge_at is None
        assert plan.delay_dispatch_seconds == 0.0


class TestInstallation:
    def test_fire_is_a_no_op_without_a_plan(self):
        assert faults.active() is None
        # Any event name, any context: nothing installed means nothing fires,
        # not even event-name validation (the hot path stays two instructions).
        assert faults.fire("merge") is None
        assert faults.fire("no_such_event", anything=1) is None

    def test_unknown_events_fail_loudly_when_armed(self):
        with faults.injected(FaultPlan()):
            with pytest.raises(ValueError, match="unknown fault event"):
                faults.fire("no_such_event")

    def test_injected_context_installs_and_always_disarms(self):
        plan = FaultPlan(fail_merge_at=1)
        with faults.injected(plan) as state:
            assert faults.active() is plan
            assert faults.state() is state
        assert faults.active() is None

    def test_injected_disarms_after_an_escaping_fault(self):
        with pytest.raises(FaultInjected):
            with faults.injected(FaultPlan(fail_merge_at=1)):
                faults.fire("merge")
        assert faults.active() is None

    def test_reinstall_replaces_the_previous_plan(self):
        faults.install(FaultPlan(fail_merge_at=1))
        replacement = FaultPlan(fail_merge_at=5)
        faults.install(replacement)
        assert faults.active() is replacement
        faults.fire("merge")  # merge #1 of the replacement plan: no fault


class TestBudgetsAndDirectives:
    def test_merge_fault_fires_at_position_within_budget(self):
        with faults.injected(FaultPlan(fail_merge_at=2, merge_limit=1)) as state:
            assert faults.fire("merge") is None          # merge #1: before position
            with pytest.raises(FaultInjected, match="merge #2"):
                faults.fire("merge")                     # merge #2: the fault
            assert faults.fire("merge") is None          # merge #3: budget spent
            assert state.merges_seen == 3
            assert state.merge_fails_done == 1

    def test_corrupt_header_directive_respects_position_and_budget(self):
        plan = FaultPlan(corrupt_header_at_dispatch=2, corrupt_limit=1)
        with faults.injected(plan) as state:
            assert faults.fire("pool_dispatch") is None
            assert faults.fire("pool_dispatch") == "corrupt_header"
            assert faults.fire("pool_dispatch") is None
            assert state.pool_dispatches == 3
            assert state.corrupts_done == 1

    def test_drop_directive_respects_position_and_budget(self):
        plan = FaultPlan(drop_connection_after_responses=2, drop_limit=1)
        with faults.injected(plan) as state:
            assert faults.fire("transport_response") is None
            assert faults.fire("transport_response") == "drop"
            assert faults.fire("transport_response") is None
            assert state.responses_seen == 3
            assert state.drops_done == 1

    def test_select_event_counts_without_a_delay(self):
        with faults.injected(FaultPlan()) as state:
            assert faults.fire("select") is None
            assert faults.fire("select") is None
            assert state.selects_seen == 2

    def test_worker_dispatch_is_inert_without_kill_or_hang(self):
        # The shared dispatch counter only advances when a kill or hang is
        # configured; an unrelated plan must not pay the lock round trip.
        with faults.injected(FaultPlan(fail_merge_at=1)) as state:
            assert faults.fire("worker_dispatch") is None
            assert state._worker_dispatches.value == 0


class TestNetworkInjectors:
    """The cluster-facing injectors added for multi-host orchestration."""

    def test_new_fields_are_validated(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(drop_connection_at_record=0)
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan(duplicate_entity_result=0)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(drop_record_limit=-1)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(zombie_limit=-1)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(delay_heartbeat_s=-0.5)
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(zombie_hold_lease_s=-1.0)

    def test_wire_send_drop_respects_position_and_budget(self):
        plan = FaultPlan(drop_connection_at_record=2, drop_record_limit=1)
        with faults.injected(plan) as state:
            assert faults.fire("wire_send") is None
            assert faults.fire("wire_send") == "drop"
            assert faults.fire("wire_send") is None
            assert state._wire_sends.value == 3
            assert state._record_drops_left.value == 0

    def test_wire_send_is_inert_without_a_drop_position(self):
        with faults.injected(FaultPlan(fail_merge_at=1)) as state:
            assert faults.fire("wire_send") is None
            assert state._wire_sends.value == 0  # no lock round trip paid

    def test_duplicate_entity_result_directive(self):
        plan = FaultPlan(duplicate_entity_result=1, duplicate_limit=2)
        with faults.injected(plan):
            assert faults.fire("entity_result_send") == "duplicate"
            assert faults.fire("entity_result_send") == "duplicate"
            assert faults.fire("entity_result_send") is None  # budget spent

    def test_heartbeat_is_inert_by_default(self):
        with faults.injected(FaultPlan()):
            assert faults.fire("heartbeat") is None

    def test_zombie_suppresses_heartbeats_for_the_hold_window(self):
        plan = FaultPlan(zombie_hold_lease_s=0.15, zombie_limit=1)
        with faults.injected(plan) as state:
            # This process claims the zombie budget at its first beat and
            # suppresses until the window elapses.
            assert faults.fire("heartbeat") == "suppress"
            assert state._zombies_left.value == 0
            assert faults.fire("heartbeat") == "suppress"
            import time

            time.sleep(0.2)
            assert faults.fire("heartbeat") is None  # window over: beats again

    def test_zombie_budget_bounds_claims(self):
        plan = FaultPlan(zombie_hold_lease_s=10.0, zombie_limit=0)
        with faults.injected(plan):
            # Zero budget: nobody goes zombie even with a hold window set.
            assert faults.fire("heartbeat") is None

    def test_env_spec_parses_the_network_fields(self):
        plan = faults.plan_from_env(
            "drop_connection_at_record=3,delay_heartbeat_s=0.5,"
            "duplicate_entity_result=2,zombie_hold_lease_s=1.5,zombie_limit=2"
        )
        assert plan.drop_connection_at_record == 3
        assert plan.delay_heartbeat_s == 0.5
        assert plan.duplicate_entity_result == 2
        assert plan.zombie_hold_lease_s == 1.5
        assert plan.zombie_limit == 2


class TestEnvSpecParsing:
    def test_empty_specs_mean_no_plan(self):
        assert faults.plan_from_env("") is None
        assert faults.plan_from_env("   ") is None

    def test_parses_ints_and_floats_by_field_type(self):
        plan = faults.plan_from_env(
            "kill_worker_at_dispatch=2, kill_limit=3, delay_select_seconds=0.25"
        )
        assert plan.kill_worker_at_dispatch == 2
        assert plan.kill_limit == 3
        assert plan.delay_select_seconds == 0.25

    def test_unknown_keys_fail_loudly(self):
        with pytest.raises(ValueError, match="unknown fault 'kill_wroker_at'"):
            faults.plan_from_env("kill_wroker_at=2")

    def test_entries_without_equals_fail_loudly(self):
        with pytest.raises(ValueError, match="expected key=value"):
            faults.plan_from_env("kill_worker_at_dispatch")

    def test_parsed_plans_are_validated(self):
        with pytest.raises(ValueError, match="1-based"):
            faults.plan_from_env("fail_merge_at=0")

    def test_install_from_env_reads_the_variable(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "fail_merge_at=1")
        state = faults.install_from_env()
        assert state is not None
        assert faults.active().fail_merge_at == 1
        monkeypatch.setenv(faults.ENV_VAR, "")
        faults.uninstall()
        assert faults.install_from_env() is None
