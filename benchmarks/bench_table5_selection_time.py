"""Table V — one-round average selection time of the five algorithms.

The paper measures the average wall-clock time of one task-selection round on
the books with more than 20 facts, for k = 1..10, comparing OPT, Approx.,
Approx.&Prune, Approx.&Pre. and Approx.&Prune&Pre.  Expected shape:

* OPT grows combinatorially and becomes infeasible beyond k ≈ 3;
* Approx. grows steeply with k (exponential in k through the 2^k answer
  vectors it scores per candidate);
* the preprocessed variants stay orders of magnitude cheaper and nearly flat.

We run the same measurement on a synthetic "large book" (20 facts, sparse
correlated support) and cap each algorithm at the largest k that completes in
reasonable laptop time, exactly as the paper capped OPT at k = 3.
"""

import numpy as np
import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import get_selector
from repro.evaluation.reporting import format_table

from _bench_utils import write_result

NUM_FACTS = 20
SUPPORT = 512
ACCURACY = 0.8

#: Largest k each selector is benchmarked at (the paper stopped OPT at 3).
#: ``greedy_reference`` is the seed's pure-Python Approx. implementation; all
#: other greedy variants run on the shared vectorized incremental engine and
#: stay affordable through k = 10.
K_CAPS = {
    "opt": 2,
    "greedy_reference": 6,
    "greedy": 10,
    "greedy_lazy": 10,
    "greedy_prune": 10,
    "greedy_pre": 10,
    "greedy_prune_pre": 10,
}
K_VALUES = (1, 2, 3, 4, 6, 8, 10)

_RESULTS = {}


def large_book_distribution(seed: int = 0) -> JointDistribution:
    """A 20-fact joint distribution with a sparse correlated support."""
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << NUM_FACTS, size=SUPPORT, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=SUPPORT)
    fact_ids = tuple(f"f{i}" for i in range(NUM_FACTS))
    return JointDistribution(
        fact_ids, dict(zip((int(mask) for mask in masks), probabilities))
    )


DISTRIBUTION = large_book_distribution()
CROWD = CrowdModel(ACCURACY)

CASES = [
    (selector, k)
    for selector in K_CAPS
    for k in K_VALUES
    if k <= K_CAPS[selector]
]


@pytest.mark.parametrize(
    "selector,k", CASES, ids=[f"{selector}-k{k}" for selector, k in CASES]
)
def test_selection_round_time(benchmark, selector, k):
    """Benchmark one selection round for one (algorithm, k) cell of Table V."""

    def run_round():
        return get_selector(selector).select(DISTRIBUTION, CROWD, k)

    result = benchmark.pedantic(run_round, rounds=2, iterations=1, warmup_rounds=0)
    _RESULTS[(selector, k)] = benchmark.stats.stats.mean
    assert len(result.task_ids) == min(k, NUM_FACTS)


def test_table5_report_and_shape(benchmark):
    """Assemble the Table V grid, persist it, and assert the paper's shape."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("selection benchmarks did not run")

    selectors = list(K_CAPS)
    rows = []
    for k in K_VALUES:
        row = [k]
        for selector in selectors:
            value = _RESULTS.get((selector, k))
            row.append(value if value is not None else float("nan"))
        rows.append(row)
    table = format_table(["k"] + selectors, rows, float_format="{:.4f}")
    write_result("table5_selection_times.txt", table)

    # Shape assertions (qualitative version of the paper's observations).
    # 1. OPT grows much faster with k than greedy does.
    opt_growth = _RESULTS[("opt", 2)] / _RESULTS[("opt", 1)]
    greedy_growth = _RESULTS[("greedy", 2)] / _RESULTS[("greedy", 1)]
    assert opt_growth > greedy_growth
    # 2. The vectorized engine is dramatically faster than the seed's
    #    pure-Python Approx. path at larger k (the acceptance floor is 5x;
    #    in practice it is well past an order of magnitude).
    assert _RESULTS[("greedy", 6)] < _RESULTS[("greedy_reference", 6)] / 5
    assert _RESULTS[("greedy_lazy", 6)] < _RESULTS[("greedy_reference", 6)] / 5
    # 3. Every engine-backed variant stays affordable (sub-second per round)
    #    even at k = 10, a regime where the paper's plain Approx. already took
    #    the better part of a minute per round.
    for selector in ("greedy", "greedy_lazy", "greedy_prune", "greedy_pre", "greedy_prune_pre"):
        assert _RESULTS[(selector, 10)] < 1.0, selector
