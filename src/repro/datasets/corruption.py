"""Author-list corruptions matching the paper's error analysis (Section V-D).

The paper identifies three statement types that confuse crowd workers even
when the gold label is clear:

* **wrong order** — the same authors listed in a different order (still a
  correct author list, but workers often reject it);
* **additional information** — an organisation or affiliation appended to a
  name (gold-false, but >40 % of workers accepted it);
* **misspelling** — a slightly misspelled name (gold-false, accepted by more
  than half of the workers in the paper's study).

These functions produce such variants deterministically from a seeded RNG so
the Book corpus generator can plant them with known gold labels and elevated
crowd difficulty.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import DatasetError

_ORGANIZATIONS = (
    "SAN JOSE STATE UNIVERSITY, USA",
    "MIT PRESS",
    "UNIVERSITY OF HONG KONG",
    "OXFORD UNIVERSITY",
    "STANFORD UNIVERSITY, USA",
    "CARNEGIE MELLON UNIVERSITY",
)


def _require_authors(authors: Sequence[str]) -> List[str]:
    if not authors:
        raise DatasetError("an author list must contain at least one name")
    return list(authors)


def format_author_list(authors: Sequence[str]) -> str:
    """Canonical rendering of an author list: names joined by '; '."""
    return "; ".join(_require_authors(authors))


def reorder_authors(
    authors: Sequence[str], rng: Optional[np.random.Generator] = None
) -> List[str]:
    """Return the same authors in a different order (a *correct* variant).

    For a single-author list the input is returned unchanged (no reordering
    exists).
    """
    names = _require_authors(authors)
    if len(names) == 1:
        return names
    generator = rng if rng is not None else np.random.default_rng()
    for _ in range(10):
        permutation = list(generator.permutation(len(names)))
        reordered = [names[i] for i in permutation]
        if reordered != names:
            return reordered
    # Deterministic fallback: rotate by one.
    return names[1:] + names[:1]


def misspell_name(name: str, rng: Optional[np.random.Generator] = None) -> str:
    """Introduce a single-character corruption into a name (gold-false variant)."""
    if not name:
        raise DatasetError("cannot misspell an empty name")
    generator = rng if rng is not None else np.random.default_rng()
    letters = [index for index, char in enumerate(name) if char.isalpha()]
    if not letters:
        return name + "e"
    position = int(generator.choice(letters))
    char = name[position]
    mode = int(generator.integers(0, 3))
    if mode == 0 and len(name) > 3:
        # Drop the character (e.g. "Peter" -> "Pter").
        return name[:position] + name[position + 1 :]
    if mode == 1:
        # Duplicate the character (e.g. "Loshin" -> "Losshin").
        return name[:position] + char + name[position:]
    # Replace with a neighbouring letter (e.g. "Pete" -> "Petr" style slips).
    replacement = "e" if char.lower() != "e" else "a"
    replacement = replacement.upper() if char.isupper() else replacement
    return name[:position] + replacement + name[position + 1 :]


def add_organization(
    authors: Sequence[str], rng: Optional[np.random.Generator] = None
) -> List[str]:
    """Append an organisation to one author (gold-false "additional information")."""
    names = _require_authors(authors)
    generator = rng if rng is not None else np.random.default_rng()
    index = int(generator.integers(0, len(names)))
    organization = _ORGANIZATIONS[int(generator.integers(0, len(_ORGANIZATIONS)))]
    corrupted = list(names)
    corrupted[index] = f"{corrupted[index]} ({organization})"
    return corrupted


def swap_author(
    authors: Sequence[str],
    replacement_pool: Sequence[str],
    rng: Optional[np.random.Generator] = None,
) -> List[str]:
    """Replace one author with an unrelated name (a plainly wrong author list)."""
    names = _require_authors(authors)
    if not replacement_pool:
        raise DatasetError("replacement_pool must not be empty")
    generator = rng if rng is not None else np.random.default_rng()
    candidates = [name for name in replacement_pool if name not in names]
    if not candidates:
        candidates = list(replacement_pool)
    index = int(generator.integers(0, len(names)))
    replacement = candidates[int(generator.integers(0, len(candidates)))]
    corrupted = list(names)
    corrupted[index] = replacement
    return corrupted


def same_author_list(statement_a: Sequence[str], statement_b: Sequence[str]) -> bool:
    """Whether two author lists name exactly the same people (order-insensitive).

    This is the gold-labelling rule from the paper: "different author list
    order will not affect the judgment of whether the author list is correct".
    """
    return sorted(_require_authors(statement_a)) == sorted(_require_authors(statement_b))
