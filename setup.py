"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments where build isolation cannot download setuptools/wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "CrowdFusion: a crowdsourced approach on data fusion refinement "
        "(ICDE 2017) — full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
    extras_require={
        "dev": ["pytest>=7.0", "pytest-benchmark>=4.0", "hypothesis>=6.0"],
        # Opt-in compiled kernel tier; everything degrades to numpy without it.
        "compiled": ["numba>=0.58"],
    },
    entry_points={"console_scripts": ["crowdfusion = repro.cli:main"]},
)
