"""Acceptance: 4 tenants on one shared persistent pool == standalone sessions.

The headline criterion of the service redesign: a four-tenant service run
multiplexed onto a *single* shared persistent evaluator pool must produce,
for every tenant, exactly the selections a standalone serial
:class:`RefinementSession` produces when fed the same answer stream — same
task ids, objectives within 1e-9, matching final marginals — and shutting
the service down must leave no worker processes behind.
"""

import asyncio
import multiprocessing

import pytest

from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.runtime import RuntimeOptions
from repro.core.selection import RefinementSession, get_selector
from repro.service import RefinementService

from tests.core.selection.test_persistent_pool import (
    dense_distribution,
    scripted_answers,
)

pytestmark = pytest.mark.parallel

TENANTS = 4
ROUNDS = 3
BATCH = 3
SELECTOR = "greedy_prune_pre"


def tenant_problem(tenant):
    prior = dense_distribution(6, 48, seed=40 + tenant)
    channel = (
        CrowdModel(0.75 + 0.05 * tenant)
        if tenant % 2 == 0
        else PerFactChannelModel(
            0.8, {f: 0.62 + 0.03 * i for i, f in enumerate(prior.fact_ids)}
        )
    )
    return prior, channel


async def drive_tenant(service, session_id, tenant):
    trajectory = []
    for round_index in range(ROUNDS):
        reply = await service.select_next(session_id, batch=BATCH)
        await service.post_answers(
            session_id, scripted_answers(reply.task_ids, round_index + tenant)
        )
        trajectory.append((reply.task_ids, reply.objective))
    view = await service.get_posterior(session_id)
    return trajectory, view.marginals


def standalone_replay(tenant):
    prior, channel = tenant_problem(tenant)
    session = RefinementSession(prior, channel)
    selector = get_selector(SELECTOR)
    trajectory = []
    for round_index in range(ROUNDS):
        result = session.select(selector, BATCH)
        session.merge(scripted_answers(result.task_ids, round_index + tenant))
        trajectory.append((tuple(result.task_ids), result.objective))
    return trajectory, session.marginals()


def test_four_tenants_one_pool_bit_identical_to_standalone():
    runtime = RuntimeOptions(workers=2, parallel_threshold=0)

    async def scenario():
        async with RefinementService(runtime, pools=1) as service:
            sessions = []
            for tenant in range(TENANTS):
                prior, channel = tenant_problem(tenant)
                created = await service.create_session(
                    prior, channel, budget=ROUNDS * BATCH, selector=SELECTOR
                )
                sessions.append(created.session_id)
            results = await asyncio.gather(
                *(
                    drive_tenant(service, session_id, tenant)
                    for tenant, session_id in enumerate(sessions)
                )
            )
            pools = service.metrics()["pools"]
            assert pools["pools"] == 1
            assert pools["sessions_assigned"] == TENANTS
            assert sum(pool["attached"] for pool in pools["per_pool"]) == TENANTS
            assert any(pool["dispatches"] > 0 for pool in pools["per_pool"])
            return results

    service_runs = asyncio.run(scenario())
    assert multiprocessing.active_children() == []

    for tenant, (trajectory, marginals) in enumerate(service_runs):
        serial_trajectory, serial_marginals = standalone_replay(tenant)
        assert [ids for ids, _ in trajectory] == [
            ids for ids, _ in serial_trajectory
        ], f"tenant {tenant} diverged from its standalone twin"
        for (_, objective), (_, serial_objective) in zip(
            trajectory, serial_trajectory
        ):
            assert abs(objective - serial_objective) < 1e-9
        for fact_id, marginal in serial_marginals.items():
            assert abs(marginals[fact_id] - marginal) < 1e-12
