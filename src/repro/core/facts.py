"""Fact triples and ordered fact sets.

A *fact* in CrowdFusion is a ``{subject, predicate, object}`` triple whose
ground-truth value is either true or false (Section II-A of the paper).  The
:class:`FactSet` is an ordered, id-addressable collection of facts; the order
defines the bit positions used by :class:`repro.core.distribution.JointDistribution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidFactError


@dataclass(frozen=True)
class Fact:
    """A single binary fact about a real-world entity.

    Parameters
    ----------
    fact_id:
        Unique identifier within a :class:`FactSet` (e.g. ``"f1"``).
    subject:
        The entity the fact is about (e.g. ``"Hong Kong"``).
    predicate:
        The attribute name (e.g. ``"Continent"``).
    obj:
        The claimed value (e.g. ``"Asia"``).
    prior:
        Optional marginal prior probability that the fact is true, as produced
        by a machine-only fusion method.  ``None`` means "unknown".
    metadata:
        Free-form provenance information (source names, entity keys, ...).
    """

    fact_id: str
    subject: str
    predicate: str
    obj: str
    prior: Optional[float] = None
    metadata: Tuple[Tuple[str, str], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.fact_id:
            raise InvalidFactError("fact_id must be a non-empty string")
        if self.prior is not None and not 0.0 <= self.prior <= 1.0:
            raise InvalidFactError(
                f"prior for fact {self.fact_id!r} must be in [0, 1], got {self.prior}"
            )

    @property
    def triple(self) -> Tuple[str, str, str]:
        """Return the ``(subject, predicate, object)`` triple."""
        return (self.subject, self.predicate, self.obj)

    def describe(self) -> str:
        """Return a one-line human-readable statement of the fact."""
        return f"{self.subject} | {self.predicate} | {self.obj}"


class FactSet:
    """An ordered collection of :class:`Fact` objects with unique ids.

    The ordering is significant: position ``i`` of a fact determines which bit
    of an assignment bitmask refers to it.  Iteration yields facts in order.
    """

    def __init__(self, facts: Iterable[Fact]):
        self._facts: List[Fact] = list(facts)
        if not self._facts:
            raise InvalidFactError("a FactSet must contain at least one fact")
        self._index: Dict[str, int] = {}
        for position, fact in enumerate(self._facts):
            if fact.fact_id in self._index:
                raise InvalidFactError(f"duplicate fact id {fact.fact_id!r}")
            self._index[fact.fact_id] = position

    # -- basic container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __contains__(self, fact_id: object) -> bool:
        return fact_id in self._index

    def __getitem__(self, fact_id: str) -> Fact:
        try:
            return self._facts[self._index[fact_id]]
        except KeyError:
            raise InvalidFactError(f"unknown fact id {fact_id!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FactSet):
            return NotImplemented
        return self._facts == other._facts

    def __repr__(self) -> str:
        return f"FactSet({[f.fact_id for f in self._facts]!r})"

    # -- accessors ----------------------------------------------------------------

    @property
    def fact_ids(self) -> Tuple[str, ...]:
        """Return fact ids in positional order."""
        return tuple(fact.fact_id for fact in self._facts)

    def position(self, fact_id: str) -> int:
        """Return the bit position of ``fact_id``.

        Raises :class:`repro.exceptions.InvalidFactError` for unknown ids.
        """
        try:
            return self._index[fact_id]
        except KeyError:
            raise InvalidFactError(f"unknown fact id {fact_id!r}") from None

    def positions(self, fact_ids: Sequence[str]) -> Tuple[int, ...]:
        """Return bit positions for a sequence of fact ids, preserving order."""
        return tuple(self.position(fact_id) for fact_id in fact_ids)

    def facts(self) -> Tuple[Fact, ...]:
        """Return the facts in positional order."""
        return tuple(self._facts)

    def priors(self) -> Dict[str, Optional[float]]:
        """Return the map of fact id to prior probability (``None`` if unset)."""
        return {fact.fact_id: fact.prior for fact in self._facts}

    def subset(self, fact_ids: Sequence[str]) -> "FactSet":
        """Return a new :class:`FactSet` containing only ``fact_ids``, in the given order."""
        return FactSet(self[fact_id] for fact_id in fact_ids)

    def with_priors(self, priors: Dict[str, float]) -> "FactSet":
        """Return a copy of this fact set with priors replaced from ``priors``.

        Facts not mentioned in ``priors`` keep their existing prior.
        """
        updated = []
        for fact in self._facts:
            prior = priors.get(fact.fact_id, fact.prior)
            updated.append(
                Fact(
                    fact_id=fact.fact_id,
                    subject=fact.subject,
                    predicate=fact.predicate,
                    obj=fact.obj,
                    prior=prior,
                    metadata=fact.metadata,
                )
            )
        return FactSet(updated)

    @classmethod
    def from_triples(
        cls,
        triples: Sequence[Tuple[str, str, str]],
        priors: Optional[Sequence[float]] = None,
        prefix: str = "f",
    ) -> "FactSet":
        """Build a fact set from raw triples, generating ids ``f1, f2, ...``.

        Parameters
        ----------
        triples:
            Sequence of ``(subject, predicate, object)`` tuples.
        priors:
            Optional per-fact prior probabilities, aligned with ``triples``.
        prefix:
            Prefix used when generating fact ids.
        """
        if priors is not None and len(priors) != len(triples):
            raise InvalidFactError("priors must align one-to-one with triples")
        facts = []
        for i, (subject, predicate, obj) in enumerate(triples, start=1):
            prior = priors[i - 1] if priors is not None else None
            facts.append(
                Fact(
                    fact_id=f"{prefix}{i}",
                    subject=subject,
                    predicate=predicate,
                    obj=obj,
                    prior=prior,
                )
            )
        return cls(facts)
