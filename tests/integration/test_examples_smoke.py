"""Smoke-run every example script headless under pytest.

The examples double as executable documentation; this test keeps them from
rotting by running each one in a subprocess (with ``src/`` on the path, the
way the README invokes them) and asserting a clean exit with non-empty
output.  New ``examples/*.py`` files are picked up automatically.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_are_discovered():
    assert EXAMPLES, "no example scripts found under examples/"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs_headless(script):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    # Examples must not depend on a display or an interactive terminal.
    env.pop("DISPLAY", None)
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed with exit code {completed.returncode}:\n"
        f"{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} printed no output"
