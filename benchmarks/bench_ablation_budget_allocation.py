"""Budget-allocation ablation (the paper's suggested fix for Section V-D).

The error analysis observes that books with many statements are judged worse
because the *uniform* per-book budget spreads too thin, and suggests that "a
proper strategy to distribute budgets among all subsets of facts" would fix
it.  This benchmark implements that suggestion: the same global budget is
distributed uniformly, proportionally to book size, and proportionally to
prior entropy, and the resulting quality is compared.
"""

import pytest

from repro.evaluation.allocation import STRATEGIES, allocate_budget
from repro.evaluation.experiment import ExperimentConfig, run_quality_experiment
from repro.evaluation.reporting import format_table

from _bench_utils import write_result

PER_ENTITY_EQUIVALENT = 12
ACCURACY = 0.85
K = 2

_RESULTS = {}


def _run(problems, strategy):
    total = PER_ENTITY_EQUIVALENT * len(problems)
    allocation = allocate_budget(problems, total, strategy=strategy, min_per_entity=2)
    config = ExperimentConfig(
        selector="greedy_prune_pre",
        k=K,
        budget_per_entity=10 ** 6,  # overridden per entity by the allocation
        worker_accuracy=ACCURACY,
        use_difficulties=True,
        seed=59,
    )
    return run_quality_experiment(problems, config, budgets=allocation)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_budget_allocation_strategy(benchmark, book_problems, strategy):
    """Benchmark one full refinement under one allocation strategy."""
    result = benchmark.pedantic(
        _run, args=(book_problems, strategy), rounds=1, iterations=1, warmup_rounds=0
    )
    _RESULTS[strategy] = result
    assert result.final_point.cost <= PER_ENTITY_EQUIVALENT * len(book_problems)


def test_budget_allocation_report(benchmark):
    """Persist the comparison and check that informed allocation does not hurt."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < len(STRATEGIES):
        pytest.skip("allocation benchmarks did not run")

    rows = [
        [strategy, result.final_point.cost, result.final_point.f1, result.final_point.utility]
        for strategy, result in _RESULTS.items()
    ]
    write_result(
        "ablation_budget_allocation.txt",
        format_table(
            ["strategy", "tasks spent", "final F1", "final utility"],
            rows,
            float_format="{:.3f}",
        ),
    )

    # Informed allocations must not lose utility relative to the uniform
    # split the paper used (this is exactly the improvement it anticipates).
    assert (
        _RESULTS["entropy"].final_point.utility
        >= _RESULTS["uniform"].final_point.utility - 2.0
    )
    assert (
        _RESULTS["proportional"].final_point.utility
        >= _RESULTS["uniform"].final_point.utility - 5.0
    )
