"""Exact task selection by exhaustive enumeration ("OPT" in the paper).

Enumerates every size-``k`` subset of candidate facts, computes the
answer-set entropy ``H(T)`` of each, and returns the maximiser.  The cost is
``O(C(n, k))`` entropy evaluations, which — as Table V demonstrates — becomes
infeasible beyond ``k ≈ 3`` on realistic fact sets.  Each evaluation runs on
the vectorized engine's one-shot path (a grouped sum plus ``k`` channel
passes), but nothing can save OPT from the binomial outer loop.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import SelectionResult, SelectionStats, TaskSelector
from repro.core.selection.engine import EntropyEngine


class BruteForceSelector(TaskSelector):
    """Optimal selector: exhaustive search over all size-``k`` task sets."""

    name = "opt"

    def __init__(self, max_subsets: int = 2_000_000):
        """``max_subsets`` guards against accidentally enumerating an astronomic space."""
        self._max_subsets = max_subsets

    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        engine = EntropyEngine(distribution, crowd)
        stats = SelectionStats(kernel=engine.kernel_tier)
        best_ids: tuple = ()
        best_entropy = float("-inf")
        for subset in itertools.combinations(candidates, k):
            stats.candidate_evaluations += 1
            if stats.candidate_evaluations > self._max_subsets:
                raise RuntimeError(
                    f"brute-force selection exceeded {self._max_subsets} candidate subsets; "
                    "use the greedy approximation instead"
                )
            entropy = engine.task_entropy(subset)
            if entropy > best_entropy:
                best_entropy = entropy
                best_ids = subset
        return SelectionResult(task_ids=tuple(best_ids), objective=best_entropy, stats=stats)
