"""Chaos suite: the supervised parallel runtime under injected failures.

The self-healing contract, asserted end to end: a worker killed mid-scan, a
hung dispatch, or a corrupted generation header is absorbed by a transparent
pool rebuild whose recovered trajectory is *bit-identical* to an undisturbed
serial run (same task ids, objectives within 1e-9); repeated failures trip
the circuit breaker and degrade to serial — completing the run, never
erroring it — and no fault leaks worker processes or shared-memory segments.
"""

import contextlib
import multiprocessing
import os

import pytest

from repro.core.crowd import CrowdModel
from repro.core.selection import (
    GreedySelector,
    ParallelPolicy,
    RefinementSession,
)
from repro.core.selection.parallel import EvaluatorPool
from repro.testing import faults
from repro.testing.faults import KILL_EXITCODE, FaultPlan

from tests.core.selection.test_persistent_pool import (
    assert_histories_match,
    dense_distribution,
    run_rounds,
)

pytestmark = [pytest.mark.chaos, pytest.mark.parallel]

#: Forces the pool for every scan with at least two candidates.
POLICY = ParallelPolicy(workers=2, parallel_threshold=0)


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


def _shm_segments():
    if not os.path.isdir("/dev/shm"):
        return frozenset()
    return frozenset(os.listdir("/dev/shm"))


@contextlib.contextmanager
def no_leaks():
    """Assert no worker processes or shm segments survive the block."""
    before = _shm_segments()
    yield
    assert multiprocessing.active_children() == [], "leaked worker processes"
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_worker_kill_mid_scan_recovers_bit_identical():
    dist = dense_distribution(8, 192, seed=70)
    crowd = CrowdModel(0.8)
    serial = run_rounds(RefinementSession(dist, crowd), GreedySelector())

    with no_leaks():
        with faults.injected(FaultPlan(kill_worker_at_dispatch=1)) as state:
            with RefinementSession(dist, crowd, parallel=POLICY) as session:
                recovered = run_rounds(session, GreedySelector())
                evaluator = session.shared_evaluator()
                assert evaluator.worker_crashes == 1
                assert evaluator.pool_rebuilds == 1
                assert evaluator.breaker_trips == 0
                assert not evaluator.degraded
            assert state._kills_left.value == 0

    assert_histories_match(serial, recovered)


def test_corrupt_header_forces_rebuild_then_bit_identical():
    dist = dense_distribution(8, 192, seed=71)
    crowd = CrowdModel(0.8)
    serial = run_rounds(RefinementSession(dist, crowd), GreedySelector())

    with no_leaks():
        # Dispatch #2's header advances the channel generation without the
        # channel model; the worker must refuse it (its state can no longer
        # be trusted to score serial-identically) and the supervisor rebuild.
        with faults.injected(FaultPlan(corrupt_header_at_dispatch=2)):
            with RefinementSession(dist, crowd, parallel=POLICY) as session:
                recovered = run_rounds(session, GreedySelector())
                evaluator = session.shared_evaluator()
                assert evaluator.worker_crashes == 1
                assert evaluator.pool_rebuilds == 1
                assert not evaluator.degraded

    assert_histories_match(serial, recovered)


def test_hung_dispatch_times_out_and_recovers_bit_identical():
    dist = dense_distribution(8, 192, seed=72)
    crowd = CrowdModel(0.8)
    serial = run_rounds(RefinementSession(dist, crowd), GreedySelector())
    policy = ParallelPolicy(workers=2, parallel_threshold=0, dispatch_timeout=1.0)

    with no_leaks():
        with faults.injected(
            FaultPlan(hang_worker_at_dispatch=1, hang_seconds=60.0)
        ):
            with RefinementSession(dist, crowd, parallel=policy) as session:
                recovered = run_rounds(session, GreedySelector())
                evaluator = session.shared_evaluator()
                assert evaluator.worker_crashes == 1
                assert evaluator.pool_rebuilds == 1
                assert not evaluator.degraded

    assert_histories_match(serial, recovered)


def test_repeated_crashes_trip_the_breaker_and_complete_serially():
    dist = dense_distribution(8, 192, seed=73)
    crowd = CrowdModel(0.8)
    serial = run_rounds(RefinementSession(dist, crowd), GreedySelector())
    policy = ParallelPolicy(workers=2, parallel_threshold=0, max_rebuilds=1)

    with no_leaks():
        # Every dispatch's workers kill themselves: rebuild once, crash
        # again, trip the breaker — and the run still completes (serially),
        # never surfacing an error to the selector.
        with faults.injected(
            FaultPlan(kill_worker_at_dispatch=1, kill_limit=1000)
        ):
            with RefinementSession(dist, crowd, parallel=policy) as session:
                degraded = run_rounds(session, GreedySelector())
                evaluator = session.shared_evaluator()
                assert evaluator.degraded
                assert evaluator.breaker_trips == 1
                assert evaluator.worker_crashes == 2  # max_rebuilds + 1
                assert evaluator.pool_rebuilds == 1

    assert_histories_match(serial, degraded)


def test_injected_kill_exitcode_is_distinctive():
    # The sentinel exitcode the harness kills with is what a post-mortem of
    # the supervisor's logs keys on; pin it against drift.
    assert KILL_EXITCODE == 73
    assert FaultPlan().kill_exitcode == KILL_EXITCODE


def test_shared_pool_recovers_for_every_tenant():
    priors = [dense_distribution(8, 192, seed=80 + i) for i in range(2)]
    crowd = CrowdModel(0.8)
    serial = [
        run_rounds(RefinementSession(prior, crowd), GreedySelector())
        for prior in priors
    ]

    with no_leaks():
        with faults.injected(FaultPlan(kill_worker_at_dispatch=1)):
            with EvaluatorPool(POLICY) as pool:
                recovered = []
                for prior in priors:
                    with RefinementSession(
                        prior, crowd, evaluator_pool=pool
                    ) as session:
                        recovered.append(run_rounds(session, GreedySelector()))
                assert pool.worker_crashes == 1
                assert pool.pool_rebuilds == 1
                assert not pool.degraded

    for expected, actual in zip(serial, recovered):
        assert_histories_match(expected, actual)


def test_shared_pool_breaker_degrades_all_tenants_without_erroring():
    priors = [dense_distribution(8, 192, seed=85 + i) for i in range(2)]
    crowd = CrowdModel(0.8)
    serial = [
        run_rounds(RefinementSession(prior, crowd), GreedySelector())
        for prior in priors
    ]
    policy = ParallelPolicy(workers=2, parallel_threshold=0, max_rebuilds=1)

    with no_leaks():
        with faults.injected(
            FaultPlan(kill_worker_at_dispatch=1, kill_limit=1000)
        ):
            with EvaluatorPool(policy) as pool:
                degraded = []
                for prior in priors:
                    with RefinementSession(
                        prior, crowd, evaluator_pool=pool
                    ) as session:
                        degraded.append(run_rounds(session, GreedySelector()))
                assert pool.degraded
                assert pool.breaker_trips == 1

    for expected, actual in zip(serial, degraded):
        assert_histories_match(expected, actual)
