"""Simulated crowd workers.

Workers follow the paper's error model (Definition 2): each task is answered
correctly with probability ``Pc ≥ 0.5``, independently across tasks and
workers.  The simulator additionally supports per-claim *difficulty* (hard
statements such as reordered or misspelled author lists, Section V-D), which
lowers the effective accuracy for that task only, and per-domain skills so
that the "reliable only in some domains" motivation from the introduction can
be exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.crowdsim.task import Task
from repro.exceptions import PlatformError
from repro.types import validate_accuracy


@dataclass
class Worker:
    """One simulated crowd worker.

    Parameters
    ----------
    worker_id:
        Stable identifier, e.g. ``"w17"``.
    accuracy:
        Base probability of answering a task correctly (``Pc``), in
        ``[0.5, 1.0]``.
    domain_skills:
        Optional per-domain accuracy overrides (domain name → accuracy), used
        when a task's fact id is tagged with a domain.
    """

    worker_id: str
    accuracy: float
    domain_skills: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_accuracy(self.accuracy, "worker accuracy")
        for domain, accuracy in self.domain_skills.items():
            validate_accuracy(accuracy, f"domain skill for {domain!r}")

    def effective_accuracy(self, task: Task, domain: Optional[str] = None) -> float:
        """Accuracy applied to one task after difficulty and domain adjustment."""
        base = self.domain_skills.get(domain, self.accuracy) if domain else self.accuracy
        return max(0.5, base - task.difficulty)

    def answer(
        self,
        task: Task,
        ground_truth: bool,
        rng: np.random.Generator,
        domain: Optional[str] = None,
    ) -> bool:
        """Produce one (possibly wrong) judgment for ``task``."""
        accuracy = self.effective_accuracy(task, domain)
        if rng.random() < accuracy:
            return ground_truth
        return not ground_truth


class WorkerPool:
    """A pool of workers sharing (or varying around) a target accuracy.

    The pool is the unit the platform draws workers from; answers to a batch
    are assigned round-robin or at random, and the pool can report its true
    mean accuracy (the quantity a qualification pre-test estimates).
    """

    def __init__(self, workers: Iterable[Worker], seed: Optional[int] = None):
        self._workers: List[Worker] = list(workers)
        if not self._workers:
            raise PlatformError("a worker pool must contain at least one worker")
        ids = [worker.worker_id for worker in self._workers]
        if len(set(ids)) != len(ids):
            raise PlatformError("worker ids in a pool must be unique")
        self._rng = np.random.default_rng(seed)

    @classmethod
    def homogeneous(
        cls, size: int, accuracy: float, seed: Optional[int] = None
    ) -> "WorkerPool":
        """Create ``size`` workers that all share exactly the same accuracy."""
        if size <= 0:
            raise PlatformError(f"pool size must be positive, got {size}")
        workers = [Worker(worker_id=f"w{i}", accuracy=accuracy) for i in range(size)]
        return cls(workers, seed=seed)

    @classmethod
    def heterogeneous(
        cls,
        size: int,
        mean_accuracy: float,
        spread: float = 0.05,
        seed: Optional[int] = None,
    ) -> "WorkerPool":
        """Create workers with accuracies spread uniformly around a mean.

        Accuracies are clipped to ``[0.5, 1.0]``; the paper estimates a single
        shared ``Pc`` for such a pool via a qualification pre-test.
        """
        if size <= 0:
            raise PlatformError(f"pool size must be positive, got {size}")
        if spread < 0:
            raise PlatformError(f"spread must be non-negative, got {spread}")
        rng = np.random.default_rng(seed)
        accuracies = np.clip(
            rng.uniform(mean_accuracy - spread, mean_accuracy + spread, size=size),
            0.5,
            1.0,
        )
        workers = [
            Worker(worker_id=f"w{i}", accuracy=float(accuracy))
            for i, accuracy in enumerate(accuracies)
        ]
        return cls(workers, seed=None if seed is None else seed + 1)

    # -- container protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self) -> Iterator[Worker]:
        return iter(self._workers)

    # -- behaviour ---------------------------------------------------------------------

    @property
    def workers(self) -> Sequence[Worker]:
        """The workers in this pool."""
        return tuple(self._workers)

    def mean_accuracy(self) -> float:
        """The pool's true mean base accuracy (unknown to the system in practice)."""
        return float(np.mean([worker.accuracy for worker in self._workers]))

    def draw(self) -> Worker:
        """Draw one worker uniformly at random."""
        index = int(self._rng.integers(0, len(self._workers)))
        return self._workers[index]

    def answer_task(
        self, task: Task, ground_truth: bool, domain: Optional[str] = None
    ) -> "tuple[str, bool]":
        """Have a randomly drawn worker answer one task.

        Returns ``(worker_id, judgment)``.
        """
        worker = self.draw()
        judgment = worker.answer(task, ground_truth, self._rng, domain=domain)
        return worker.worker_id, judgment
