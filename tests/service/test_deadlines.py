"""Per-request deadline semantics on the refinement service.

``deadline_ms`` is enforced only at *retry-safe* points: a job whose budget
lapses while queued fails before anything was validated or charged, and a
read-only scan abandoned mid-computation discards its result without
touching any cache.  Merges that have started are never aborted.  Every
deadline failure is a typed :class:`DeadlineExceededError` whose
``retry_safe`` flag survives the wire codecs, and every hit lands in the
``recovery.deadline_hits`` metric.
"""

import asyncio

import pytest

from repro.core.crowd import CrowdModel
from repro.service import DeadlineExceededError, RefinementService
from repro.service.api import (
    ServiceError,
    ValidationFailedError,
    error_payload,
    raise_from_payload,
)
from repro.testing import faults
from repro.testing.faults import FaultPlan

from tests.core.selection.test_persistent_pool import dense_distribution


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


async def _with_service(scenario):
    async with RefinementService() as service:
        return await scenario(service)


def test_deadline_ms_must_be_positive():
    async def scenario(service):
        prior = dense_distribution(5, 24, seed=40)
        created = await service.create_session(prior, CrowdModel(0.8), budget=6)
        with pytest.raises(ValidationFailedError, match="deadline_ms"):
            await service.select_next(created.session_id, deadline_ms=0)
        with pytest.raises(ValidationFailedError, match="deadline_ms"):
            await service.post_answers(
                created.session_id, {prior.fact_ids[0]: True}, deadline_ms=-5
            )

    run(_with_service(scenario))


def test_select_deadline_expires_mid_computation_without_writing_the_cache():
    async def scenario(service):
        prior = dense_distribution(6, 48, seed=41)
        created = await service.create_session(prior, CrowdModel(0.8), budget=6)

        with faults.injected(FaultPlan(delay_select_seconds=0.5)):
            with pytest.raises(DeadlineExceededError) as excinfo:
                await service.select_next(created.session_id, deadline_ms=50)
        assert excinfo.value.retry_safe
        assert "safe to retry" in str(excinfo.value)
        assert service.metrics()["recovery"]["deadline_hits"] == 1

        # The abandoned scan's result was discarded: the retried select is a
        # fresh computation (not served from a cache the timeout poisoned),
        # and only *it* populates the cache.
        reply = await service.select_next(created.session_id, deadline_ms=5_000)
        assert not reply.cached
        assert reply.task_ids
        again = await service.select_next(created.session_id)
        assert again.cached and again.task_ids == reply.task_ids

    run(_with_service(scenario))


def test_queued_jobs_expire_retry_safe_before_any_charge():
    async def scenario(service):
        prior = dense_distribution(6, 48, seed=42)
        created = await service.create_session(prior, CrowdModel(0.8), budget=6)
        answers = {prior.fact_ids[0]: True, prior.fact_ids[1]: False}

        # Stall the drainer on a deadline-less select, then queue a merge and
        # a posterior read whose deadlines lapse while they wait behind it.
        with faults.injected(FaultPlan(delay_select_seconds=0.6)):
            stalled = asyncio.ensure_future(
                service.select_next(created.session_id)
            )
            await asyncio.sleep(0.05)  # let the drainer enter the stalled scan
            merge = asyncio.ensure_future(
                service.post_answers(
                    created.session_id, answers, deadline_ms=100
                )
            )
            posterior = asyncio.ensure_future(
                service.get_posterior(created.session_id, deadline_ms=100)
            )
            results = await asyncio.gather(
                stalled, merge, posterior, return_exceptions=True
            )

        assert not isinstance(results[0], Exception)
        for expired in results[1:]:
            assert isinstance(expired, DeadlineExceededError)
            assert expired.retry_safe
            assert "queued" in str(expired)
        assert service.metrics()["recovery"]["deadline_hits"] == 2

        # Nothing was charged or merged: the full budget is still there and
        # the resent answers merge cleanly.
        report = await service.post_answers(created.session_id, answers)
        assert report.rounds_merged == 1
        closed = await service.close_session(created.session_id)
        assert closed.budget_spent == len(answers)

    run(_with_service(scenario))


def test_unbounded_requests_never_hit_the_deadline_machinery():
    async def scenario(service):
        prior = dense_distribution(5, 24, seed=43)
        created = await service.create_session(prior, CrowdModel(0.8), budget=6)
        reply = await service.select_next(created.session_id)
        await service.post_answers(
            created.session_id, {t: True for t in reply.task_ids}
        )
        await service.get_posterior(created.session_id)
        assert service.metrics()["recovery"]["deadline_hits"] == 0

    run(_with_service(scenario))


def test_retry_safe_flag_crosses_the_wire_codecs():
    deadline = error_payload(DeadlineExceededError("too slow"))
    assert deadline["code"] == "deadline_exceeded"
    assert deadline["retry_safe"] is True
    with pytest.raises(DeadlineExceededError) as excinfo:
        raise_from_payload(deadline)
    assert excinfo.value.retry_safe

    generic = error_payload(ServiceError("boom"))
    assert generic["retry_safe"] is False
    with pytest.raises(ServiceError) as excinfo:
        raise_from_payload(generic)
    assert not excinfo.value.retry_safe
