"""Scale corpora: sparse joint supports far past the paper's experiment sizes.

The paper's Table V measures selection time on book-sized problems (tens of
facts, supports in the hundreds).  The vectorized engine is ``O(|O|)`` per
candidate, so the interesting scale axis is the *support*: this module
generates sparse joint distributions with supports of ``2^20`` rows and
beyond, over wide fact sets (hundreds of candidate facts), for the selection
benchmarks in ``benchmarks/bench_selection_hotpath.py`` and the slow tier of
the test suite.

Up to 63 facts the support masks pack into an ``int64`` column; wider fact
sets are generated directly as packed ``(rows, ceil(n/64))`` uint64 bit
planes (:mod:`repro.core.bitplanes`) and handed to the engine through
:meth:`~repro.core.distribution.JointDistribution.from_packed_arrays`, so
hundreds-of-facts corpora stay on vectorized numeric arrays end to end —
both during generation and on the selection hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distribution import JointDistribution
from repro.exceptions import DatasetError


@dataclass(frozen=True)
class ScaleCorpusConfig:
    """Shape of one generated scale distribution.

    Attributes
    ----------
    num_facts:
        Width of the fact set (every fact is a selection candidate).
    support_size:
        Number of distinct support rows (``|O|``); must not exceed
        ``2^num_facts``.
    seed:
        RNG seed; generation is fully deterministic.
    """

    num_facts: int = 48
    support_size: int = 1 << 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_facts < 1:
            raise DatasetError(f"num_facts must be positive, got {self.num_facts}")
        if self.support_size < 1:
            raise DatasetError(
                f"support_size must be positive, got {self.support_size}"
            )
        if self.num_facts <= 62 and self.support_size > (1 << self.num_facts):
            raise DatasetError(
                f"cannot draw {self.support_size} distinct rows from a "
                f"2^{self.num_facts} assignment space"
            )


def generate_scale_distribution(
    config: ScaleCorpusConfig = ScaleCorpusConfig(),
) -> JointDistribution:
    """Generate a sparse joint distribution of the configured scale.

    Support rows are distinct uniform draws from the assignment space with
    masses from ``U(0.05, 1.0)`` (normalised by the distribution), matching
    the shape of the existing selection benchmarks' corpora.  The result is
    built through the trusted-array constructor, so generation stays linear
    in the support even at ``2^20`` rows.
    """
    rng = np.random.default_rng(config.seed)
    masses = rng.uniform(0.05, 1.0, size=config.support_size)
    if config.num_facts <= 62:
        space = 1 << config.num_facts
        if config.support_size * 2 >= space:
            # Dense regime (support at least half the space): uniform draws
            # would coupon-collect the tail for ages, but the space itself is
            # at most twice the support and therefore materialisable — sample
            # without replacement directly.
            masks = np.sort(
                rng.choice(space, size=config.support_size, replace=False)
            ).astype(np.int64)
        else:
            # Sparse regime: draw full support-sized batches and de-duplicate;
            # each round fills at least half the remaining gap in expectation,
            # so the loop is logarithmic in the support size.
            masks = np.unique(
                rng.integers(0, space, size=config.support_size, dtype=np.int64)
            )
            while masks.size < config.support_size:
                extra = rng.integers(
                    0, space, size=config.support_size, dtype=np.int64
                )
                masks = np.unique(np.concatenate([masks, extra]))
            # np.unique sorted the pool, so trimming the overshoot must pick
            # uniformly — a sorted-prefix cut would drop the whole top of the
            # assignment space and flatten the high-order fact columns.
            masks = rng.permutation(masks)[: config.support_size]
    else:
        # Wide fact sets: draw packed uint64 bit planes directly (one row of
        # words per assignment), de-duplicate row-wise like the sparse
        # regime, and build through the packed trusted constructor — the
        # object-dtype Python-int representation never exists.
        fact_ids = tuple(f"f{i}" for i in range(config.num_facts))
        planes = _unique_planes(rng, config)
        return JointDistribution.from_packed_arrays(fact_ids, planes, masses)
    fact_ids = tuple(f"f{i}" for i in range(config.num_facts))
    return JointDistribution.from_support_arrays(fact_ids, masks, masses)


def _unique_planes(rng: np.random.Generator, config: ScaleCorpusConfig) -> np.ndarray:
    """``support_size`` distinct packed rows over ``num_facts`` bits.

    Batched draw-and-unique like the sparse ``int64`` regime; collisions are
    vanishingly unlikely past 64 bits, so the loop essentially never runs a
    second round.  The overshoot is trimmed by permutation for the same
    reason as the narrow path (``np.unique`` sorts its pool).
    """
    words = (config.num_facts + 63) >> 6
    top_bits = config.num_facts - ((words - 1) << 6)
    top_mask = np.uint64((1 << top_bits) - 1) if top_bits < 64 else np.uint64(_WORD_MAX)

    def draw() -> np.ndarray:
        batch = rng.integers(
            0, 1 << 64, size=(config.support_size, words), dtype=np.uint64
        )
        batch[:, -1] &= top_mask
        return batch

    planes = np.unique(draw(), axis=0)
    while planes.shape[0] < config.support_size:
        planes = np.unique(np.concatenate([planes, draw()]), axis=0)
    return rng.permutation(planes, axis=0)[: config.support_size]


#: All 64 bits set — the top-word mask when ``num_facts`` is a word multiple.
_WORD_MAX = (1 << 64) - 1
