"""Unit tests for Assignment and bitmask helpers."""

import pytest

from repro.core.assignment import (
    Assignment,
    bools_from_mask,
    hamming_agreement,
    mask_from_bools,
    project_mask,
)
from repro.exceptions import InvalidFactError


class TestMaskHelpers:
    def test_mask_from_bools_roundtrip(self):
        values = (True, False, True, True)
        mask = mask_from_bools(values)
        assert bools_from_mask(mask, 4) == values

    def test_mask_from_bools_lsb_is_position_zero(self):
        assert mask_from_bools([True, False]) == 1
        assert mask_from_bools([False, True]) == 2

    def test_bools_from_mask_width_pads_with_false(self):
        assert bools_from_mask(1, 3) == (True, False, False)

    def test_hamming_agreement_counts(self):
        same, diff = hamming_agreement(0b1010, 0b1001, positions=[0, 1, 2, 3])
        assert same == 2
        assert diff == 2

    def test_hamming_agreement_restricted_positions(self):
        same, diff = hamming_agreement(0b1010, 0b1001, positions=[2, 3])
        assert (same, diff) == (2, 0)

    def test_project_mask_reorders_bits(self):
        # positions [2, 0]: bit0 of result = bit2 of input, bit1 = bit0.
        assert project_mask(0b101, [2, 0]) == 0b11
        assert project_mask(0b100, [2, 0]) == 0b01


class TestAssignment:
    def test_from_bools_and_back(self):
        assignment = Assignment.from_bools([True, False, True])
        assert assignment.to_bools() == (True, False, True)
        assert assignment.width == 3

    def test_from_dict_respects_fact_order(self):
        assignment = Assignment.from_dict({"a": True, "b": False}, ["b", "a"])
        assert assignment.to_bools() == (False, True)

    def test_from_dict_missing_fact_raises(self):
        with pytest.raises(InvalidFactError):
            Assignment.from_dict({"a": True}, ["a", "b"])

    def test_value_accessor(self):
        assignment = Assignment.from_bools([False, True])
        assert assignment.value(0) is False
        assert assignment.value(1) is True

    def test_value_out_of_range(self):
        assignment = Assignment.from_bools([True])
        with pytest.raises(InvalidFactError):
            assignment.value(5)

    def test_to_dict(self):
        assignment = Assignment.from_bools([True, False])
        assert assignment.to_dict(["x", "y"]) == {"x": True, "y": False}

    def test_to_dict_wrong_width(self):
        assignment = Assignment.from_bools([True, False])
        with pytest.raises(InvalidFactError):
            assignment.to_dict(["only_one"])

    def test_project(self):
        assignment = Assignment.from_bools([True, False, True, True])
        projected = assignment.project([3, 1])
        assert projected.to_bools() == (True, False)

    def test_agreement(self):
        a = Assignment.from_bools([True, True, False])
        b = Assignment.from_bools([True, False, False])
        assert a.agreement(b, positions=[0, 1, 2]) == (2, 1)

    def test_invalid_width(self):
        with pytest.raises(InvalidFactError):
            Assignment(mask=0, width=0)

    def test_mask_out_of_range(self):
        with pytest.raises(InvalidFactError):
            Assignment(mask=4, width=2)

    def test_str_rendering(self):
        assert str(Assignment.from_bools([True, False])) == "TF"
