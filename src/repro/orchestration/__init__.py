"""Durable experiment orchestration: checkpointed sharded sweeps with resume.

The paper's pay-as-you-go evaluation sweeps thousands of entity trajectories;
this package makes those sweeps survivable.  A supervised pool of shard
processes runs one entity trajectory at a time (the exact
:func:`~repro.evaluation.experiment.run_entity_trajectory` unit the in-memory
fan-out uses, with the same per-entity seed derivation), and every completed
entity is journalled to an append-only JSON-lines file inside a per-run
directory before the sweep moves on.  Checkpoints are written atomically
(tmp file + fsync + rename), so a SIGKILL at any instruction leaves the run
directory either at the previous durable state or the next — never in
between — and ``crowdfusion experiment --run-dir D --resume`` replays the
journal, skips completed entities, re-enqueues in-flight ones and produces a
curve bit-identical to an undisturbed run.

Layout of a run directory::

    run.json        manifest: config fingerprint, entity ids, budgets
    journal.jsonl   append-only event log (started / entity_done /
                    entity_failed / quarantined), fsync'd per record
    checkpoint.json atomic progress snapshot (completed / quarantined /
                    pending), rewritten after every entity
    curve.jsonl     streamed curve points of the finished sweep
    lock            pid lock (stale locks from dead pids are taken over)

A sweep can also span hosts: :func:`run_cluster_experiment` runs the same
run directory through a TCP coordinator that leases contiguous entity
ranges to shard workers (``crowdfusion shard-worker --connect``), fences
dead or zombie leases with monotonically increasing epochs, and adds::

    leases.json           atomic epoch + active-lease snapshot
    journal-<worker>.jsonl  accepted entity_done records, per worker

Worker journals are merged deterministically on resume and assembly
(:func:`merge_journals`), so a migrated or reassigned sweep's curve stays
bit-identical to an undisturbed single-host run.
"""

from repro.orchestration.journal import (
    JournalWriter,
    RunLock,
    atomic_write_json,
    merge_journals,
    read_json,
    read_records,
)
from repro.orchestration.cluster import (
    ClusterConfig,
    ClusterReport,
    ClusterStats,
    run_cluster_experiment,
)
from repro.orchestration.orchestrator import (
    OrchestratorConfig,
    OrchestratorReport,
    run_checkpointed_experiment,
)

__all__ = [
    "ClusterConfig",
    "ClusterReport",
    "ClusterStats",
    "JournalWriter",
    "OrchestratorConfig",
    "OrchestratorReport",
    "RunLock",
    "atomic_write_json",
    "merge_journals",
    "read_json",
    "read_records",
    "run_checkpointed_experiment",
    "run_cluster_experiment",
]
