"""Packed uint64 bit planes: round-trips and equivalence with the object path.

The packed representation replaces the object-dtype (Python-int) mask column
for wide fact sets, so these tests pin two things: the pack/unpack round-trip
is lossless for arbitrary widths, and every consumer primitive
(``project_columns``, ``bit_column``) produces bit-identical results on the
packed planes and on the legacy object array.  The object-path behaviour
itself is pinned first — it is the reference the planes must match.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitplanes import (
    pack_masks,
    plane_bit_column,
    plane_count,
    project_planes,
    unpack_planes,
)
from repro.core.entropy import bit_column, project_columns


@st.composite
def wide_mask_sets(draw, min_facts=64, max_facts=200, max_rows=24):
    """Random Python-int masks over a wide (>63) fact set."""
    num_facts = draw(st.integers(min_value=min_facts, max_value=max_facts))
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << num_facts) - 1),
            min_size=1,
            max_size=max_rows,
        )
    )
    return num_facts, rows


@st.composite
def any_width_mask_sets(draw):
    """Mask sets from 1 to 200 facts — narrow widths included."""
    num_facts = draw(st.integers(min_value=1, max_value=200))
    rows = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << num_facts) - 1),
            min_size=1,
            max_size=16,
        )
    )
    return num_facts, rows


def object_array(rows):
    out = np.empty(len(rows), dtype=object)
    for index, value in enumerate(rows):
        out[index] = value
    return out


class TestPlaneCount:
    def test_word_boundaries(self):
        assert plane_count(1) == 1
        assert plane_count(63) == 1
        assert plane_count(64) == 1
        assert plane_count(65) == 2
        assert plane_count(128) == 2
        assert plane_count(129) == 3


class TestRoundTrip:
    @given(any_width_mask_sets())
    @settings(max_examples=150, deadline=None)
    def test_pack_unpack_round_trip(self, case):
        num_facts, rows = case
        planes = pack_masks(object_array(rows), num_facts)
        assert planes.dtype == np.uint64
        assert planes.shape == (len(rows), plane_count(num_facts))
        assert unpack_planes(planes).tolist() == rows

    def test_pack_accepts_plain_iterables(self):
        rows = [0, (1 << 100) - 1, 1 << 77]
        planes = pack_masks(rows, 101)
        assert unpack_planes(planes).tolist() == rows

    def test_pack_narrow_int64_column(self):
        masks = np.array([0, 5, (1 << 62) - 1], dtype=np.int64)
        planes = pack_masks(masks, 63)
        assert planes.shape == (3, 1)
        assert unpack_planes(planes).tolist() == masks.tolist()


class TestObjectPathRegression:
    """Pin the legacy object-dtype semantics the planes must reproduce."""

    def test_project_columns_object_semantics(self):
        # Hand-computed reference: project facts (2, 65, 100) of each mask
        # into bits (0, 1, 2) of an int64 output.
        rows = [
            (1 << 2) | (1 << 65),
            (1 << 100),
            (1 << 2) | (1 << 65) | (1 << 100),
            0,
        ]
        expected = [0b011, 0b100, 0b111, 0b000]
        projected = project_columns(object_array(rows), (2, 65, 100))
        assert projected.dtype == np.int64
        assert projected.tolist() == expected

    @given(wide_mask_sets())
    @settings(max_examples=100, deadline=None)
    def test_object_path_matches_per_element_python(self, case):
        num_facts, rows = case
        positions = tuple(
            sorted({0, num_facts - 1, num_facts // 2, num_facts // 3})
        )
        projected = project_columns(object_array(rows), positions)
        reference = [
            sum(((mask >> position) & 1) << index
                for index, position in enumerate(positions))
            for mask in rows
        ]
        assert projected.dtype == np.int64
        assert projected.tolist() == reference


class TestPackedEquivalence:
    @given(wide_mask_sets())
    @settings(max_examples=100, deadline=None)
    def test_project_columns_packed_matches_object(self, case):
        num_facts, rows = case
        masks = object_array(rows)
        planes = pack_masks(masks, num_facts)
        positions = tuple(
            sorted({0, 1, num_facts - 1, num_facts // 2, 63 % num_facts})
        )
        via_object = project_columns(masks, positions)
        via_planes = project_columns(planes, positions)
        assert via_planes.dtype == np.int64
        assert via_planes.tolist() == via_object.tolist()

    @given(wide_mask_sets())
    @settings(max_examples=100, deadline=None)
    def test_bit_column_packed_matches_object(self, case):
        num_facts, rows = case
        planes = pack_masks(object_array(rows), num_facts)
        for position in sorted({0, 63 % num_facts, num_facts - 1}):
            expected = [(mask >> position) & 1 for mask in rows]
            column = plane_bit_column(planes, position)
            assert column.dtype == np.int8
            assert column.tolist() == expected
            assert bit_column(planes, position).tolist() == expected

    def test_project_planes_empty_positions(self):
        planes = pack_masks([5, 9], 70)
        assert project_planes(planes, ()).tolist() == [0, 0]
        assert project_columns(planes, ()).tolist() == [0, 0]

    def test_bit_column_narrow_int64_path(self):
        masks = np.array([0b101, 0b010], dtype=np.int64)
        assert bit_column(masks, 0).tolist() == [1, 0]
        assert bit_column(masks, 1).tolist() == [0, 1]
        assert bit_column(masks, 2).tolist() == [1, 0]


class TestValidation:
    def test_pack_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            pack_masks([1], 0)

    def test_bit_column_rejects_out_of_range_position(self):
        planes = pack_masks([1], 64)
        with pytest.raises(IndexError):
            plane_bit_column(planes, 64)
