"""CrowdFusion reproduction: crowdsourced refinement of data-fusion results.

This package reproduces "CrowdFusion: A Crowdsourced Approach on Data Fusion
Refinement" (Chen, Chen & Zhang, ICDE 2017).  The public API is re-exported
here; see the README for a quickstart and DESIGN.md for the module map.
"""

from repro.core import (
    Answer,
    AnswerSet,
    Assignment,
    CalibratedCrowdModel,
    ChannelModel,
    CrowdFusionEngine,
    CrowdModel,
    DifficultyAdjustedCrowdModel,
    PerFactChannelModel,
    EngineResult,
    Fact,
    FactSet,
    JointDistribution,
    Query,
    RoundRecord,
    crowd_entropy,
    merge_answers,
    pws_quality,
    utility_gain,
)
from repro.core.selection import (
    RefinementSession,
    SessionPool,
    available_selectors,
    get_selector,
)

__version__ = "1.0.0"

__all__ = [
    "Answer",
    "AnswerSet",
    "Assignment",
    "CalibratedCrowdModel",
    "ChannelModel",
    "CrowdFusionEngine",
    "CrowdModel",
    "DifficultyAdjustedCrowdModel",
    "PerFactChannelModel",
    "RefinementSession",
    "SessionPool",
    "EngineResult",
    "Fact",
    "FactSet",
    "JointDistribution",
    "Query",
    "RoundRecord",
    "available_selectors",
    "crowd_entropy",
    "get_selector",
    "merge_answers",
    "pws_quality",
    "utility_gain",
    "__version__",
]
