"""End-to-end quality experiments (Figures 2, 3 and 4 of the paper).

The experiment runner mirrors the paper's setup: every entity (book) gets its
own fact set, prior distribution (from a machine-only fusion method), a task
budget ``B`` and a per-round task count ``k``; rounds are executed for all
entities in lock-step and after every global pass the summed utility and the
F1-score of the thresholded labels are recorded, producing the
quality-vs-cost curves of the figures.

The lock-step loop runs on a batched
:class:`~repro.core.selection.session.SessionPool`: one persistent
:class:`~repro.core.selection.session.RefinementSession` per entity, built
before the first pass and reweighted in place after every merge, so all
entities' candidate sets are scored against shared cached state (warm bit
columns and partitions) in every global pass instead of rebuilding one
selection engine per entity per pass.  Curve points come straight from the
sessions' cached arrays — no per-pass distribution materialisation at all.

The crowd may be modelled at three fidelities (``ExperimentConfig.crowd_model``):

* ``"uniform"`` — the paper's shared-``Pc`` :class:`CrowdModel`;
* ``"difficulty"`` — per-fact channels lowered by the platform's known task
  difficulties (:class:`DifficultyAdjustedCrowdModel`);
* ``"calibrated"`` — a per-entity qualification pre-test estimates the pool's
  accuracy (spending real platform answers, which are counted into the
  quality-vs-cost curve), optionally combined with the difficulty adjustment
  (:class:`CalibratedCrowdModel`).
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.crowd import (
    CalibratedCrowdModel,
    ChannelModel,
    CrowdModel,
    DifficultyAdjustedCrowdModel,
)
from repro.core.distribution import JointDistribution
from repro.core.facts import FactSet
from repro.core.runtime import RuntimeOptions
from repro.core.selection import TaskSelector, get_selector
from repro.core.selection.parallel import ParallelPolicy, fork_available
from repro.core.selection.session import RefinementSession, SessionPool
from repro.correlation.builder import JointDistributionBuilder
from repro.correlation.rules import CorrelationRule
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.qualification import QualificationTest
from repro.crowdsim.worker import WorkerPool
from repro.evaluation.metrics import classification_scores
from repro.exceptions import CrowdFusionError, DatasetError
from repro.fusion.claims import ClaimDatabase
from repro.fusion.pipeline import FusionMethod, claims_to_facts, fusion_prior

#: The crowd-model fidelities :func:`run_quality_experiment` understands.
CROWD_MODEL_KINDS = ("uniform", "difficulty", "calibrated")


@dataclass
class EntityProblem:
    """One independent refinement problem (one book / one flight)."""

    entity: str
    facts: FactSet
    prior: JointDistribution
    gold: Dict[str, bool]
    difficulties: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [fact_id for fact_id in self.prior.fact_ids if fact_id not in self.gold]
        if missing:
            raise DatasetError(
                f"entity {self.entity!r} is missing gold labels for {missing}"
            )


#: Signature of an optional correlation-rule factory: given the entity id and
#: its fact ids, return the rules coupling them in the prior.
RuleFactory = Callable[[str, Sequence[str]], Sequence[CorrelationRule]]


def build_problems(
    database: ClaimDatabase,
    gold: Mapping[str, bool],
    fusion_method: FusionMethod,
    difficulties: Optional[Mapping[str, float]] = None,
    clip: float = 0.05,
    max_facts_per_entity: Optional[int] = 14,
    rule_factory: Optional[RuleFactory] = None,
    entities: Optional[Sequence[str]] = None,
) -> List[EntityProblem]:
    """Fuse a claim database and split it into per-entity refinement problems.

    Parameters
    ----------
    database, gold:
        The claim observations and gold labels (from a dataset generator).
    fusion_method:
        The machine-only initialiser (e.g. :class:`repro.fusion.ModifiedCRH`).
    difficulties:
        Optional per-claim crowd difficulty used by the simulated platform.
    clip:
        Marginal clipping applied to the fusion confidences.
    max_facts_per_entity:
        Entities with more claims keep only their most-supported claims; this
        bounds the joint-distribution size (``None`` disables the cap).
    rule_factory:
        Optional factory producing correlation rules per entity; when omitted
        the prior is the independent product of the fusion marginals.
    entities:
        Restrict the problems to these entities (default: all entities).
    """
    result = fusion_method.run(database)
    difficulty_map = dict(difficulties or {})
    wanted = list(entities) if entities is not None else list(database.entities())
    problems: List[EntityProblem] = []

    for entity in wanted:
        claims = list(database.claims_for(entity))
        if not claims:
            continue
        claims.sort(key=lambda claim: (-claim.support, claim.claim_id))
        if max_facts_per_entity is not None:
            claims = claims[:max_facts_per_entity]
        facts = claims_to_facts(claims, result)
        fact_ids = facts.fact_ids

        if rule_factory is not None:
            marginals = {
                fact_id: min(1.0 - clip, max(clip, result.confidence(fact_id)))
                for fact_id in fact_ids
            }
            rules = rule_factory(entity, fact_ids)
            prior = JointDistributionBuilder(marginals, rules).build()
        else:
            prior = fusion_prior(result, claims, clip=clip, fact_ids=fact_ids)

        entity_gold = {fact_id: bool(gold[fact_id]) for fact_id in fact_ids}
        entity_difficulties = {
            fact_id: difficulty_map.get(fact_id, 0.0) for fact_id in fact_ids
        }
        problems.append(
            EntityProblem(
                entity=entity,
                facts=facts,
                prior=prior,
                gold=entity_gold,
                difficulties=entity_difficulties,
            )
        )
    if not problems:
        raise DatasetError("no entity problems could be built from the database")
    return problems


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one quality experiment run.

    Attributes
    ----------
    selector:
        Canonical selector name or paper label (see the selection registry).
    k:
        Tasks per round per entity.
    budget_per_entity:
        Task budget ``B`` for every entity (the paper uses 60 per book).
    worker_accuracy:
        The *actual* accuracy of the simulated workers.
    assumed_accuracy:
        The ``Pc`` the system assumes for selection and merging; defaults to
        ``worker_accuracy`` (the paper's Figure 4 varies this).
    answers_per_task:
        Independent worker answers aggregated per task by the platform.
    use_difficulties:
        Whether the per-claim difficulties affect the simulated workers.
    seed:
        Base RNG seed; each entity derives its own stream from it.
    crowd_model:
        Channel-model fidelity assumed by selection and merging: ``"uniform"``
        (one shared ``Pc``), ``"difficulty"`` (per-fact channels adjusted by
        the known task difficulties, active when ``use_difficulties`` is on)
        or ``"calibrated"`` (per-entity qualification pre-test estimates the
        accuracy, plus the difficulty adjustment when active).
    calibration_facts:
        Size of the per-entity gold sample used by the ``"calibrated"``
        pre-test.
    calibration_repetitions:
        How many times each calibration sample task is asked.
    runtime:
        Typed :class:`~repro.core.runtime.RuntimeOptions` carrying every
        execution knob (workers, parallel_threshold, persistent_pool,
        recalibrate, parallel_entities) in one validated object.  This is the
        supported way to configure the runtime; the five loose fields below
        keep working for one release with a :class:`DeprecationWarning` and
        may not be combined with ``runtime``.
    recalibrate_channels:
        Deprecated — use ``runtime=RuntimeOptions(recalibrate=True)``.
        Adaptive re-calibration: every entity's session re-estimates per-fact
        channel accuracies from answer/posterior agreement as rounds
        accumulate, on top of whichever ``crowd_model`` fidelity it started
        from.
    workers:
        Deprecated — use ``runtime=RuntimeOptions(workers=...)``.
        Worker processes for parallel candidate scans (``None`` disables
        parallelism entirely; selectors then never fork).  Only selectors of
        the greedy family honour it.
    parallel_threshold:
        Deprecated — use ``runtime=RuntimeOptions(parallel_threshold=...)``.
        Auto-serial threshold (candidates × support rows) below which a
        configured parallel scan still runs in process; ``None`` uses the
        library default.
    persistent_pool:
        Deprecated — use ``runtime=RuntimeOptions(workers=...,
        persistent_pool=True)``.
        When true (requires ``workers``), every entity's session owns one
        persistent worker pool surviving the whole run — reweighted
        posteriors are shipped to the already-forked workers through a
        shared-memory snapshot ring — instead of re-forking a pool per
        selection call.  Needs the ``fork`` start method.  Note the
        residency cost: pools are per entity (up to ``workers × entities``
        processes if every entity's scans clear the threshold), forked
        lazily and released as soon as an entity's budget is exhausted; on
        many-entity corpora keep ``workers`` moderate, or use
        ``parallel_entities`` instead.
    parallel_entities:
        Deprecated — use ``runtime=RuntimeOptions(parallel_entities=...)``.
        Fan whole entities out across a process pool of this size: each
        worker runs one entity's complete refinement trajectory (per-entity
        RNG streams make that deterministic) and the lock-step curve is
        reassembled from the per-round records, with points identical to the
        serial loop's.  Mutually exclusive with ``workers`` — inside the
        fan-out workers candidate scans stay serial (pool workers are
        daemonic and cannot fork grandchildren).  Needs ``fork``.
    """

    selector: str = "greedy_prune_pre"
    k: int = 3
    budget_per_entity: int = 60
    worker_accuracy: float = 0.8
    assumed_accuracy: Optional[float] = None
    answers_per_task: int = 1
    use_difficulties: bool = False
    seed: int = 0
    crowd_model: str = "uniform"
    calibration_facts: int = 5
    calibration_repetitions: int = 3
    recalibrate_channels: bool = False
    workers: Optional[int] = None
    parallel_threshold: Optional[int] = None
    persistent_pool: bool = False
    parallel_entities: Optional[int] = None
    runtime: Optional[RuntimeOptions] = None

    #: ``(field name, default)`` pairs of the deprecated loose runtime fields.
    _LEGACY_RUNTIME_FIELDS = (
        ("recalibrate_channels", False),
        ("workers", None),
        ("parallel_threshold", None),
        ("persistent_pool", False),
        ("parallel_entities", None),
    )

    def __post_init__(self) -> None:
        legacy = [
            name
            for name, default in self._LEGACY_RUNTIME_FIELDS
            if getattr(self, name) != default
        ]
        if legacy:
            if self.runtime is not None:
                raise CrowdFusionError(
                    "ExperimentConfig received both runtime= and the deprecated "
                    f"field(s) {', '.join(legacy)}; configure everything on "
                    "RuntimeOptions"
                )
            warnings.warn(
                f"ExperimentConfig({', '.join(legacy)}=...) is deprecated; "
                "pass runtime=RuntimeOptions(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.workers is not None and self.workers < 1:
            raise CrowdFusionError(
                f"workers must be a positive integer, got {self.workers}"
            )
        if self.parallel_threshold is not None and self.parallel_threshold < 0:
            raise CrowdFusionError(
                f"parallel_threshold must be non-negative, got {self.parallel_threshold}"
            )
        if self.parallel_entities is not None and self.parallel_entities < 1:
            raise CrowdFusionError(
                f"parallel_entities must be a positive integer, got "
                f"{self.parallel_entities}"
            )
        if self.persistent_pool and self.workers is None:
            raise CrowdFusionError(
                "persistent_pool requires workers: set workers (--workers) to "
                "the pool size the persistent runtime should keep alive"
            )
        if self.parallel_entities is not None and self.workers is not None:
            raise CrowdFusionError(
                "parallel_entities and workers are mutually exclusive: entity "
                "fan-out workers are daemonic and cannot fork nested candidate-"
                "scan pools; pick one parallelism axis"
            )
        if (self.persistent_pool or self.parallel_entities is not None) and (
            not fork_available()
        ):
            raise CrowdFusionError(
                "persistent worker pools and entity fan-out need the 'fork' "
                "start method, which this platform does not provide"
            )

    @property
    def model_accuracy(self) -> float:
        """The ``Pc`` used by selection and Bayesian merging."""
        return (
            self.assumed_accuracy
            if self.assumed_accuracy is not None
            else self.worker_accuracy
        )

    @property
    def runtime_options(self) -> RuntimeOptions:
        """The effective typed runtime configuration.

        Either the ``runtime`` object as passed, or one synthesised from the
        deprecated loose fields — so internal code reads one source of truth
        regardless of which spelling the caller used.  (The ``runtime`` field
        itself is stored verbatim to keep ``dataclasses.replace`` symmetric.)
        """
        if self.runtime is not None:
            return self.runtime
        return RuntimeOptions(
            workers=self.workers,
            parallel_threshold=self.parallel_threshold,
            persistent_pool=self.persistent_pool,
            recalibrate=self.recalibrate_channels,
            parallel_entities=self.parallel_entities,
        )

    @property
    def parallel_policy(self) -> Optional[ParallelPolicy]:
        """The parallel-scan policy this configuration implies (or ``None``)."""
        return self.runtime_options.parallel_policy


@dataclass(frozen=True)
class QualityPoint:
    """One point of a quality-vs-cost curve."""

    cost: int
    utility: float
    f1: float
    precision: float
    recall: float
    accuracy: float


@dataclass
class ExperimentResult:
    """Quality curve produced by one experiment run."""

    config: ExperimentConfig
    points: List[QualityPoint] = field(default_factory=list)

    @property
    def initial_point(self) -> QualityPoint:
        """Quality before any crowdsourcing (cost 0)."""
        return self.points[0]

    @property
    def final_point(self) -> QualityPoint:
        """Quality after the whole budget has been spent."""
        return self.points[-1]

    def costs(self) -> List[int]:
        """Cumulative cost axis of the curve."""
        return [point.cost for point in self.points]

    def f1_series(self) -> List[float]:
        """F1 values aligned with :meth:`costs`."""
        return [point.f1 for point in self.points]

    def utility_series(self) -> List[float]:
        """Summed-utility values aligned with :meth:`costs`."""
        return [point.utility for point in self.points]


@dataclass
class _EntityState:
    """Mutable per-entity state while an experiment is running."""

    problem: EntityProblem
    session: RefinementSession
    platform: SimulatedPlatform
    selector: TaskSelector
    remaining_budget: int


def _build_channel(
    config: ExperimentConfig, problem: EntityProblem, platform: SimulatedPlatform
) -> ChannelModel:
    """Construct the channel model the system assumes for one entity.

    The ``"calibrated"`` fidelity spends real (seeded) platform answers on a
    qualification pre-test before the refinement starts, exactly as a real
    deployment would, so its estimate varies with the worker RNG stream.
    """
    base = config.model_accuracy
    difficulties = problem.difficulties if config.use_difficulties else {}
    if config.crowd_model == "uniform":
        return CrowdModel(base)
    if config.crowd_model == "difficulty":
        return DifficultyAdjustedCrowdModel(base, difficulties)
    if config.crowd_model == "calibrated":
        sample_ids = sorted(problem.gold)[: max(1, config.calibration_facts)]
        sample = {fact_id: problem.gold[fact_id] for fact_id in sample_ids}
        estimate = QualificationTest(
            sample, repetitions=config.calibration_repetitions
        ).run(platform)
        # The pre-test measures the *effective* accuracy on its sample tasks,
        # difficulties included; add the sample's mean difficulty back to
        # recover the base accuracy before re-applying per-fact difficulties
        # (otherwise hard statements would be discounted twice).
        mean_difficulty = sum(
            difficulties.get(fact_id, 0.0) for fact_id in sample_ids
        ) / len(sample_ids)
        calibrated = min(1.0, max(0.5, estimate.estimated_accuracy + mean_difficulty))
        overrides = {
            fact_id: max(0.5, calibrated - difficulty)
            for fact_id, difficulty in difficulties.items()
            if difficulty > 0.0
        }
        return CalibratedCrowdModel(calibrated, overrides)
    raise CrowdFusionError(
        f"unknown crowd model {config.crowd_model!r}; "
        f"expected one of {CROWD_MODEL_KINDS}"
    )


def _prepare_entity(
    problem: EntityProblem,
    index: int,
    config: ExperimentConfig,
    budget_overrides: Mapping[str, int],
) -> "Tuple[SimulatedPlatform, ChannelModel, TaskSelector, int]":
    """Platform, channel, selector and budget for one entity.

    Shared by the serial lock-step loop and the entity fan-out workers: both
    derive every random stream from ``config.seed`` and the entity's global
    ``index``, so an entity's whole trajectory is identical no matter which
    process runs it.
    """
    workers = WorkerPool.homogeneous(
        size=25, accuracy=config.worker_accuracy, seed=config.seed * 7919 + index
    )
    platform = SimulatedPlatform(
        ground_truth=problem.gold,
        workers=workers,
        difficulties=problem.difficulties if config.use_difficulties else None,
        answers_per_task=config.answers_per_task,
    )
    channel = _build_channel(config, problem, platform)
    selector = get_selector(
        config.selector,
        **(
            {"seed": config.seed * 104729 + index}
            if config.selector in ("random", "Random")
            else {}
        ),
    )
    budget = budget_overrides.get(problem.entity, config.budget_per_entity)
    return platform, channel, selector, budget


def _measure(
    pool: SessionPool, states: Sequence[_EntityState], cost: int
) -> QualityPoint:
    """Compute one curve point straight from the session pool's cached arrays."""
    gold: Dict[str, bool] = {}
    for state in states:
        gold.update(state.problem.gold)
    scores = classification_scores(pool.predicted_labels(), gold)
    return QualityPoint(
        cost=cost,
        utility=pool.total_utility(),
        f1=scores.f1,
        precision=scores.precision,
        recall=scores.recall,
        accuracy=scores.accuracy,
    )


def run_quality_experiment(
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    budgets: Optional[Mapping[str, int]] = None,
) -> ExperimentResult:
    """Run the budgeted refinement over all entities and record the quality curve.

    Rounds are interleaved across entities (every entity runs its ``r``-th
    round before any entity runs round ``r + 1``), and a curve point is
    recorded after each global pass — matching how the paper accumulates cost
    over the whole book collection.  All entities refine through one
    :class:`SessionPool`, so each global pass scores candidate sets against
    the cached per-entity engines instead of rebuilding them.

    ``budgets`` optionally overrides the per-entity budget (keyed by entity
    id); entities not listed fall back to ``config.budget_per_entity``.  This
    is how the budget-allocation extension (``repro.evaluation.allocation``)
    plugs in.
    """
    if not problems:
        raise CrowdFusionError("cannot run an experiment without entity problems")
    budget_overrides = dict(budgets or {})
    runtime = config.runtime_options

    if runtime.parallel_entities is not None:
        return _run_fanned_out(list(problems), config, budget_overrides)

    pool = SessionPool()
    states: List[_EntityState] = []
    parallel_policy = runtime.parallel_policy
    for index, problem in enumerate(problems):
        platform, channel, selector, budget = _prepare_entity(
            problem, index, config, budget_overrides
        )
        if parallel_policy is not None:
            if not hasattr(selector, "parallel"):
                # Neither wiring can help this selector: it ignores per-call
                # policies and never consumes a session's evaluator.
                if index == 0:
                    warnings.warn(
                        f"selector {config.selector!r} does not support "
                        "parallel candidate scans; the workers/"
                        "parallel_threshold settings are ignored",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            elif not runtime.persistent_pool:
                selector.parallel = parallel_policy
        states.append(
            _EntityState(
                problem=problem,
                # The session derives both the re-calibration flag and (with
                # persistent_pool) its session-owned policy from the runtime.
                session=pool.add(
                    problem.entity, problem.prior, channel, runtime=runtime
                ),
                platform=platform,
                selector=selector,
                remaining_budget=budget,
            )
        )

    result = ExperimentResult(config=config)
    # Calibration pre-tests spend real platform answers before the first
    # refinement round; put that spend on the books so the quality-vs-cost
    # curves of the three crowd-model fidelities are comparable.
    total_cost = sum(state.platform.stats().answers_collected for state in states)
    result.points.append(_measure(pool, states, total_cost))

    # The pool context releases every session's persistent worker pool on the
    # way out — including when a selector raises mid-pass.
    with pool:
        while any(state.remaining_budget > 0 for state in states):
            progressed = False
            for state in states:
                if state.remaining_budget <= 0:
                    continue
                k = min(config.k, state.remaining_budget, state.session.num_facts)
                selection = state.selector.select_with_session(state.session, k)
                if not selection.task_ids:
                    state.remaining_budget = 0
                    state.session.close()
                    continue
                answers = state.platform.collect(selection.task_ids)
                state.session.merge(answers)
                state.remaining_budget -= len(selection.task_ids)
                total_cost += len(selection.task_ids)
                progressed = True
                if state.remaining_budget <= 0:
                    # This entity will never scan again: release its persistent
                    # workers now instead of holding them to the end of the run.
                    state.session.close()
            if not progressed:
                break
            result.points.append(_measure(pool, states, total_cost))

    return result


# -- cross-entity fan-out ---------------------------------------------------------


@dataclass
class TrajectoryRound:
    """One entity round as recorded by a trajectory worker."""

    tasks_asked: int
    utility: float
    labels: Dict[str, bool]


@dataclass
class EntityTrajectory:
    """Everything needed to splice one entity into the global curve.

    Produced by :func:`run_entity_trajectory`; consumed by
    :func:`assemble_curve`.  The fields are plain ints, floats and
    string-keyed bool dicts on purpose — they serialise to JSON and back
    without loss, which is what lets the durable orchestrator
    (:mod:`repro.orchestration`) journal trajectories to disk and still
    reassemble bit-identical curves on resume.
    """

    initial_cost: int
    initial_utility: float
    initial_labels: Dict[str, bool]
    rounds: List[TrajectoryRound]


#: Backwards-compatible private aliases (pre-1.2 internal names).
_TrajectoryRound = TrajectoryRound
_EntityTrajectory = EntityTrajectory


def run_entity_trajectory(
    problem: EntityProblem,
    index: int,
    config: ExperimentConfig,
    budget_overrides: Optional[Mapping[str, int]] = None,
) -> EntityTrajectory:
    """Run entity ``index``'s complete refinement trajectory, serially.

    Entities are independent for the whole run (the lock-step interleaving
    only matters for when curve points are *recorded*), so one entity's
    rounds can run back to back in any process; the caller reassembles
    pass-aligned curve points from the per-round records with
    :func:`assemble_curve`.  All randomness derives from ``config.seed`` and
    the entity's global ``index`` exactly as in the serial loop
    (:func:`_prepare_entity`), so the records are bit-for-bit what the serial
    loop would have produced — no matter which process, or which *run*, they
    are computed in.  This is the unit of work shared by the in-memory
    fan-out pool and the checkpointed orchestrator shards.
    """
    platform, channel, selector, budget = _prepare_entity(
        problem, index, config, dict(budget_overrides or {})
    )
    session = RefinementSession(
        problem.prior,
        channel,
        runtime=RuntimeOptions(
            recalibrate=config.runtime_options.recalibrate,
            kernel=config.runtime_options.kernel,
        ),
    )
    trajectory = EntityTrajectory(
        # Only calibration pre-tests have spent platform answers at this
        # point — the same spend the serial loop books into the cost-0 point.
        initial_cost=platform.stats().answers_collected,
        initial_utility=session.utility(),
        initial_labels=session.predicted_labels(),
        rounds=[],
    )
    remaining = budget
    while remaining > 0:
        k = min(config.k, remaining, session.num_facts)
        selection = selector.select_with_session(session, k)
        if not selection.task_ids:
            break
        answers = platform.collect(selection.task_ids)
        session.merge(answers)
        remaining -= len(selection.task_ids)
        trajectory.rounds.append(
            TrajectoryRound(
                tasks_asked=len(selection.task_ids),
                utility=session.utility(),
                labels=session.predicted_labels(),
            )
        )
    return trajectory


def assemble_curve(
    trajectories: Sequence[EntityTrajectory], gold: Mapping[str, bool]
) -> List[QualityPoint]:
    """Reassemble the global lock-step curve from per-entity trajectories.

    The point after pass ``r`` aggregates every entity's state after its
    ``min(r, rounds)``-th round, summing utilities and pooling labels in
    entity order — the identical floats, in the identical order, the serial
    loop produces.  Shared by the in-memory fan-out and the orchestrator's
    resume path, which is what makes "resumed run ≡ undisturbed run" a
    property of this one function rather than of two reimplementations.
    """

    def point(round_index: int, cost: int) -> QualityPoint:
        utilities: List[float] = []
        labels: Dict[str, bool] = {}
        for trajectory in trajectories:
            reached = min(round_index, len(trajectory.rounds))
            if reached == 0:
                utilities.append(trajectory.initial_utility)
                labels.update(trajectory.initial_labels)
            else:
                record = trajectory.rounds[reached - 1]
                utilities.append(record.utility)
                labels.update(record.labels)
        scores = classification_scores(labels, gold)
        return QualityPoint(
            cost=cost,
            utility=float(sum(utilities)),
            f1=scores.f1,
            precision=scores.precision,
            recall=scores.recall,
            accuracy=scores.accuracy,
        )

    points: List[QualityPoint] = []
    total_cost = sum(trajectory.initial_cost for trajectory in trajectories)
    points.append(point(0, total_cost))
    max_rounds = max((len(t.rounds) for t in trajectories), default=0)
    for round_index in range(1, max_rounds + 1):
        total_cost += sum(
            trajectory.rounds[round_index - 1].tasks_asked
            for trajectory in trajectories
            if len(trajectory.rounds) >= round_index
        )
        points.append(point(round_index, total_cost))
    return points


#: Fan-out work published to the fork pool: ``(problems, config, overrides)``.
#: Set immediately before the pool forks and cleared right after — workers
#: inherit the tuple through copy-on-write memory, nothing is pickled out.
_FANOUT_CONTEXT: Optional[Tuple[List[EntityProblem], ExperimentConfig, Dict[str, int]]] = None


def _entity_trajectory(index: int) -> EntityTrajectory:
    """Fan-out worker: run entity ``index``'s complete refinement trajectory.

    A thin shim over :func:`run_entity_trajectory` reading the work tuple
    from the fork-inherited module global.
    """
    problems, config, budget_overrides = _FANOUT_CONTEXT
    return run_entity_trajectory(problems[index], index, config, budget_overrides)


def _run_fanned_out(
    problems: List[EntityProblem],
    config: ExperimentConfig,
    budget_overrides: Dict[str, int],
) -> ExperimentResult:
    """The lock-step experiment with whole entities fanned out across a pool.

    Workers inherit the problem list through a fork (nothing is shipped out),
    each runs its entities' full trajectories, and the parent reassembles the
    global pass curve: the point after pass ``r`` aggregates every entity's
    state after its ``min(r, rounds)``-th round, summing utilities and
    pooling labels in entity order — the identical floats, in the identical
    order, the serial loop produces.
    """
    global _FANOUT_CONTEXT
    context = multiprocessing.get_context("fork")
    processes = min(config.runtime_options.parallel_entities, len(problems))
    _FANOUT_CONTEXT = (problems, config, budget_overrides)
    try:
        with context.Pool(processes=processes) as worker_pool:
            trajectories = worker_pool.map(
                _entity_trajectory, range(len(problems)), chunksize=1
            )
    finally:
        _FANOUT_CONTEXT = None

    gold: Dict[str, bool] = {}
    for problem in problems:
        gold.update(problem.gold)

    result = ExperimentResult(config=config)
    result.points.extend(assemble_curve(trajectories, gold))
    return result
