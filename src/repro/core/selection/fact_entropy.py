"""Naive baseline: select by fact entropy ``H({f_i})`` instead of ``H(T)``.

Section III-B of the paper discusses this tempting simplification: "as we
know nothing about the crowd, we may choose the best T with highest
H({f_i | f_i ∈ T}) instead of choosing the best T with highest H(T)" — and
shows on the running example that it picks a different (worse) task set
whenever the crowd is noisy, because it ignores how the Bernoulli answer
channel blurs the information each task can actually deliver.  The selector
is provided as a baseline so that difference can be measured, and it
coincides with the proper greedy selector exactly when ``Pc = 1``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.greedy import GAIN_TOLERANCE


class FactEntropySelector(TaskSelector):
    """Greedy selection maximising the *fact* joint entropy of the task set.

    This ignores the crowd accuracy entirely: it asks about the facts whose
    truth values are most uncertain, which is optimal for a perfect crowd but
    sub-optimal for a noisy one (the paper's Table III example).
    """

    name = "fact_entropy"

    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        stats = SelectionStats()
        selected: List[str] = []
        remaining = list(candidates)
        current_entropy = 0.0

        for _iteration in range(k):
            stats.iterations += 1
            best_id = None
            best_entropy = float("-inf")
            for fact_id in remaining:
                stats.candidate_evaluations += 1
                entropy = distribution.marginalize(selected + [fact_id]).entropy()
                if entropy > best_entropy + TIE_TOLERANCE:
                    best_entropy = entropy
                    best_id = fact_id
            if best_id is None:
                break
            gain = best_entropy - current_entropy
            if gain <= GAIN_TOLERANCE:
                # Remaining facts are fully determined by the selected ones:
                # asking them cannot reduce any fact uncertainty.
                break
            selected.append(best_id)
            remaining.remove(best_id)
            current_entropy = best_entropy
            if not remaining:
                break

        # Report the answer-set entropy of the chosen set so that results are
        # directly comparable with the other selectors' objectives.
        objective = (
            crowd.task_entropy(distribution, selected) if selected else 0.0
        )
        return SelectionResult(task_ids=tuple(selected), objective=objective, stats=stats)
