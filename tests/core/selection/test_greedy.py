"""Unit tests for the greedy approximation (Algorithm 1)."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import GreedySelector
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import SelectionError


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


class TestGreedyBasics:
    def test_selects_requested_number_of_tasks(self, crowd):
        dist = running_example_distribution()
        result = GreedySelector().select(dist, crowd, 3)
        assert len(result.task_ids) == 3
        assert len(set(result.task_ids)) == 3

    def test_k_larger_than_fact_count_is_capped(self, crowd):
        dist = running_example_distribution()
        result = GreedySelector().select(dist, crowd, 10)
        assert len(result.task_ids) == 4

    def test_invalid_k_rejected(self, crowd):
        dist = running_example_distribution()
        with pytest.raises(SelectionError):
            GreedySelector().select(dist, crowd, 0)

    def test_exclude_removes_candidates(self, crowd):
        dist = running_example_distribution()
        result = GreedySelector().select(dist, crowd, 2, exclude=["f1", "f4"])
        assert set(result.task_ids).isdisjoint({"f1", "f4"})

    def test_exclude_unknown_fact_rejected(self, crowd):
        dist = running_example_distribution()
        with pytest.raises(SelectionError):
            GreedySelector().select(dist, crowd, 1, exclude=["zzz"])

    def test_exclude_everything_rejected(self, crowd):
        dist = JointDistribution.independent({"a": 0.5})
        with pytest.raises(SelectionError):
            GreedySelector().select(dist, crowd, 1, exclude=["a"])

    def test_objective_equals_task_entropy_of_selection(self, crowd):
        dist = running_example_distribution()
        result = GreedySelector().select(dist, crowd, 2)
        assert result.objective == pytest.approx(
            crowd.task_entropy(dist, result.task_ids)
        )

    def test_stats_populated(self, crowd):
        dist = running_example_distribution()
        result = GreedySelector().select(dist, crowd, 2)
        assert result.stats.iterations == 2
        # First iteration scans 4 candidates, second scans 3.
        assert result.stats.candidate_evaluations == 7
        assert result.stats.elapsed_seconds >= 0.0


class TestGreedyEarlyStop:
    def test_stops_when_facts_are_certain(self, crowd):
        """Theorem 2 corollary: certain facts offer zero gain and are skipped."""
        dist = JointDistribution.independent({"a": 1.0, "b": 0.5, "c": 1.0})
        result = GreedySelector().select(dist, crowd, 3)
        assert result.task_ids == ("b",)

    def test_positive_gain_while_uncertainty_remains(self, crowd):
        """Theorem 2: with uncertain facts left, greedy keeps selecting."""
        dist = JointDistribution.independent({"a": 0.6, "b": 0.7, "c": 0.8})
        result = GreedySelector().select(dist, crowd, 3)
        assert len(result.task_ids) == 3

    def test_single_uncertain_fact_chosen_first(self, crowd):
        dist = JointDistribution.independent({"a": 0.99, "b": 0.5, "c": 0.95})
        result = GreedySelector().select(dist, crowd, 1)
        assert result.task_ids == ("b",)


class TestGreedyQuality:
    def test_greedy_matches_opt_for_k1(self, crowd):
        """For k = 1 greedy is exactly optimal (both pick the single best task)."""
        from repro.core.selection import BruteForceSelector

        dist = running_example_distribution()
        greedy = GreedySelector().select(dist, crowd, 1)
        opt = BruteForceSelector().select(dist, crowd, 1)
        assert greedy.objective == pytest.approx(opt.objective)

    def test_greedy_objective_monotone_in_k(self, crowd):
        dist = running_example_distribution()
        objectives = [
            GreedySelector().select(dist, crowd, k).objective for k in range(1, 5)
        ]
        assert objectives == sorted(objectives)

    def test_greedy_within_one_minus_one_over_e_of_opt(self, crowd):
        """The (1 − 1/e) guarantee on the running example for every k."""
        from repro.core.selection import BruteForceSelector

        dist = running_example_distribution()
        for k in range(1, 5):
            greedy = GreedySelector().select(dist, crowd, k).objective
            opt = BruteForceSelector().select(dist, crowd, k).objective
            assert greedy >= (1 - 1 / 2.718281828) * opt - 1e-9
