"""Multi-host cluster overhead: lease round-trips and reassignment latency.

Two scenarios, recorded into the shared ``BENCH_selection.json`` artifact:

* ``orchestration/multihost_lease_overhead_*`` — the same sweep through the
  single-host durable orchestrator (2 fork shards, pipe dispatch) and
  through the cluster coordinator (2 loopback worker subprocesses, leases
  and results over JSON-lines TCP).  The curves must be identical; the
  socket-and-lease tax on wall-clock must stay within ~15%% of the pipes.
* ``orchestration/multihost_reassignment_*`` — one worker SIGKILLed
  mid-lease; the coordinator journal's wall-clock stamps reconstruct the
  fault timeline: kill → lease fenced (EOF detection, must beat the lease
  TTL) → fenced range re-granted to the survivor.
"""

import itertools
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.evaluation.experiment import (
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.fusion.crh import ModifiedCRH
from repro.orchestration import (
    ClusterConfig,
    OrchestratorConfig,
    run_checkpointed_experiment,
    run_cluster_experiment,
)
from repro.orchestration.journal import read_records
from repro.orchestration.orchestrator import JOURNAL_NAME
from repro.testing import faults
from repro.testing.faults import FaultPlan

from bench_selection_hotpath import _record_scenarios, best_of

import multiprocessing

SEED = 0
WORKERS = 2
#: The leased TCP sweep may cost at most this factor over the single-host
#: durable orchestrator (same fsync'd journals; the delta is the socket
#: round-trips, heartbeat traffic and lease bookkeeping).
MAX_LEASE_OVERHEAD = 1.15

pytestmark = pytest.mark.parallel


def _problems(num_books=8):
    corpus = generate_book_corpus(
        BookCorpusConfig(
            num_books=num_books, num_sources=12, max_sources_per_book=10,
            seed=SEED + 4,
        )
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=10,
    )


def test_lease_overhead_vs_durable_orchestrator(tmp_path):
    """Leased TCP sweep vs fork-pipe sweep: identical curves, bounded tax."""
    problems = _problems()
    config = ExperimentConfig(
        selector="greedy_prune_pre", k=2, budget_per_entity=12, seed=SEED
    )
    cpus = os.cpu_count() or 1
    run_dirs = (str(tmp_path / f"run{i}") for i in itertools.count())

    def durable():
        return run_checkpointed_experiment(
            problems, config,
            OrchestratorConfig(run_dir=next(run_dirs), shards=WORKERS),
        )

    def clustered():
        return run_cluster_experiment(
            problems, config,
            ClusterConfig(
                run_dir=next(run_dirs), lease_entities=2,
                local_workers=WORKERS,
            ),
        )

    durable_report = durable()
    cluster_report = clustered()
    assert cluster_report.result.points == durable_report.result.points
    assert cluster_report.stats.results_rejected == 0

    durable_seconds = best_of(durable, repeats=2)
    cluster_seconds = best_of(clustered, repeats=2)
    overhead = cluster_seconds / durable_seconds

    entry = {
        "suite": "orchestration",
        "description": (
            f"Budget-{config.budget_per_entity} sweep over {len(problems)} "
            f"books: cluster coordinator ({WORKERS} loopback workers, "
            "lease grants + results + heartbeats over JSON-lines TCP) vs "
            "the single-host durable orchestrator on the same worker "
            "count.  Curves are asserted identical; 'overhead' is the "
            "socket-and-lease tax on wall-clock."
        ),
        "entities": len(problems),
        "budget_per_entity": config.budget_per_entity,
        "k": config.k,
        "workers": WORKERS,
        "cpus": cpus,
        "curve_points": len(durable_report.result.points),
        "durable_seconds": durable_seconds,
        "cluster_seconds": cluster_seconds,
        "lease_overhead": overhead,
        "identical_curves": True,
    }
    _record_scenarios(
        {f"orchestration/multihost_lease_overhead_books{len(problems)}"
         f"_b{config.budget_per_entity}_w{WORKERS}": entry}
    )

    if cpus >= WORKERS:
        assert overhead <= MAX_LEASE_OVERHEAD, entry


def test_reassignment_latency_after_worker_kill(tmp_path):
    """Kill → fence → re-grant, timed from the coordinator's decision log."""
    problems = _problems(num_books=6)
    config = ExperimentConfig(
        selector="greedy_prune_pre", k=2, budget_per_entity=12, seed=SEED
    )
    serial = run_quality_experiment(problems, config)
    cluster = ClusterConfig(
        run_dir=str(tmp_path / "run"),
        lease_ttl_s=6.0,
        heartbeat_s=0.3,
        lease_entities=3,
        max_attempts=5,
        local_workers=WORKERS,
    )
    # Stretch each entity so the kill reliably lands mid-lease.
    faults.install(FaultPlan(delay_entity_seconds=0.3))
    journal_path = Path(cluster.run_dir) / JOURNAL_NAME
    killed = {}

    def assassin():
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            grants = set()
            if journal_path.exists():
                grants = {
                    record["worker"]
                    for record in read_records(str(journal_path))
                    if record["type"] == "lease_granted"
                }
            children = multiprocessing.active_children()
            if len(grants) >= 2 and children:
                victim = children[0]
                killed["pid"] = victim.pid
                killed["at"] = time.time()
                os.kill(victim.pid, signal.SIGKILL)
                return
            time.sleep(0.02)

    watcher = threading.Thread(target=assassin, daemon=True)
    watcher.start()
    try:
        report = run_cluster_experiment(problems, config, cluster)
    finally:
        faults.uninstall()
    watcher.join(timeout=5.0)

    assert killed, "the assassin never found a leased worker to kill"
    assert report.stats.leases_expired >= 1
    assert report.result.points == serial.points

    records = read_records(str(journal_path))
    expired = next(r for r in records if r["type"] == "lease_expired")
    refenced = set(expired["pending"])
    regrant = next(
        r for r in records
        if r["type"] == "lease_granted"
        and r["ts"] >= expired["ts"]
        and refenced & set(range(r["start"], r["stop"]))
    )
    detection_s = expired["ts"] - killed["at"]
    regrant_s = regrant["ts"] - expired["ts"]

    entry = {
        "suite": "orchestration",
        "description": (
            f"One of {WORKERS} workers SIGKILLed mid-lease during a "
            f"{len(problems)}-entity sweep.  'detection_seconds' is kill → "
            "lease fenced (socket EOF, so it must beat the lease TTL "
            f"of {cluster.lease_ttl_s}s); 'regrant_seconds' is fence → the "
            "orphaned range re-granted to a surviving worker.  The final "
            "curve is asserted identical to the serial runner."
        ),
        "entities": len(problems),
        "budget_per_entity": config.budget_per_entity,
        "workers": WORKERS,
        "lease_ttl_s": cluster.lease_ttl_s,
        "heartbeat_s": cluster.heartbeat_s,
        "leases_expired": report.stats.leases_expired,
        "detection_seconds": detection_s,
        "regrant_seconds": regrant_s,
        "kill_to_regrant_seconds": detection_s + regrant_s,
        "identical_curves": True,
    }
    _record_scenarios(
        {f"orchestration/multihost_reassignment_books{len(problems)}"
         f"_ttl{cluster.lease_ttl_s:g}": entry}
    )

    # EOF detection must beat the heartbeat-timeout worst case, and the
    # orphaned range must be back on a worker within one lease TTL.
    assert detection_s < cluster.lease_ttl_s, entry
    assert regrant_s < cluster.lease_ttl_s, entry
