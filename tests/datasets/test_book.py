"""Unit tests for the synthetic Book corpus generator."""

import pytest

from repro.datasets.book import Book, BookCorpusConfig, generate_book_corpus
from repro.datasets.corruption import same_author_list
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def corpus():
    return generate_book_corpus(BookCorpusConfig(num_books=30, num_sources=15, seed=42))


class TestConfigValidation:
    def test_defaults_are_valid(self):
        BookCorpusConfig()

    def test_invalid_counts_rejected(self):
        with pytest.raises(DatasetError):
            BookCorpusConfig(num_books=0)
        with pytest.raises(DatasetError):
            BookCorpusConfig(num_sources=0)

    def test_invalid_coverage_range_rejected(self):
        with pytest.raises(DatasetError):
            BookCorpusConfig(min_sources_per_book=5, max_sources_per_book=3)
        with pytest.raises(DatasetError):
            BookCorpusConfig(num_sources=4, max_sources_per_book=10)

    def test_error_mix_must_sum_to_one(self):
        with pytest.raises(DatasetError):
            BookCorpusConfig(error_mix=(0.5, 0.5, 0.5))

    def test_book_validation(self):
        with pytest.raises(DatasetError):
            Book(isbn="x", title="t", true_authors=(), domain="textbook")
        with pytest.raises(DatasetError):
            Book(isbn="x", title="t", true_authors=("A",), domain="magazine")


class TestGeneratedCorpus:
    def test_book_count_matches_config(self, corpus):
        assert len(corpus.books) == 30

    def test_every_claim_has_gold_label_and_difficulty(self, corpus):
        claim_ids = {claim.claim_id for claim in corpus.database.claims()}
        assert set(corpus.gold) == claim_ids
        assert set(corpus.difficulties) == claim_ids
        assert set(corpus.statement_kinds) == claim_ids

    def test_raw_correctness_near_one_half(self, corpus):
        """The paper reports ~50 % of raw web claims are correct."""
        assert 0.35 <= corpus.raw_correctness() <= 0.70

    def test_deterministic_given_seed(self):
        config = BookCorpusConfig(
            num_books=10, num_sources=8, max_sources_per_book=6, seed=7
        )
        first = generate_book_corpus(config)
        second = generate_book_corpus(config)
        assert first.gold == second.gold
        assert [c.value for c in first.database.claims()] == [
            c.value for c in second.database.claims()
        ]

    def test_different_seeds_differ(self):
        def make(seed):
            return generate_book_corpus(
                BookCorpusConfig(
                    num_books=10, num_sources=8, max_sources_per_book=6, seed=seed
                )
            )

        first = make(1)
        second = make(2)
        assert [c.value for c in first.database.claims()] != [
            c.value for c in second.database.claims()
        ]

    def test_gold_labels_consistent_with_true_authors(self, corpus):
        for claim in corpus.database.claims():
            book = corpus.book(claim.entity)
            stated = [name.strip() for name in claim.value.split(";")]
            assert corpus.gold[claim.claim_id] == same_author_list(
                stated, list(book.true_authors)
            )

    def test_reordered_statements_are_gold_true_but_difficult(self, corpus):
        reordered = [
            claim_id
            for claim_id, kind in corpus.statement_kinds.items()
            if kind == "reordered"
        ]
        if not reordered:
            pytest.skip("no reordered statements generated for this seed")
        for claim_id in reordered:
            assert corpus.gold[claim_id] is True
            assert corpus.difficulties[claim_id] > 0.1

    def test_misspelled_and_organization_statements_are_gold_false(self, corpus):
        for claim_id, kind in corpus.statement_kinds.items():
            if kind in ("misspelled", "organization", "swapped"):
                assert corpus.gold[claim_id] is False

    def test_domain_map_covers_all_books(self, corpus):
        assert set(corpus.domain_of) == {book.isbn for book in corpus.books}
        assert set(corpus.domain_of.values()) <= {"textbook", "non-textbook"}

    def test_claims_for_book_all_about_that_book(self, corpus):
        isbn = corpus.books[0].isbn
        for claim in corpus.claims_for_book(isbn):
            assert claim.entity == isbn

    def test_unknown_book_lookup_raises(self, corpus):
        with pytest.raises(DatasetError):
            corpus.book("not-an-isbn")

    def test_books_with_min_claims_filter(self, corpus):
        heavy = corpus.books_with_min_claims(5)
        for isbn in heavy:
            assert len(corpus.claims_for_book(isbn)) >= 5

    def test_each_book_has_at_least_one_claim(self, corpus):
        for book in corpus.books:
            assert len(corpus.claims_for_book(book.isbn)) >= 1
