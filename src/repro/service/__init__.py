"""Refinement-as-a-service: a multi-tenant session server on the core runtime.

The paper's pay-as-you-go loop is interactive — a requester posts crowd
answers and asks "which tasks next?" under a running budget — and this
package exposes exactly that loop as a long-running service.  Sessions are
addressable resources backed by the persistent
:class:`~repro.core.selection.session.RefinementSession` runtime, and many
tenants' candidate scans are multiplexed onto a small, fixed set of shared
:class:`~repro.core.selection.parallel.EvaluatorPool` worker pools instead
of one pool per tenant.

Layers (each importable on its own):

* :mod:`repro.service.api` — typed request/response dataclasses, the
  service error hierarchy and the JSON wire codecs;
* :mod:`repro.service.registry` — session bookkeeping on a
  :class:`~repro.core.selection.session.SessionPool`;
* :mod:`repro.service.batching` — the shared evaluator-pool group;
* :mod:`repro.service.metrics` — counters and latency percentiles;
* :mod:`repro.service.server` — the asyncio :class:`RefinementService`;
* :mod:`repro.service.transport` — a JSON-lines TCP front end;
* :mod:`repro.service.client` — the matching asyncio client.
"""

from repro.service.api import (
    BudgetExhaustedError,
    DeadlineExceededError,
    MergeAbortedError,
    MergeReport,
    PosteriorView,
    SelectionReply,
    ServiceError,
    SessionClosed,
    SessionCreated,
    SessionOverloadedError,
    UnknownSessionError,
    ValidationFailedError,
)
from repro.service.client import NO_RETRY, RetryPolicy, ServiceClient
from repro.service.server import RefinementService
from repro.service.transport import TransportError, serve

__all__ = [
    "BudgetExhaustedError",
    "DeadlineExceededError",
    "MergeAbortedError",
    "MergeReport",
    "NO_RETRY",
    "PosteriorView",
    "RefinementService",
    "RetryPolicy",
    "SelectionReply",
    "ServiceClient",
    "ServiceError",
    "SessionClosed",
    "SessionCreated",
    "SessionOverloadedError",
    "TransportError",
    "UnknownSessionError",
    "ValidationFailedError",
    "serve",
]
