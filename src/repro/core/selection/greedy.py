"""Greedy approximate task selection (Algorithm 1 of the paper).

Because the answer-set entropy ``H(T)`` is monotone and submodular in the
task set, iteratively adding the fact with the largest marginal entropy gain
achieves a ``(1 − 1/e)`` approximation of the optimum (Nemhauser et al.).
The selector stops early (``K* < k``) when no candidate yields a positive
gain, exactly as lines 5–6 of Algorithm 1 prescribe.

All greedy variants share :func:`run_greedy_on_engine`, one scan loop over a
vectorized incremental :class:`~repro.core.selection.engine.EntropyEngine`;
they differ only in whether the Theorem-3 pruning rule is applied, and in
whether the engine is built fresh (:func:`run_engine_greedy`) or borrowed
warm from a :class:`~repro.core.selection.session.RefinementSession`.  The
historical per-candidate-from-scratch implementation survives as
:class:`~repro.core.selection.reference.ReferenceGreedySelector`.

Under a **heterogeneous** channel model the per-task crowd noise is no longer
a constant: the expected utility gain of adding task ``f`` is
``H(T ∪ {f}) − H(T) − H(Crowd_f)``, so candidates are ranked by the net score
``H(T ∪ {f}) − H(Crowd_f)`` (the objective ``H(T) − Σ_f H(Crowd_f)`` stays
monotone-submodular because the noise term is modular).  Uniform models keep
the original raw-entropy ranking — the two are identical there, and keeping
the original comparison sequence preserves bit-level tie behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.parallel import (
    ParallelEvaluator,
    ParallelPolicy,
    ParallelSelectorMixin,
)
from repro.core.utility import crowd_entropy

#: Gains smaller than this are treated as zero ("no benefit from one more task").
GAIN_TOLERANCE = 1e-9


def run_greedy_on_engine(
    engine: EntropyEngine,
    k: int,
    candidates: Sequence[str],
    use_pruning: bool = False,
    evaluator: Optional[ParallelEvaluator] = None,
) -> SelectionResult:
    """One run of Algorithm 1 on a (possibly warm) engine, optionally with pruning.

    Candidates are ranked by the answer-set entropy ``H(T ∪ {f})`` (uniform
    channels) or by the net score ``H(T ∪ {f}) − H(Crowd_f)`` (heterogeneous
    channels); the early stop (lines 5–6) uses the *net* gain — the expected
    utility improvement ``ΔQ`` of adding one more task.  A noisy crowd adds
    exactly ``H(Crowd_f)`` of answer entropy even for a fact that is already
    certain, so subtracting it is what makes "no benefit from asking one more
    task" detect certainty (Theorem 2: the net gain is positive exactly while
    an uncertain fact remains).

    When a :class:`ParallelEvaluator` is supplied, each iteration's candidate
    entropies may be computed by its worker pool (the evaluator's policy
    decides per scan; small scans stay in process).  The ranking below runs
    over one entropy per candidate *in candidate order* either way, so the
    selected set, the tie-breaking and the pruning decisions are bit-for-bit
    those of the serial path.
    """
    stats = SelectionStats(kernel=engine.kernel_tier)
    state = engine.initial_state()
    remaining = list(candidates)
    pruned: Set[str] = set()
    uniform = engine.uniform_accuracy
    uniform_noise = crowd_entropy(uniform) if uniform is not None else 0.0

    for _iteration in range(k):
        stats.iterations += 1
        slack_bits = float(k - state.width - 1)

        if use_pruning:
            active = [fact_id for fact_id in remaining if fact_id not in pruned]
            stats.pruned_candidates += len(remaining) - len(active)
        else:
            active = remaining
        entropies: Optional[List[float]] = None
        if evaluator is not None:
            entropies = evaluator.evaluate(state, active)
        if entropies is None:
            entropies = [
                engine.extension_entropy(state, fact_id) for fact_id in active
            ]
        stats.candidate_evaluations += len(active)
        if state.width:
            # Every evaluation past the first iteration reuses the cached
            # partition and channel table instead of a from-scratch pass.
            stats.cache_hits += len(active)

        best_id = None
        best_entropy = float("-inf")
        best_score = float("-inf")
        newly_pruned: Set[str] = set()
        for fact_id, entropy in zip(active, entropies):
            score = (
                entropy if uniform is not None else entropy - engine.noise_entropy(fact_id)
            )
            if score > best_score + TIE_TOLERANCE:
                best_score = score
                best_entropy = entropy
                best_id = fact_id
            # Theorem 3: if even adding the remaining slack cannot reach the
            # current best, this fact can never be part of a better greedy
            # trajectory — drop it for all future iterations too.  (Each
            # future task adds at most one bit of entropy and never a
            # negative noise term, so the slack bound still holds for net
            # scores.)
            if use_pruning and score + slack_bits < best_score:
                newly_pruned.add(fact_id)

        pruned.update(newly_pruned)
        stats.pruned_facts = len(pruned)
        if best_id is None:
            break
        if uniform is not None:
            gain = best_entropy - state.entropy - uniform_noise
        else:
            gain = best_score - state.entropy
        if gain <= GAIN_TOLERANCE:
            # No candidate improves the expected utility: stop with K* < k.
            break
        state = engine.extend(state, best_id)
        remaining.remove(best_id)
        if not remaining:
            break

    return SelectionResult(
        task_ids=state.task_ids, objective=state.entropy, stats=stats
    )


def run_engine_greedy(
    distribution: JointDistribution,
    crowd: ChannelModel,
    k: int,
    candidates: Sequence[str],
    use_pruning: bool = False,
) -> SelectionResult:
    """Build a fresh engine for ``distribution`` and run Algorithm 1 on it."""
    return run_greedy_on_engine(
        EntropyEngine(distribution, crowd), k, candidates, use_pruning=use_pruning
    )


class GreedySelector(ParallelSelectorMixin, TaskSelector):
    """Algorithm 1: iterative greedy selection maximising ``H(T)``.

    Parameters
    ----------
    parallel:
        Optional :class:`~repro.core.selection.parallel.ParallelPolicy`.
        When set, each iteration's candidate scan may be sharded across a
        fork-shared worker pool; the policy's auto-serial threshold keeps
        small rounds in process.  Selections are bit-for-bit identical to
        the serial path either way.  Selections against a
        :class:`~repro.core.selection.session.RefinementSession` that owns a
        persistent evaluator use the session's long-lived pool instead.
    """

    name = "greedy"

    #: Whether the Theorem-3 pruning rule is applied (overridden by subclasses).
    use_pruning = False

    def _runner(
        self,
        engine: EntropyEngine,
        k: int,
        candidates: Sequence[str],
        evaluator: Optional[ParallelEvaluator],
    ) -> SelectionResult:
        return run_greedy_on_engine(
            engine, k, candidates, use_pruning=self.use_pruning, evaluator=evaluator
        )

    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        return self._scan(
            EntropyEngine(distribution, crowd), k, candidates, self._runner
        )

    def _select_with_session(self, session, k, candidates) -> SelectionResult:
        return self._scan(
            session.engine,
            k,
            candidates,
            self._runner,
            shared_evaluator=session.shared_evaluator(),
        )
