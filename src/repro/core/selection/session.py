"""Persistent refinement sessions: one engine amortised over many rounds.

A multi-round CrowdFusion run repeats select → collect → merge on the *same*
output support: Bayesian merging only reweights the probability of each
support row, it never adds or removes rows.  Rebuilding a fresh
:class:`~repro.core.selection.engine.EntropyEngine` every round therefore
throws away every structural cache — the contiguous support arrays, the
per-fact 0/1 bit columns, the facts-of-interest cells — and, on the fresh
path, also round-trips the posterior through a Python dict twice per round
(once to build the merged :class:`JointDistribution`, once to re-extract its
arrays).

A :class:`RefinementSession` owns one engine for the lifetime of a run:

* :meth:`RefinementSession.select` hands the live engine to any session-aware
  selector (all greedy variants), so every round's scan starts from warm
  caches;
* :meth:`RefinementSession.merge` applies a round's answers as a pure array
  reweight (:meth:`EntropyEngine.reweight`) — no dict materialisation at all;
* marginals, entropy/utility and predicted labels are computed directly from
  the cached arrays, and a full :class:`JointDistribution` posterior is only
  materialised on demand (:attr:`RefinementSession.distribution`).

A :class:`SessionPool` keys sessions by entity so batched experiments (one
refinement problem per book, rounds interleaved in lock-step) reuse every
entity's cached state across all global passes instead of building one engine
per entity per pass.

Two extensions ride on the same cached arrays:

* **Batched multi-query scoring** — :meth:`RefinementSession.select_queries`
  scores many queries' task sets against one entity off a *single* shared set
  of cached per-fact bit columns: each query gets an interest *view* of the
  session engine (:meth:`EntropyEngine.interest_view` — own interest cells,
  shared everything else) instead of one full engine per query.
* **Adaptive channel re-calibration** — with ``recalibrate=True`` the session
  re-estimates per-fact channel accuracies from answer/posterior agreement as
  rounds accumulate and swaps the updated
  :class:`~repro.core.crowd.RecalibratedChannelModel` into both selection and
  merging, keeping every structural cache warm.

The session is also the owner of the **persistent parallel runtime**: built
with a :class:`~repro.core.selection.parallel.ParallelPolicy`, it hands every
session-aware selector one long-lived
:class:`~repro.core.selection.parallel.ParallelEvaluator` whose fork-shared
worker pool survives the run's merges (each round's reweighted posterior is
shipped through a shared-memory snapshot ring instead of re-forking).  The
pool is acquired on the first scan that clears the policy threshold and
released by :meth:`RefinementSession.close` — sessions (and
:class:`SessionPool`) are context managers, so worker processes are reclaimed
even when a selector raises mid-scan.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel, RecalibratedChannelModel
from repro.core.distribution import JointDistribution
from repro.core.entropy import entropy_bits
from repro.core.merging import answer_likelihood_array
from repro.core.query import Query
from repro.core.selection.base import SelectionResult, TaskSelector
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.parallel import (
    EvaluatorPool,
    ParallelEvaluator,
    ParallelPolicy,
    PooledEvaluator,
)
from repro.exceptions import SelectionError

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.runtime import RuntimeOptions

#: Sentinel distinguishing "caller did not pass the deprecated keyword" from
#: every meaningful value, so the deprecation warning only fires on real use.
_UNSET = object()


def _resolve_runtime(
    recalibrate: object,
    parallel: Optional[ParallelPolicy],
    runtime: "Optional[RuntimeOptions]",
    evaluator_pool: Optional[EvaluatorPool],
    owner: str,
) -> "Tuple[bool, Optional[ParallelPolicy], str]":
    """Fold the deprecated ``recalibrate`` keyword and ``runtime`` into one
    ``(recalibrate, session_policy, kernel)`` triple, enforcing the
    exclusivity rules."""
    if recalibrate is not _UNSET:
        if runtime is not None:
            raise SelectionError(
                f"{owner} received both runtime= and the deprecated "
                "recalibrate= keyword; set RuntimeOptions.recalibrate instead"
            )
        warnings.warn(
            f"{owner}(recalibrate=...) is deprecated; pass "
            "runtime=RuntimeOptions(recalibrate=...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    resolved_recalibrate = bool(recalibrate) if recalibrate is not _UNSET else False
    kernel = "auto"
    if runtime is not None:
        resolved_recalibrate = runtime.recalibrate
        kernel = runtime.kernel
        if parallel is None:
            parallel = runtime.session_policy
    if evaluator_pool is not None and parallel is not None:
        raise SelectionError(
            f"{owner} cannot combine a dedicated parallel policy with a "
            "shared evaluator_pool; the pool already carries its own policy"
        )
    return resolved_recalibrate, parallel, kernel


class RefinementSession:
    """Cached selection/merging state for one multi-round refinement run.

    Parameters
    ----------
    distribution:
        The prior joint output distribution.  Its support — and therefore
        every structural cache — is fixed for the session's lifetime.
    channel:
        The :class:`~repro.core.crowd.ChannelModel` used both to score
        candidate task sets and to merge the received answers, so what
        selection expects is exactly what merging applies.
    interest_ids:
        Optional facts of interest; when given, the session's engine also
        tracks ``H(I, T)`` and session-aware query selectors reuse it.
    recalibrate:
        When true, each merge re-estimates the channel accuracy of every
        answered fact from the posterior's agreement with the received
        answers and swaps the updated channel into the engine (selection)
        and the merge path, so later rounds price crowd noise with the
        evidence accumulated so far.
    recalibration_smoothing:
        Pseudo-observation weight anchoring each re-estimate to the base
        channel's accuracy, so one or two rounds of answers cannot swing a
        channel to an extreme.
    parallel:
        Optional :class:`~repro.core.selection.parallel.ParallelPolicy`.
        When given, the session owns a *persistent*
        :class:`~repro.core.selection.parallel.ParallelEvaluator` for its
        engine: session-aware selectors of the greedy family shard their
        candidate scans over one long-lived fork pool that survives every
        :meth:`merge` (posteriors travel through a shared-memory snapshot
        ring), instead of re-forking per selection call.  Release the pool
        with :meth:`close` or by using the session as a context manager.
    runtime:
        Optional :class:`~repro.core.runtime.RuntimeOptions`; supplies
        ``recalibrate`` and — when ``persistent_pool`` is set — the parallel
        policy, replacing the deprecated loose keywords.
    evaluator_pool:
        Optional shared :class:`~repro.core.selection.parallel.EvaluatorPool`
        to multiplex this session's candidate scans onto, instead of the
        session forking a dedicated pool.  The session attaches its engine
        lazily on the first scan and detaches it on :meth:`close` — this is
        how a multi-tenant server runs many sessions on a small, fixed set
        of worker pools.  Mutually exclusive with a dedicated ``parallel``
        policy.
    """

    def __init__(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        interest_ids: Optional[Sequence[str]] = None,
        recalibrate: object = _UNSET,
        recalibration_smoothing: float = 4.0,
        parallel: Optional[ParallelPolicy] = None,
        runtime: "Optional[RuntimeOptions]" = None,
        evaluator_pool: Optional[EvaluatorPool] = None,
    ):
        if recalibration_smoothing <= 0.0:
            raise SelectionError(
                f"recalibration smoothing must be positive, got {recalibration_smoothing}"
            )
        recalibrate, parallel, kernel = _resolve_runtime(
            recalibrate, parallel, runtime, evaluator_pool, "RefinementSession"
        )
        self._initial = distribution
        self._base_channel = channel
        self._channel = channel
        self._interest_ids = tuple(interest_ids) if interest_ids else ()
        self._engine = EntropyEngine(
            distribution, channel, interest_ids=interest_ids, kernel=kernel
        )
        self._materialized: Optional[JointDistribution] = distribution
        self._rounds_merged = 0
        self._views: Dict[Tuple[str, ...], EntropyEngine] = {}
        self._recalibrate = recalibrate
        self._smoothing = recalibration_smoothing
        self._agreement_mass: Dict[str, float] = {}
        self._agreement_count: Dict[str, int] = {}
        self._parallel_policy = parallel
        self._evaluator_pool = evaluator_pool
        self._evaluator: Optional[Union[ParallelEvaluator, PooledEvaluator]] = None

    # -- persistent parallel runtime ---------------------------------------------------

    @property
    def parallel_policy(self) -> Optional[ParallelPolicy]:
        """The policy behind the session's persistent pool (``None`` = serial).

        For a session multiplexed onto a shared
        :class:`~repro.core.selection.parallel.EvaluatorPool` this is the
        pool's policy — every tenant of one pool is scored under the same
        sharding rules.
        """
        if self._evaluator_pool is not None:
            return self._evaluator_pool.policy
        return self._parallel_policy

    def shared_evaluator(self) -> "Optional[Union[ParallelEvaluator, PooledEvaluator]]":
        """The session-owned persistent evaluator, or ``None`` without a policy.

        Created lazily on first request; its worker pool forks lazily on the
        first candidate scan that clears the policy threshold, so merely
        configuring a policy costs nothing until parallelism actually pays.
        The evaluator stays valid across merges and channel swaps — it ships
        the engine's current generation to its workers on every dispatch —
        and lives until :meth:`close`.  A session built with a shared
        ``evaluator_pool`` instead attaches its engine to that pool and hands
        out the resulting :class:`PooledEvaluator` facade.
        """
        if self._evaluator is None:
            if self._evaluator_pool is not None:
                self._evaluator = self._evaluator_pool.attach(self._engine)
            elif self._parallel_policy is not None:
                self._evaluator = ParallelEvaluator(
                    self._engine, self._parallel_policy, persistent=True
                )
        return self._evaluator

    def close(self) -> None:
        """Release the persistent parallel runtime (idempotent).

        Terminates the worker pool and unlinks the shared-memory snapshot
        ring.  The session itself stays usable — selections simply run
        serially afterwards until a new parallel scan re-acquires the pool.
        """
        if self._evaluator is not None:
            self._evaluator.close()
            self._evaluator = None

    def __enter__(self) -> "RefinementSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- structure -------------------------------------------------------------------

    @property
    def engine(self) -> EntropyEngine:
        """The live engine; selectors score candidates against it directly."""
        return self._engine

    @property
    def channel(self) -> ChannelModel:
        """The channel model shared by selection and merging.

        With re-calibration enabled this is the *current* overlay; the model
        the session was constructed with stays available as the overlay's
        base.
        """
        return self._channel

    @property
    def recalibrates(self) -> bool:
        """Whether this session re-estimates channel accuracies as it merges."""
        return self._recalibrate

    def engine_for_interest(self, interest_ids: Sequence[str]) -> EntropyEngine:
        """The engine to score one query's candidates on.

        The session's own engine when it was built for exactly this interest
        set; otherwise a cached :meth:`EntropyEngine.interest_view` — shared
        support arrays and bit columns, per-query interest cells.  Views are
        snapshots of the current posterior and are rebuilt after each merge.
        """
        key = tuple(interest_ids)
        if key == self._interest_ids:
            return self._engine
        view = self._views.get(key)
        if view is None:
            view = self._engine.interest_view(key)
            self._views[key] = view
        return view

    @property
    def interest_ids(self) -> "tuple[str, ...]":
        """Facts of interest the session was built with (empty if none)."""
        return self._interest_ids

    @property
    def fact_ids(self) -> "tuple[str, ...]":
        """Ordered fact ids of the underlying distribution."""
        return self._initial.fact_ids

    @property
    def num_facts(self) -> int:
        return self._initial.num_facts

    @property
    def rounds_merged(self) -> int:
        """Number of answer sets merged into this session so far."""
        return self._rounds_merged

    # -- current posterior -----------------------------------------------------------

    @property
    def distribution(self) -> JointDistribution:
        """The current posterior, materialised on demand and cached until the
        next merge.  Support rows whose mass reached exactly zero are dropped
        from the materialised object (matching :func:`merge_answers`), while
        the session itself keeps them for row alignment."""
        if self._materialized is None:
            if self._engine.support_masks.ndim == 2:
                # Wide-fact engines hold packed uint64 bit planes; the packed
                # constructor keeps the same drop-zero/renormalise semantics.
                self._materialized = JointDistribution.from_packed_arrays(
                    self._initial.fact_ids,
                    self._engine.support_masks,
                    self._engine.probabilities,
                )
            else:
                self._materialized = JointDistribution.from_support_arrays(
                    self._initial.fact_ids,
                    self._engine.support_masks,
                    self._engine.probabilities,
                )
        return self._materialized

    def entropy(self) -> float:
        """Shannon entropy ``H(F)`` of the current posterior, from the arrays."""
        return entropy_bits(self._engine.probabilities)

    def utility(self) -> float:
        """PWS-quality ``Q(F) = −H(F)`` of the current posterior."""
        return -self.entropy()

    def marginal(self, fact_id: str) -> float:
        """Marginal truth probability of one fact (a cached-column dot product)."""
        return float(self._engine.weighted_bits(fact_id).sum())

    def marginals(self) -> Dict[str, float]:
        """Per-fact marginal truth probabilities of the current posterior."""
        return {fact_id: self.marginal(fact_id) for fact_id in self.fact_ids}

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Threshold the marginals into boolean labels (strictly greater wins)."""
        return {
            fact_id: probability > threshold
            for fact_id, probability in self.marginals().items()
        }

    # -- the select / merge cycle ----------------------------------------------------

    def select(
        self, selector: TaskSelector, k: int, exclude: Sequence[str] = ()
    ) -> SelectionResult:
        """Select up to ``k`` tasks against the session's cached state."""
        return selector.select_with_session(self, k, exclude=exclude)

    def select_queries(
        self,
        queries: Sequence[Query],
        k: int,
        exclude: Sequence[str] = (),
    ) -> List[SelectionResult]:
        """Batched multi-query selection: one task set per query, shared caches.

        Every query is scored through the session (so interest views share
        this entity's cached per-fact bit columns and probability snapshot)
        rather than through one fresh engine per query.  Results are aligned
        with ``queries`` and identical to running each query's
        :class:`~repro.core.selection.query_greedy.QueryGreedySelector`
        against the materialised posterior on its own engine.
        """
        # Imported here: query_greedy imports the selection base modules this
        # module also feeds, and the registry wires both — a lazy import keeps
        # the package import order immaterial.
        from repro.core.selection.query_greedy import QueryGreedySelector

        return [
            QueryGreedySelector(query).select_with_session(self, k, exclude=exclude)
            for query in queries
        ]

    def merge(self, answers: AnswerSet) -> None:
        """Fold one round's answers into the posterior (Equation 3).

        A pure array update: the per-row likelihoods are computed against the
        session's fixed support and multiplied into the engine's probability
        vector.  Invalidates the materialised posterior and every interest
        view (they snapshot the pre-merge probabilities).  When
        re-calibration is on, each answer's agreement with the *pre-merge*
        posterior is recorded first — prequential scoring: the answer is
        judged by the belief state that existed before it was folded in, so
        it can never endorse itself — and the per-fact accuracy estimates
        are refreshed afterwards.
        """
        if self._recalibrate:
            self._observe_agreement(answers)
        weights = answer_likelihood_array(self._initial, answers, self._channel)
        self._engine.reweight(weights)
        self._materialized = None
        self._views.clear()
        self._rounds_merged += 1
        if self._recalibrate:
            self._apply_recalibration()

    def restore_rounds_merged(self, rounds: int) -> None:
        """Declare that ``rounds`` merges happened before this session object.

        Used when a session is rebuilt from a durable snapshot: the snapshot
        stores the *posterior* (which becomes this session's prior), so the
        arrays already reflect those merges — only the counter needs to catch
        up for ``rounds_merged`` reporting to survive a restore.  Refuses to
        run once this object has merged anything itself, and refuses to move
        the counter backwards.
        """
        if self._rounds_merged > rounds:
            raise SelectionError(
                f"cannot restore rounds_merged to {rounds}: this session has "
                f"already merged {self._rounds_merged} rounds"
            )
        if rounds < 0:
            raise SelectionError(f"rounds_merged cannot be negative: {rounds}")
        self._rounds_merged = rounds

    # -- adaptive channel re-calibration ----------------------------------------------

    def _observe_agreement(self, answers: AnswerSet) -> None:
        """Accumulate how strongly the current posterior predicts each answer.

        Called *before* the answers are merged: the probability the pre-merge
        posterior assigns to the answered value is a soft agreement count.
        Answers the accumulated evidence keeps predicting push the fact's
        channel estimate up, answers it keeps contradicting push the estimate
        toward the coin-flip floor — and an answer about a fact the posterior
        is agnostic on (marginal 0.5) contributes no signal either way.
        """
        for fact_id in answers:
            marginal = self.marginal(fact_id)
            agreement = marginal if answers[fact_id] else 1.0 - marginal
            self._agreement_mass[fact_id] = (
                self._agreement_mass.get(fact_id, 0.0) + agreement
            )
            self._agreement_count[fact_id] = self._agreement_count.get(fact_id, 0) + 1

    def _apply_recalibration(self) -> None:
        """Swap a freshly estimated channel overlay into selection and merging."""
        overrides: Dict[str, float] = {}
        for fact_id, count in self._agreement_count.items():
            prior = self._base_channel.accuracy_for(fact_id)
            estimate = (prior * self._smoothing + self._agreement_mass[fact_id]) / (
                self._smoothing + count
            )
            # Definition 2 bounds channels to [0.5, 1]: a crowd that the
            # posterior overrules more often than not is modelled as random,
            # not adversarial.
            overrides[fact_id] = min(1.0, max(0.5, estimate))
        self._channel = RecalibratedChannelModel(self._base_channel, overrides)
        self._engine.set_channel(self._channel)


class SessionPool:
    """A keyed pool of refinement sessions sharing one lifecycle.

    The batched-experiment consumer: one session per entity (book, flight),
    built once before the first global pass and reused — warm bit columns,
    warm partitions — for every subsequent pass.  Aggregate quality metrics
    (summed utility, pooled predicted labels) are computed straight from the
    sessions' cached arrays.

    Sessions added with a parallel policy own persistent worker pools; the
    pool-level :meth:`close` (or the context manager) releases all of them in
    one call, so a multi-entity experiment cannot leak worker processes even
    when one entity's selection raises.
    """

    def __init__(self) -> None:
        self._sessions: Dict[str, RefinementSession] = {}

    def add(
        self,
        key: str,
        distribution: JointDistribution,
        channel: ChannelModel,
        interest_ids: Optional[Sequence[str]] = None,
        recalibrate: object = _UNSET,
        parallel: Optional[ParallelPolicy] = None,
        runtime: "Optional[RuntimeOptions]" = None,
        evaluator_pool: Optional[EvaluatorPool] = None,
    ) -> RefinementSession:
        """Create, register and return the session for ``key``.

        ``parallel`` gives the new session its own persistent evaluator (one
        long-lived worker pool per entity — each pool forks lazily, and only
        for scans that clear the policy threshold, so small entities never
        pay for it); ``evaluator_pool`` instead multiplexes the session onto
        a shared pool (how a multi-tenant server keeps the worker count
        independent of the session count).  ``runtime`` carries
        ``recalibrate`` (and, with ``persistent_pool``, the policy) in typed
        form; the loose ``recalibrate`` keyword is deprecated.
        """
        if key in self._sessions:
            raise SelectionError(f"session pool already contains key {key!r}")
        session = RefinementSession(
            distribution,
            channel,
            interest_ids=interest_ids,
            recalibrate=recalibrate,
            parallel=parallel,
            runtime=runtime,
            evaluator_pool=evaluator_pool,
        )
        self._sessions[key] = session
        return session

    def remove(self, key: str) -> RefinementSession:
        """Evict one session, releasing its parallel runtime, and return it.

        The one-session counterpart of :meth:`close`: the session's
        persistent evaluator (dedicated pool or shared-pool slot) is released
        immediately instead of lingering until the whole pool shuts down — a
        long-running server evicting finished tenants needs exactly this, and
        without it a removed entity's worker processes would leak until
        :meth:`close`.  The evicted session itself stays usable (serially)
        if the caller still holds a reference.
        """
        try:
            session = self._sessions.pop(key)
        except KeyError:
            raise SelectionError(f"session pool has no key {key!r}") from None
        session.close()
        return session

    def close(self) -> None:
        """Release every session's persistent parallel runtime (idempotent)."""
        for session in self._sessions.values():
            session.close()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def select_queries(
        self,
        key: str,
        queries: Sequence[Query],
        k: int,
        exclude: Sequence[str] = (),
    ) -> List[SelectionResult]:
        """Batched multi-query selection against one entity's session."""
        return self[key].select_queries(queries, k, exclude=exclude)

    def __getitem__(self, key: str) -> RefinementSession:
        try:
            return self._sessions[key]
        except KeyError:
            raise SelectionError(f"session pool has no key {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self._sessions

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self) -> Iterator[RefinementSession]:
        return iter(self._sessions.values())

    def keys(self) -> "tuple[str, ...]":
        return tuple(self._sessions)

    # -- aggregates ------------------------------------------------------------------

    def total_utility(self) -> float:
        """Summed PWS-quality over all sessions (the experiment curves' y-axis)."""
        return float(sum(session.utility() for session in self._sessions.values()))

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Pooled per-fact labels across all sessions."""
        labels: Dict[str, bool] = {}
        for session in self._sessions.values():
            labels.update(session.predicted_labels(threshold))
        return labels
