"""Property-based equivalence: vectorized/incremental engine vs. reference paths.

The contract of this PR's refactor is that every quantity the selectors
consume — answer distributions, answer-set entropies, greedy selections —
is *identical* (to within 1e-9) whether computed by the seed's pure-Python
dict arithmetic (:mod:`repro.core.selection.reference`) or by the vectorized
incremental :class:`~repro.core.selection.engine.EntropyEngine`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.entropy import entropy_bits
from repro.core.query import Query
from repro.core.selection import (
    GreedySelector,
    LazyGreedySelector,
    QueryGreedySelector,
    ReferenceGreedySelector,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.reference import (
    reference_answer_distribution,
    reference_task_entropy,
)


@st.composite
def coarse_distributions(draw, max_facts=5):
    """Random sparse joints with coarse rational masses.

    Integer masses keep mathematically-distinct entropies well separated
    (floating-point near-ties below the selector tie tolerance cannot arise
    by accident), while exact ties — duplicate support columns — remain
    reachable and must break identically in every implementation.
    """
    n = draw(st.integers(min_value=2, max_value=max_facts))
    fact_ids = tuple(f"f{i}" for i in range(n))
    size = 1 << n
    support = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=2,
            max_size=size,
            unique=True,
        )
    )
    masses = draw(
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=len(support),
            max_size=len(support),
        )
    )
    return JointDistribution(fact_ids, dict(zip(support, map(float, masses))))


accuracies = st.sampled_from([0.5, 0.6, 0.75, 0.8, 0.9, 1.0])


class TestEntropyEquivalence:
    @given(coarse_distributions(), accuracies, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_answer_distribution_matches_reference(self, dist, accuracy, num_tasks):
        crowd = CrowdModel(accuracy)
        task_ids = list(dist.fact_ids[:num_tasks])
        reference = reference_answer_distribution(crowd, dist, task_ids)
        vectorized = crowd.answer_distribution(dist, task_ids)
        reference_total = sum(reference.values())
        for mask, mass in reference.items():
            assert vectorized.probability(mask) == pytest.approx(
                mass / reference_total, abs=1e-9
            )

    @given(coarse_distributions(), accuracies, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_task_entropy_matches_reference(self, dist, accuracy, num_tasks):
        crowd = CrowdModel(accuracy)
        task_ids = list(dist.fact_ids[: min(num_tasks, dist.num_facts)])
        assert crowd.task_entropy(dist, task_ids) == pytest.approx(
            reference_task_entropy(crowd, dist, task_ids), abs=1e-9
        )

    @given(coarse_distributions(), accuracies)
    @settings(max_examples=60, deadline=None)
    def test_incremental_extension_matches_from_scratch(self, dist, accuracy):
        """Growing a state one task at a time equals one-shot evaluation."""
        crowd = CrowdModel(accuracy)
        engine = EntropyEngine(dist, crowd)
        state = engine.initial_state()
        selected = []
        for fact_id in dist.fact_ids[:4]:
            incremental = engine.extension_entropy(state, fact_id)
            one_shot = engine.task_entropy(selected + [fact_id])
            reference = reference_task_entropy(crowd, dist, selected + [fact_id])
            assert incremental == pytest.approx(one_shot, abs=1e-9)
            assert incremental == pytest.approx(reference, abs=1e-9)
            state = engine.extend(state, fact_id)
            selected.append(fact_id)
            assert state.entropy == pytest.approx(reference, abs=1e-9)


class TestSelectorEquivalence:
    @given(coarse_distributions(), accuracies, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_engine_greedy_matches_reference_greedy(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        reference = ReferenceGreedySelector().select(dist, crowd, k)
        engine = GreedySelector().select(dist, crowd, k)
        assert engine.task_ids == reference.task_ids
        assert engine.objective == pytest.approx(reference.objective, abs=1e-9)

    @given(coarse_distributions(), accuracies, st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_lazy_greedy_matches_reference_greedy(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        reference = ReferenceGreedySelector().select(dist, crowd, k)
        lazy = LazyGreedySelector().select(dist, crowd, k)
        assert lazy.task_ids == reference.task_ids
        assert lazy.objective == pytest.approx(reference.objective, abs=1e-9)

    @given(coarse_distributions(), accuracies, st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_lazy_never_evaluates_more_than_plain(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        plain = GreedySelector().select(dist, crowd, k)
        lazy = LazyGreedySelector().select(dist, crowd, k)
        assert lazy.stats.candidate_evaluations <= plain.stats.candidate_evaluations


def _pure_python_joint_entropy(crowd, distribution, interest_ids, task_ids):
    """Seed implementation of ``H(I, T)``: dict loops over grouped projections."""
    from repro.core.assignment import popcount, project_mask
    from repro.core.distribution import entropy_of

    interest_positions = distribution.positions(interest_ids)
    task_positions = distribution.positions(task_ids)
    k = len(task_positions)
    accuracy = crowd.accuracy
    error = crowd.error_rate

    grouped = {}
    for mask, probability in distribution.items():
        key = (project_mask(mask, interest_positions), project_mask(mask, task_positions))
        grouped[key] = grouped.get(key, 0.0) + probability

    joint = {}
    for (interest_sub, task_sub), probability in grouped.items():
        for answer_mask in range(1 << k):
            diff = popcount(answer_mask ^ task_sub)
            mass = probability * (accuracy ** (k - diff)) * (error ** diff)
            if mass <= 0.0:
                continue
            key = (interest_sub, answer_mask)
            joint[key] = joint.get(key, 0.0) + mass
    return entropy_of(joint.values())


class TestQueryEquivalence:
    @given(coarse_distributions(max_facts=4), accuracies, st.integers(min_value=1, max_value=2))
    @settings(max_examples=40, deadline=None)
    def test_joint_entropy_matches_pure_python(self, dist, accuracy, num_tasks):
        crowd = CrowdModel(accuracy)
        interest = list(dist.fact_ids[:2])
        tasks = list(dist.fact_ids[-num_tasks:])
        assert crowd.joint_fact_answer_entropy(dist, interest, tasks) == pytest.approx(
            _pure_python_joint_entropy(crowd, dist, interest, tasks), abs=1e-9
        )

    @given(coarse_distributions(max_facts=4), accuracies, st.integers(min_value=1, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_query_greedy_objective_matches_definition(self, dist, accuracy, k):
        crowd = CrowdModel(accuracy)
        query = Query.of(list(dist.fact_ids[:2]))
        selector = QueryGreedySelector(query)
        result = selector.select(dist, crowd, k)
        if result.task_ids:
            expected = crowd.task_entropy(dist, result.task_ids) - crowd.joint_fact_answer_entropy(
                dist, query.fact_ids, result.task_ids
            )
        else:
            expected = -dist.marginalize(query.fact_ids).entropy()
        assert result.objective == pytest.approx(expected, abs=1e-9)


class TestEngineInternals:
    def test_interest_cells_collapse_to_marginal_entropy(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6, "c": 0.5})
        crowd = CrowdModel(0.8)
        engine = EntropyEngine(dist, crowd, interest_ids=["a", "b"])
        state = engine.initial_state()
        assert state.joint_entropy == pytest.approx(
            dist.marginalize(["a", "b"]).entropy()
        )
        assert state.entropy == 0.0

    def test_evaluation_counter_increments(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6})
        engine = EntropyEngine(dist, CrowdModel(0.8))
        state = engine.initial_state()
        engine.extension_entropy(state, "a")
        engine.task_entropy(["a", "b"])
        assert engine.evaluations == 2

    def test_state_table_masses_sum_to_one(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6, "c": 0.5})
        engine = EntropyEngine(dist, CrowdModel(0.7))
        state = engine.initial_state()
        for fact_id in ("b", "c"):
            state = engine.extend(state, fact_id)
        assert float(state.table.sum()) == pytest.approx(1.0)
        assert state.entropy == pytest.approx(entropy_bits(state.table.reshape(-1)))
