"""Property-based tests for the Bayesian merging invariants (Equation 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.merging import answer_probability, merge_answers


@st.composite
def distributions_and_answers(draw, max_facts=4):
    """A random sparse joint distribution plus a random answer set over it."""
    n = draw(st.integers(min_value=1, max_value=max_facts))
    fact_ids = tuple(f"f{i}" for i in range(n))
    size = 1 << n
    support = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=1,
            max_size=size,
            unique=True,
        )
    )
    masses = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
            min_size=len(support),
            max_size=len(support),
        )
    )
    distribution = JointDistribution(fact_ids, dict(zip(support, masses)))
    num_answered = draw(st.integers(min_value=1, max_value=n))
    answered = draw(
        st.lists(
            st.sampled_from(fact_ids),
            min_size=num_answered,
            max_size=num_answered,
            unique=True,
        )
    )
    judgments = draw(
        st.lists(st.booleans(), min_size=len(answered), max_size=len(answered))
    )
    answers = AnswerSet.from_mapping(dict(zip(answered, judgments)))
    return distribution, answers


accuracies = st.sampled_from([0.55, 0.7, 0.8, 0.9, 0.99, 1.0])


class TestMergingInvariants:
    @given(distributions_and_answers(), accuracies)
    @settings(max_examples=100, deadline=None)
    def test_posterior_is_normalised(self, data, accuracy):
        distribution, answers = data
        crowd = CrowdModel(accuracy)
        if accuracy == 1.0 and answer_probability(distribution, answers, crowd) == 0.0:
            return  # impossible evidence under a perfect crowd
        posterior = merge_answers(distribution, answers, crowd)
        assert sum(p for _, p in posterior.items()) == pytest.approx(1.0)

    @given(distributions_and_answers())
    @settings(max_examples=100, deadline=None)
    def test_uninformative_crowd_leaves_distribution_unchanged(self, data):
        distribution, answers = data
        crowd = CrowdModel(0.5)
        posterior = merge_answers(distribution, answers, crowd)
        assert posterior.allclose(distribution, tolerance=1e-9)

    @given(distributions_and_answers(), accuracies)
    @settings(max_examples=100, deadline=None)
    def test_single_answer_moves_that_facts_marginal_towards_the_judgment(
        self, data, accuracy
    ):
        """Merging ONE answer shifts that fact's marginal in the answer's direction.

        (With several answers at once the claim is false in general: other
        facts' answers can propagate through correlations and dominate.)
        """
        distribution, answers = data
        fact_id = answers.fact_ids[0]
        judgment = answers[fact_id]
        single = AnswerSet.from_mapping({fact_id: judgment})
        crowd = CrowdModel(accuracy)
        if accuracy == 1.0 and answer_probability(distribution, single, crowd) == 0.0:
            return
        posterior = merge_answers(distribution, single, crowd)
        prior_marginal = distribution.marginal(fact_id)
        posterior_marginal = posterior.marginal(fact_id)
        if judgment:
            assert posterior_marginal >= prior_marginal - 1e-9
        else:
            assert posterior_marginal <= prior_marginal + 1e-9

    @given(distributions_and_answers(), st.sampled_from([0.6, 0.75, 0.9]))
    @settings(max_examples=80, deadline=None)
    def test_law_of_total_probability_over_single_task(self, data, accuracy):
        """Averaging the posterior over both possible answers recovers the prior."""
        distribution, answers = data
        fact_id = answers.fact_ids[0]
        crowd = CrowdModel(accuracy)
        yes = AnswerSet.from_mapping({fact_id: True})
        no = AnswerSet.from_mapping({fact_id: False})
        p_yes = answer_probability(distribution, yes, crowd)
        p_no = answer_probability(distribution, no, crowd)
        assert p_yes + p_no == pytest.approx(1.0)
        posterior_yes = merge_answers(distribution, yes, crowd)
        posterior_no = merge_answers(distribution, no, crowd)
        for mask, prior_probability in distribution.items():
            mixed = p_yes * posterior_yes.probability(mask) + p_no * posterior_no.probability(mask)
            assert mixed == pytest.approx(prior_probability, abs=1e-9)

    @given(distributions_and_answers(), st.sampled_from([0.6, 0.8, 0.95]))
    @settings(max_examples=80, deadline=None)
    def test_merge_order_does_not_matter(self, data, accuracy):
        distribution, answers = data
        crowd = CrowdModel(accuracy)
        judgments = list(answers.judgments().items())
        if len(judgments) < 2:
            return
        forward = distribution
        for fact_id, judgment in judgments:
            forward = merge_answers(forward, AnswerSet.from_mapping({fact_id: judgment}), crowd)
        backward = distribution
        for fact_id, judgment in reversed(judgments):
            backward = merge_answers(backward, AnswerSet.from_mapping({fact_id: judgment}), crowd)
        assert forward.allclose(backward, tolerance=1e-9)

    @given(distributions_and_answers(), st.sampled_from([0.6, 0.8, 0.95]))
    @settings(max_examples=80, deadline=None)
    def test_support_never_grows(self, data, accuracy):
        distribution, answers = data
        crowd = CrowdModel(accuracy)
        posterior = merge_answers(distribution, answers, crowd)
        assert posterior.support_size <= distribution.support_size
        assert set(posterior.support()) <= set(distribution.support())
