"""Qualitative shape tests for the paper's empirical claims.

These tests assert the *relationships* the paper's figures demonstrate
(greedy ≈ OPT, both beat Random; higher Pc gives higher utility; smaller k
gives better quality per unit budget for the informed selector), on a scaled-
down version of the evaluation so they run in seconds.
"""

import pytest

from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.evaluation.experiment import (
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.fusion.crh import ModifiedCRH


@pytest.fixture(scope="module")
def problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=15, num_sources=14, seed=202)
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


def final_quality(problems, selector, k=2, budget=12, accuracy=0.8, seed=0):
    config = ExperimentConfig(
        selector=selector, k=k, budget_per_entity=budget,
        worker_accuracy=accuracy, seed=seed,
    )
    result = run_quality_experiment(problems, config)
    return result


class TestFigure2Shape:
    """Approx ≈ OPT, both above Random (on small per-book fact sets)."""

    def test_greedy_close_to_opt(self, problems):
        greedy = final_quality(problems, "greedy", seed=1)
        opt = final_quality(problems, "opt", seed=1)
        assert greedy.final_point.utility >= opt.final_point.utility - 3.0
        assert abs(greedy.final_point.f1 - opt.final_point.f1) < 0.08

    def test_greedy_beats_random_on_utility(self, problems):
        greedy = final_quality(problems, "greedy_prune_pre", seed=2)
        random_sel = final_quality(problems, "random", seed=2)
        assert greedy.final_point.utility > random_sel.final_point.utility

    def test_both_refinements_improve_over_prior(self, problems):
        for selector in ("greedy_prune_pre", "random"):
            result = final_quality(problems, selector, seed=3)
            assert result.final_point.utility > result.initial_point.utility


class TestFigure4Shape:
    """Higher crowd accuracy yields higher utility for the informed selector."""

    def test_utility_ordering_by_accuracy(self, problems):
        low = final_quality(problems, "greedy_prune_pre", accuracy=0.7, seed=4)
        high = final_quality(problems, "greedy_prune_pre", accuracy=0.9, seed=4)
        assert high.final_point.utility > low.final_point.utility

    def test_f1_not_worse_with_more_accurate_crowd(self, problems):
        low = final_quality(problems, "greedy_prune_pre", accuracy=0.7, seed=5)
        high = final_quality(problems, "greedy_prune_pre", accuracy=0.95, seed=5)
        assert high.final_point.f1 >= low.final_point.f1 - 0.02


class TestSelectionEfficiencyShape:
    """Table V shape: preprocessing accelerates greedy, OPT blows up with k."""

    def test_preprocessed_greedy_keeps_pace_with_plain_on_larger_books(self):
        import numpy as np

        from repro.core.crowd import CrowdModel
        from repro.core.selection import get_selector
        from repro.core.distribution import JointDistribution

        rng = np.random.default_rng(0)
        marginals = {f"f{i}": float(rng.uniform(0.3, 0.7)) for i in range(14)}
        dist = JointDistribution.independent(
            {k: v for k, v in list(marginals.items())[:11]}
        )
        crowd = CrowdModel(0.8)
        # Since the shared vectorized engine, *every* greedy variant runs at
        # "preprocessed" speed (see repro.core.selection.preprocessing), so
        # the Table-V shape to preserve is "the accelerated labels never cost
        # extra".  A single-shot strict inequality flips on scheduler jitter
        # (both paths take ~1 ms and pruning finds nothing to cut on this
        # workload), so compare interleaved best-of timings with a margin.
        plain_best = float("inf")
        fast_best = float("inf")
        for _ in range(7):
            plain = get_selector("greedy").select(dist, crowd, 5)
            fast = get_selector("greedy_prune_pre").select(dist, crowd, 5)
            assert fast.task_ids == plain.task_ids
            plain_best = min(plain_best, plain.stats.elapsed_seconds)
            fast_best = min(fast_best, fast.stats.elapsed_seconds)
        assert fast_best < plain_best * 1.5

    def test_opt_cost_grows_much_faster_than_greedy(self):
        from repro.core.crowd import CrowdModel
        from repro.core.selection import get_selector
        from repro.core.distribution import JointDistribution

        dist = JointDistribution.independent({f"f{i}": 0.4 + 0.02 * i for i in range(10)})
        crowd = CrowdModel(0.8)
        opt_1 = get_selector("opt").select(dist, crowd, 1).stats.candidate_evaluations
        opt_3 = get_selector("opt").select(dist, crowd, 3).stats.candidate_evaluations
        greedy_1 = get_selector("greedy").select(dist, crowd, 1).stats.candidate_evaluations
        greedy_3 = get_selector("greedy").select(dist, crowd, 3).stats.candidate_evaluations
        assert opt_3 / opt_1 > 10
        assert greedy_3 / greedy_1 < 4
