"""JSON-lines TCP front end for the refinement service.

One request per line, one response per line — the simplest transport that
exercises the full service surface without any dependency beyond the
standard library.  A request is ``{"op": ..., ...operands}``; a response is
``{"ok": true, "result": {...}}`` or ``{"ok": false, "error": {"code",
"status", "message", "retry_safe"}}`` with the typed error codes from
:mod:`repro.service.api`.  Connections are independent: any client may
address any session id, so a tenant can reconnect without losing state.

Requests may carry two optional resilience fields: ``deadline_ms`` (a
per-request budget the service enforces at its retry-safe points) and
``retry`` (the client's attempt counter for a resent request, counted into
the service's ``client_retries`` metric so operators see retry storms from
the server side).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional

from repro.service.api import (
    MAX_LINE_BYTES,
    ServiceError,
    ValidationFailedError,
    decode_channel,
    decode_distribution,
    error_payload,
)
from repro.service.server import RefinementService
from repro.testing import faults


class TransportError(ServiceError):
    """The connection failed mid-conversation, with no response decoded.

    Wraps the bare stream failures (``ConnectionResetError``,
    ``IncompleteReadError``, an EOF in place of a response line) in the
    service's typed hierarchy, carrying the session id the request addressed
    so callers can log and recover without string-parsing OS errors.

    **Not retry-safe**: the connection died after the request may already
    have reached the server, so a state-changing request (a merge) may have
    been applied.  Clients may transparently retry *idempotent reads* after
    reconnecting; anything else must surface to the caller.
    """

    code = "transport_error"
    status = 503
    retry_safe = False

    def __init__(self, message: str, session_id: Optional[str] = None):
        super().__init__(message)
        self.session_id = session_id


def _deadline_ms(request: Mapping[str, Any]) -> Optional[int]:
    value = request.get("deadline_ms")
    return None if value is None else int(value)


async def _dispatch(service: RefinementService, request: Mapping[str, Any]) -> Any:
    """Route one decoded request to the service and return its payload."""
    op = request.get("op")
    if int(request.get("retry", 0)) > 0:
        service._metrics.client_retries += 1
    if op == "create_session":
        created = await service.create_session(
            decode_distribution(request.get("distribution", {})),
            decode_channel(request.get("channel", {})),
            budget=int(request.get("budget", 0)),
            selector=str(request.get("selector", "greedy_prune_pre")),
        )
        return created.to_payload()
    if op == "post_answers":
        report = await service.post_answers(
            str(request.get("session_id")),
            request.get("answers", {}),
            deadline_ms=_deadline_ms(request),
        )
        return report.to_payload()
    if op == "select_next":
        reply = await service.select_next(
            str(request.get("session_id")),
            batch=int(request.get("batch", 1)),
            deadline_ms=_deadline_ms(request),
        )
        return reply.to_payload()
    if op == "get_posterior":
        view = await service.get_posterior(
            str(request.get("session_id")), deadline_ms=_deadline_ms(request)
        )
        return view.to_payload()
    if op == "close_session":
        closed = await service.close_session(str(request.get("session_id")))
        return closed.to_payload()
    if op == "metrics":
        return service.metrics()
    if op == "ping":
        return {"pong": True, "sessions_live": service.sessions_live}
    raise ValidationFailedError(f"unknown op {op!r}")


async def _handle_connection(
    service: RefinementService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                response = {
                    "ok": False,
                    "error": error_payload(
                        ValidationFailedError("request line too long")
                    ),
                }
                writer.write((json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
                break
            if not line:
                break
            response: Dict[str, Any]
            try:
                request = json.loads(line.decode("utf-8"))
                if not isinstance(request, dict):
                    raise ValidationFailedError("a request must be a JSON object")
                response = {"ok": True, "result": await _dispatch(service, request)}
            except ServiceError as error:
                response = {"ok": False, "error": error_payload(error)}
            except (json.JSONDecodeError, UnicodeDecodeError, TypeError, ValueError) as error:
                response = {
                    "ok": False,
                    "error": error_payload(
                        ValidationFailedError(f"malformed request: {error}")
                    ),
                }
            payload = (json.dumps(response) + "\n").encode("utf-8")
            if faults.fire("transport_response") == "drop":
                # Injected mid-response connection drop: ship a torn prefix
                # and abort the transport (no FIN handshake), which is what a
                # crashed server or cut network looks like to the client.
                writer.write(payload[: max(1, len(payload) // 2)])
                await writer.drain()
                writer.transport.abort()
                return
            writer.write(payload)
            await writer.drain()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels in-flight handlers while they drain;
            # the connection is already closed, so end the task quietly.
            pass


async def serve(
    service: RefinementService, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Start the JSON-lines listener; ``port=0`` picks a free port.

    The caller owns both lifetimes: close the returned server to stop
    accepting connections, then ``await service.shutdown()`` to drain
    sessions and reclaim the shared worker pools.
    """
    return await asyncio.start_server(
        lambda reader, writer: _handle_connection(service, reader, writer),
        host=host,
        port=port,
        limit=MAX_LINE_BYTES,
    )


def bound_port(server: asyncio.AbstractServer) -> int:
    """The port a ``serve(..., port=0)`` listener actually bound."""
    return server.sockets[0].getsockname()[1]
