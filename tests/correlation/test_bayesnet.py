"""Unit tests for the discrete Bayesian network substrate."""

import pytest

from repro.correlation.bayesnet import BayesianNetwork, BinaryNode
from repro.exceptions import InvalidDistributionError


def obama_network():
    """The paper's motivating correlation: born-1961 links married-at-31 and married-1992."""
    born = BinaryNode.root("born_1961", 0.9)
    married_31 = BinaryNode(
        "married_at_31", parents=("born_1961",), cpt={(True,): 0.8, (False,): 0.3}
    )
    married_92 = BinaryNode(
        "married_1992",
        parents=("born_1961", "married_at_31"),
        cpt={
            (True, True): 0.95,
            (True, False): 0.2,
            (False, True): 0.4,
            (False, False): 0.1,
        },
    )
    return BayesianNetwork([born, married_31, married_92])


class TestBinaryNode:
    def test_root_constructor(self):
        node = BinaryNode.root("a", 0.7)
        assert node.cpt[()] == 0.7

    def test_wrong_cpt_size_rejected(self):
        with pytest.raises(InvalidDistributionError):
            BinaryNode("a", parents=("b",), cpt={(): 0.5})

    def test_cpt_key_length_mismatch_rejected(self):
        with pytest.raises(InvalidDistributionError):
            BinaryNode("a", parents=("b",), cpt={(True, False): 0.5, (False,): 0.5})

    def test_cpt_probability_out_of_range_rejected(self):
        with pytest.raises(InvalidDistributionError):
            BinaryNode("a", parents=(), cpt={(): 1.4})


class TestBayesianNetwork:
    def test_duplicate_nodes_rejected(self):
        with pytest.raises(InvalidDistributionError):
            BayesianNetwork([BinaryNode.root("a", 0.5), BinaryNode.root("a", 0.4)])

    def test_unknown_parent_rejected(self):
        node = BinaryNode("a", parents=("ghost",), cpt={(True,): 0.5, (False,): 0.5})
        with pytest.raises(InvalidDistributionError):
            BayesianNetwork([node])

    def test_cycle_rejected(self):
        a = BinaryNode("a", parents=("b",), cpt={(True,): 0.5, (False,): 0.5})
        b = BinaryNode("b", parents=("a",), cpt={(True,): 0.5, (False,): 0.5})
        with pytest.raises(InvalidDistributionError):
            BayesianNetwork([a, b])

    def test_empty_network_rejected(self):
        with pytest.raises(InvalidDistributionError):
            BayesianNetwork([])

    def test_topological_order_respects_edges(self):
        network = obama_network()
        order = network.topological_order
        assert order.index("born_1961") < order.index("married_at_31")
        assert order.index("married_at_31") < order.index("married_1992")

    def test_assignment_probability_chain_rule(self):
        network = obama_network()
        probability = network.assignment_probability(
            {"born_1961": True, "married_at_31": True, "married_1992": True}
        )
        assert probability == pytest.approx(0.9 * 0.8 * 0.95)

    def test_joint_distribution_sums_to_one(self):
        joint = obama_network().to_joint_distribution()
        assert sum(p for _, p in joint.items()) == pytest.approx(1.0)
        assert joint.num_facts == 3

    def test_joint_distribution_marginal_matches_root_prior(self):
        joint = obama_network().to_joint_distribution()
        assert joint.marginal("born_1961") == pytest.approx(0.9)

    def test_correlation_present_in_joint(self):
        """The paper's claim: Pr(married_1992 | married_at_31) should be boosted."""
        joint = obama_network().to_joint_distribution()
        p_given_married_31 = joint.condition({"married_at_31": True}).marginal("married_1992")
        p_given_not = joint.condition({"married_at_31": False}).marginal("married_1992")
        assert p_given_married_31 > p_given_not

    def test_sampling_matches_marginals(self):
        network = obama_network()
        samples = network.sample_assignments(4000, seed=1)
        frequency = sum(sample["born_1961"] for sample in samples) / len(samples)
        assert frequency == pytest.approx(0.9, abs=0.03)

    def test_sampling_invalid_count_rejected(self):
        with pytest.raises(InvalidDistributionError):
            obama_network().sample_assignments(0)

    def test_unknown_node_lookup_rejected(self):
        with pytest.raises(InvalidDistributionError):
            obama_network().node("ghost")

    def test_materialisation_guard_for_large_networks(self):
        nodes = [BinaryNode.root(f"n{i}", 0.5) for i in range(21)]
        with pytest.raises(InvalidDistributionError):
            BayesianNetwork(nodes).to_joint_distribution()
