"""Multi-engine multiplexing on one shared persistent worker pool.

An :class:`EvaluatorPool` lets many sessions share a single fork pool: each
attach gets its own snapshot ring and engine id, dispatch headers carry the
engine id so workers sync the right inherited state, and a tenant joining
after the fork marks the pool stale so the next dispatch re-forks exactly
once.  The contract under test: every tenant's selections stay bit-identical
to a serial session fed the same answers, no matter how tenants interleave,
and worker processes never outlive the last attached engine.
"""

import multiprocessing
import threading

import pytest

from repro.core.crowd import CrowdModel
from repro.core.runtime import RuntimeOptions
from repro.core.selection import (
    GreedySelector,
    ParallelPolicy,
    RefinementSession,
    SessionPool,
)
from repro.core.selection.parallel import EvaluatorPool
from repro.exceptions import SelectionError

from tests.core.selection.test_persistent_pool import (
    FORCE_PARALLEL,
    assert_histories_match,
    dense_distribution,
    heterogeneous_channel,
    run_rounds,
    scripted_answers,
)

pytestmark = pytest.mark.parallel

POLICY = ParallelPolicy(workers=2, parallel_threshold=FORCE_PARALLEL)


def interleaved_rounds(sessions, rounds=3, k=3):
    """Round-robin the tenants: round r of every session before round r+1."""
    histories = [[] for _ in sessions]
    for round_index in range(rounds):
        for tenant, session in enumerate(sessions):
            result = session.select(GreedySelector(), k)
            histories[tenant].append((result.task_ids, result.objective, result.stats))
            session.merge(scripted_answers(result.task_ids, round_index + tenant))
    return histories


class TestMultiplexedEquivalence:
    def test_two_tenants_match_their_serial_twins(self):
        priors = [dense_distribution(6, 40, seed=seed) for seed in (3, 4)]
        channels = [
            CrowdModel(0.8),
            heterogeneous_channel(priors[1].fact_ids),
        ]
        serial = interleaved_rounds(
            [RefinementSession(p, c) for p, c in zip(priors, channels)]
        )
        with EvaluatorPool(POLICY) as pool:
            sessions = [
                RefinementSession(p, c, evaluator_pool=pool)
                for p, c in zip(priors, channels)
            ]
            shared = interleaved_rounds(sessions)
            for session in sessions:
                session.close()
        for tenant in range(2):
            assert_histories_match(serial[tenant], shared[tenant])

    def test_recalibrating_tenant_matches_serial(self):
        # Re-calibration swaps the channel mid-run; the dispatch header must
        # replay the swap into the inherited worker engines.
        prior = dense_distribution(6, 40, seed=5)
        channel = heterogeneous_channel(prior.fact_ids)
        runtime = RuntimeOptions(recalibrate=True)
        serial = run_rounds(
            RefinementSession(prior, channel, runtime=runtime), GreedySelector()
        )
        with EvaluatorPool(POLICY) as pool:
            session = RefinementSession(
                prior, channel, runtime=runtime, evaluator_pool=pool
            )
            shared = run_rounds(session, GreedySelector())
            session.close()
        assert_histories_match(serial, shared)


class TestConcurrentPools:
    def test_pools_forking_from_threads_stay_tenant_isolated(self):
        # A multi-pool service dispatches from several executor threads, so
        # two pools can hit their first fork concurrently.  The module-level
        # fork lock must keep the publish → fork → clear sequences atomic:
        # without it, one pool's workers can inherit the other's engine
        # registry under their own per-pool engine ids and score the wrong
        # tenant's posterior.
        priors = [dense_distribution(6, 40, seed=seed) for seed in (20, 21)]
        channels = [CrowdModel(0.8), heterogeneous_channel(priors[1].fact_ids)]
        serial = [
            run_rounds(RefinementSession(prior, channel), GreedySelector())
            for prior, channel in zip(priors, channels)
        ]
        pools = [EvaluatorPool(POLICY) for _ in range(2)]
        results = [None, None]
        errors = []
        barrier = threading.Barrier(2)

        def drive(tenant):
            try:
                session = RefinementSession(
                    priors[tenant], channels[tenant], evaluator_pool=pools[tenant]
                )
                barrier.wait(timeout=30)  # line both threads up at the first fork
                results[tenant] = run_rounds(session, GreedySelector())
                session.close()
            except Exception as error:
                errors.append(error)

        threads = [threading.Thread(target=drive, args=(t,)) for t in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        for pool in pools:
            pool.close()
        assert errors == []
        for tenant in range(2):
            assert_histories_match(serial[tenant], results[tenant])
        assert multiprocessing.active_children() == []


class TestPoolLifecycle:
    def test_late_joiner_reforks_exactly_once(self):
        priors = [dense_distribution(6, 40, seed=seed) for seed in (6, 7)]
        with EvaluatorPool(POLICY) as pool:
            first = RefinementSession(priors[0], CrowdModel(0.8), evaluator_pool=pool)
            run_rounds(first, GreedySelector(), rounds=1)
            assert pool.forked and pool.reforks == 0

            second = RefinementSession(priors[1], CrowdModel(0.8), evaluator_pool=pool)
            serial = run_rounds(
                RefinementSession(priors[1], CrowdModel(0.8)), GreedySelector(), rounds=2
            )
            shared = run_rounds(second, GreedySelector(), rounds=2)
            assert pool.reforks == 1
            assert_histories_match(serial, shared)
            first.close()
            second.close()

    def test_last_detach_terminates_the_workers(self):
        with EvaluatorPool(POLICY) as pool:
            sessions = [
                RefinementSession(
                    dense_distribution(6, 40, seed=8 + i),
                    CrowdModel(0.8),
                    evaluator_pool=pool,
                )
                for i in range(2)
            ]
            for session in sessions:
                run_rounds(session, GreedySelector(), rounds=1)
            assert pool.attached == 2
            sessions[0].close()
            assert pool.attached == 1 and pool.forked
            sessions[1].close()
            assert pool.attached == 0 and not pool.forked
        assert multiprocessing.active_children() == []

    def test_closed_pooled_evaluator_refuses_dispatch(self):
        with EvaluatorPool(POLICY) as pool:
            session = RefinementSession(
                dense_distribution(6, 40, seed=10), CrowdModel(0.8), evaluator_pool=pool
            )
            evaluator = session.shared_evaluator()
            run_rounds(session, GreedySelector(), rounds=1)
            session.close()
            with pytest.raises(SelectionError, match="closed"):
                evaluator.evaluate(None, list(range(4)))

    def test_session_pool_remove_releases_the_attachment(self):
        with EvaluatorPool(POLICY) as shared_pool:
            with SessionPool() as sessions:
                for key in ("a", "b"):
                    session = sessions.add(
                        key,
                        dense_distribution(6, 40, seed=11),
                        CrowdModel(0.8),
                        evaluator_pool=shared_pool,
                    )
                    run_rounds(session, GreedySelector(), rounds=1)
                assert shared_pool.attached == 2
                sessions.remove("a")
                assert shared_pool.attached == 1
            assert shared_pool.attached == 0 and not shared_pool.forked
        assert multiprocessing.active_children() == []
