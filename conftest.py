"""Test-session path setup and environment guards.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. in offline environments where ``pip install -e .`` cannot bootstrap its
build dependencies), and skips multiprocess selection tests on hosts where a
worker pool cannot help (a single CPU) or cannot fork at all.
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def _parallel_tests_supported() -> bool:
    """Whether ``parallel``-marked tests are worth running on this host."""
    if os.environ.get("REPRO_FORCE_PARALLEL_TESTS"):
        return True
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        return False
    return (os.cpu_count() or 1) >= 2


def pytest_collection_modifyitems(config, items):
    if _parallel_tests_supported():
        return
    skip_parallel = pytest.mark.skip(
        reason="multiprocess selection tests need fork support and >= 2 CPUs "
        "(set REPRO_FORCE_PARALLEL_TESTS=1 to run anyway)"
    )
    for item in items:
        if "parallel" in item.keywords:
            item.add_marker(skip_parallel)
