"""Multi-host cluster coordinator: lease-fenced entity ranges over TCP.

:func:`run_cluster_experiment` drives the same durable sweep as the
single-host orchestrator, but across shard workers it can only reach over a
socket — which changes the failure model completely.  A fork-pool shard that
dies is *observable* (``os.kill`` probeable, pipe EOF); a remote worker that
goes silent is **indistinguishable from a partitioned one that is still
computing**.  The coordinator therefore never trusts silence and never
trusts late arrivals:

* **Leases, not dispatches.**  Work moves as leases of contiguous
  entity-index ranges.  A lease is alive only while heartbeats keep arriving
  within ``lease_ttl_s``; the worker's heartbeat pump beats from a separate
  thread, so a healthy worker deep inside a long trajectory still beats —
  a lease only ever expires for a dead, partitioned, or zombie worker.
* **Fencing epochs.**  The coordinator keeps one monotonically increasing
  epoch, persisted in ``leases.json`` through the same
  ``atomic_write_json`` path as the checkpoints.  Every lease carries the
  epoch it was granted under; expiring or losing a lease bumps the epoch, so
  a zombie worker that finishes its range *after* expiry submits results
  quoting a dead ``(lease, epoch)`` pair — rejected, journalled as
  ``result_rejected``, and never written to a worker journal.  A restarted
  coordinator (``--resume`` after SIGKILL) re-fences at ``stored epoch + 1``
  before granting anything, so results addressed to its predecessor are
  equally dead on arrival.
* **Per-worker journals, merged deterministically.**  Accepted
  ``entity_done`` records land in ``journal-<worker>.jsonl`` (fsync per
  record); coordinator decisions (grants, expiries, rejections, failures,
  quarantines) land in ``journal.jsonl``.  Resume and assembly read the
  whole set through :func:`~repro.orchestration.journal.merge_journals`,
  whose per-journal torn-tail rule and payload-conflict check keep the
  bit-identity guarantee: a migrated, resumed, or reassigned sweep produces
  a ``curve.jsonl`` byte-identical to an undisturbed single-host run,
  because every path converges on the same per-entity seeds and the same
  :func:`~repro.orchestration.orchestrator.assemble_result`.

Failed entities reuse the single-host retry machinery: each fenced or
failed attempt is charged, re-enqueued with linear backoff, and quarantined
after ``max_attempts``.  ``local_workers`` forks loopback worker
subprocesses (context shipped copy-on-write), so the whole cluster is
testable in one process tree; remote workers join with
``crowdfusion shard-worker --connect HOST:PORT``.
"""

from __future__ import annotations

import os
import selectors
import socket
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

import multiprocessing

from repro.core.selection.parallel import (
    fork_available,
    register_shutdown_reaper,
    unregister_shutdown_reaper,
)
from repro.evaluation.experiment import EntityProblem, ExperimentConfig
from repro.evaluation.reporting import CurveStream
from repro.exceptions import OrchestrationError
from repro.orchestration import cluster_worker as _worker_module
from repro.orchestration import wire
from repro.orchestration.journal import (
    JournalWriter,
    RunLock,
    atomic_write_json,
    merge_journals,
    read_json,
)
from repro.orchestration.orchestrator import (
    CHECKPOINT_NAME,
    JOURNAL_NAME,
    LOCK_NAME,
    OrchestratorReport,
    _fingerprint,
    _RunState,
    assemble_result,
    check_manifest,
    entity_done_record,
)
from repro.service.api import MAX_LINE_BYTES

#: Atomic lease/epoch snapshot, sibling of the checkpoint.
LEASES_NAME = "leases.json"

#: Worker journal naming; ``merge_journals`` globs this prefix on resume.
WORKER_JOURNAL_PREFIX = "journal-"


@dataclass(frozen=True)
class ClusterConfig:
    """Coordinator knobs of one multi-host sweep.

    Attributes
    ----------
    run_dir:
        Per-run directory (same layout as the single-host orchestrator plus
        ``leases.json`` and per-worker journals).
    host / port:
        Listener bind address; ``port=0`` picks a free port (read it back
        from :attr:`ClusterReport.port` or the coordinator's stdout line).
    lease_ttl_s:
        A lease with no heartbeat for this long is fenced and reassigned.
    heartbeat_s:
        Beat interval handed to workers in the ``Welcome``; must be well
        under ``lease_ttl_s`` so one dropped beat is not a death sentence.
    lease_entities:
        Maximum contiguous entity indices per lease grant.
    max_attempts / retry_backoff_s / resume:
        Exactly the single-host semantics (fenced leases charge an attempt
        per pending entity).
    local_workers:
        Loopback worker subprocesses forked by the coordinator itself.
        ``0`` means the sweep waits for remote workers to connect.
    """

    run_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    lease_ttl_s: float = 10.0
    heartbeat_s: float = 2.0
    lease_entities: int = 4
    max_attempts: int = 3
    retry_backoff_s: float = 0.0
    resume: bool = False
    local_workers: int = 0

    def __post_init__(self) -> None:
        if not self.run_dir:
            raise OrchestrationError("run_dir must be a non-empty path")
        if self.lease_ttl_s <= 0:
            raise OrchestrationError(
                f"lease_ttl_s must be > 0, got {self.lease_ttl_s}"
            )
        if self.heartbeat_s <= 0 or self.heartbeat_s >= self.lease_ttl_s:
            raise OrchestrationError(
                "heartbeat_s must sit strictly inside (0, lease_ttl_s); got "
                f"heartbeat_s={self.heartbeat_s}, lease_ttl_s={self.lease_ttl_s}"
            )
        if self.lease_entities < 1:
            raise OrchestrationError(
                f"lease_entities must be >= 1, got {self.lease_entities}"
            )
        if self.max_attempts < 1:
            raise OrchestrationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.retry_backoff_s < 0:
            raise OrchestrationError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.local_workers < 0:
            raise OrchestrationError(
                f"local_workers must be >= 0, got {self.local_workers}"
            )


@dataclass
class ClusterStats:
    """Fencing and delivery counters of one coordinator run."""

    epoch: int = 0
    leases_granted: int = 0
    leases_expired: int = 0
    disconnects: int = 0
    results_accepted: int = 0
    results_rejected: int = 0
    duplicates_dropped: int = 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "epoch": self.epoch,
            "leases_granted": self.leases_granted,
            "leases_expired": self.leases_expired,
            "disconnects": self.disconnects,
            "results_accepted": self.results_accepted,
            "results_rejected": self.results_rejected,
            "duplicates_dropped": self.duplicates_dropped,
        }


@dataclass
class ClusterReport(OrchestratorReport):
    """Single-host report plus the cluster's fencing statistics."""

    stats: ClusterStats = field(default_factory=ClusterStats)
    port: int = 0


class _Conn:
    """One connected worker socket and its receive buffer."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.buffer = bytearray()
        self.worker: Optional[str] = None
        self.lease: Optional[str] = None
        #: Set when this worker's lease was fenced for heartbeat expiry; a
        #: suspect worker gets no new lease until it proves it is reading
        #: again (any fresh heartbeat) — otherwise a zombie would churn
        #: through grants it cannot see yet.
        self.suspect = False


@dataclass
class _Lease:
    """One granted range and its fencing identity."""

    lease_id: str
    worker: str
    conn: _Conn
    epoch: int
    start: int
    stop: int
    deadline: float
    pending: Set[int] = field(default_factory=set)
    attempt_of: Dict[int, int] = field(default_factory=dict)


class _LocalWorkerPool:
    """Forks and reaps the coordinator's loopback worker subprocesses."""

    def __init__(self, count: int, host: str, port: int) -> None:
        context = multiprocessing.get_context("fork")
        self.processes = []
        for ordinal in range(count):
            process = context.Process(
                target=_worker_module.local_worker_main,
                args=(host, port, f"local-{ordinal}"),
                daemon=True,
            )
            process.start()
            self.processes.append(process)

    def reap_on_shutdown(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        for process in self.processes:
            if process.is_alive():
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - stuck in syscall
                process.kill()
                process.join(timeout=1.0)

    def join(self, timeout: float = 5.0) -> None:
        deadline = time.monotonic() + timeout
        for process in self.processes:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        self.reap_on_shutdown()


def _safe_worker_name(worker: str) -> str:
    """Filesystem-safe journal suffix for a worker id."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in worker) or "worker"


def worker_journal_paths(run_dir: str) -> List[str]:
    """Every per-worker journal currently present in ``run_dir``."""
    return sorted(
        os.path.join(run_dir, name)
        for name in os.listdir(run_dir)
        if name.startswith(WORKER_JOURNAL_PREFIX) and name.endswith(".jsonl")
    )


class _Coordinator:
    """The selector-driven event loop behind :func:`run_cluster_experiment`."""

    def __init__(
        self,
        problems: List[EntityProblem],
        config: ExperimentConfig,
        cluster: ClusterConfig,
        budget_overrides: Dict[str, int],
        state: _RunState,
        journal: JournalWriter,
    ) -> None:
        self.problems = problems
        self.config = config
        self.cluster = cluster
        self.budget_overrides = budget_overrides
        self.state = state
        self.journal = journal
        self.stats = ClusterStats()
        self.run_dir = cluster.run_dir
        self.checkpoint_path = os.path.join(self.run_dir, CHECKPOINT_NAME)
        self.leases_path = os.path.join(self.run_dir, LEASES_NAME)
        self.digest = wire.fingerprint_digest(
            _fingerprint(problems, config, budget_overrides)
        )
        #: Work queue: entity index -> (attempt number, earliest dispatch).
        self.queue: Dict[int, Tuple[int, float]] = {
            index: (state.attempts.get(index, 0) + 1, 0.0)
            for index in state.pending_indices()
        }
        self.active: Dict[str, _Lease] = {}
        self.worker_journals: Dict[str, JournalWriter] = {}
        self.selector = selectors.DefaultSelector()
        self.listener: Optional[socket.socket] = None
        self.port = 0
        # Re-fence: any lease the previous coordinator incarnation granted
        # is dead the moment this one starts at a strictly higher epoch.
        stored = read_json(self.leases_path)
        self.epoch = int(stored["epoch"]) + 1 if stored else 1
        self.stats.epoch = self.epoch
        self._persist_leases()

    # -- durability ---------------------------------------------------------------------

    def _journal(self, record: Dict[str, Any]) -> None:
        """Append one coordinator decision record, wall-clock stamped.

        The ``ts`` stamp never touches entity payloads (those live in the
        worker journals and must stay bit-reproducible); it exists so fault
        timelines — kill to expiry to re-grant — can be reconstructed from
        the decision log alone.
        """
        record["ts"] = time.time()
        self.journal.append(record)

    def _persist_leases(self) -> None:
        atomic_write_json(
            self.leases_path,
            {
                "epoch": self.epoch,
                "active": [
                    {
                        "lease": lease.lease_id,
                        "worker": lease.worker,
                        "epoch": lease.epoch,
                        "start": lease.start,
                        "stop": lease.stop,
                        "pending": sorted(lease.pending),
                    }
                    for lease in self.active.values()
                ],
                "stats": self.stats.to_payload(),
            },
        )

    def _checkpoint(self, status: str = "running") -> None:
        atomic_write_json(
            self.checkpoint_path, self.state.checkpoint_payload(status)
        )

    def _worker_journal(self, worker: str) -> JournalWriter:
        name = _safe_worker_name(worker)
        writer = self.worker_journals.get(name)
        if writer is None:
            path = os.path.join(
                self.run_dir, f"{WORKER_JOURNAL_PREFIX}{name}.jsonl"
            )
            writer = JournalWriter(path)
            self.worker_journals[name] = writer
        return writer

    # -- socket plumbing ----------------------------------------------------------------

    def bind(self) -> int:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.cluster.host, self.cluster.port))
        listener.listen(64)
        listener.setblocking(False)
        self.listener = listener
        self.port = listener.getsockname()[1]
        self.selector.register(listener, selectors.EVENT_READ, None)
        return self.port

    def _send(self, conn: _Conn, message: Any) -> bool:
        """Best-effort blocking send; ``False`` means the peer is gone."""
        try:
            conn.sock.settimeout(5.0)
            conn.sock.sendall(wire.encode_message(message))
            return True
        except OSError:
            return False
        finally:
            try:
                conn.sock.setblocking(False)
            except OSError:  # pragma: no cover - socket already dead
                pass

    def _accept(self) -> None:
        assert self.listener is not None
        try:
            sock, _address = self.listener.accept()
        except OSError:  # pragma: no cover - raced a dying client
            return
        sock.setblocking(False)
        conn = _Conn(sock)
        self.selector.register(sock, selectors.EVENT_READ, conn)
        # The worker may proactively disconnect before Hello; that is fine.

    def _drop_conn(self, conn: _Conn, reason: str) -> None:
        """Unregister a dead connection and fence whatever it was holding."""
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if conn.worker is not None:
            self.stats.disconnects += 1
            self._journal(
                {
                    "type": "worker_disconnected",
                    "worker": conn.worker,
                    "reason": reason,
                }
            )
        if conn.lease is not None and conn.lease in self.active:
            self._fence_lease(self.active[conn.lease], f"disconnect: {reason}")

    # -- fencing ------------------------------------------------------------------------

    def _fence_lease(self, lease: _Lease, reason: str) -> None:
        """Kill a lease: bump the epoch, re-enqueue its pending entities.

        Raising the global epoch *before* anything else means results the
        fenced worker sends from now on — and results any older zombie
        might still send — can never match an active ``(lease, epoch)``
        pair again.
        """
        self.epoch += 1
        self.stats.epoch = self.epoch
        self.stats.leases_expired += 1
        self.active.pop(lease.lease_id, None)
        if lease.conn.lease == lease.lease_id:
            lease.conn.lease = None
        self._journal(
            {
                "type": "lease_expired",
                "lease": lease.lease_id,
                "worker": lease.worker,
                "epoch": lease.epoch,
                "new_epoch": self.epoch,
                "reason": reason,
                "pending": sorted(lease.pending),
            }
        )
        # Best-effort courtesy: a partitioned-but-alive worker eventually
        # reads this and stops wasting cycles; a dead one never will.
        self._send(
            lease.conn,
            wire.LeaseRevoked(lease.lease_id, lease.epoch, reason),
        )
        for index in sorted(lease.pending):
            self._charge_failure(
                index,
                lease.attempt_of.get(index, 1),
                f"lease {lease.lease_id} fenced ({reason})",
            )
        self._persist_leases()

    def _charge_failure(self, index: int, attempt: int, message: str) -> None:
        entity = self.problems[index].entity
        self._journal(
            {
                "type": "entity_failed",
                "index": index,
                "entity": entity,
                "attempt": attempt,
                "error": message,
            }
        )
        self.state.attempts[index] = max(self.state.attempts.get(index, 0), attempt)
        if attempt >= self.cluster.max_attempts:
            record = {
                "type": "quarantined",
                "index": index,
                "entity": entity,
                "attempts": attempt,
                "error": message,
            }
            self._journal(record)
            self.state.quarantined[index] = record
            self._checkpoint()
        else:
            not_before = (
                time.monotonic() + self.cluster.retry_backoff_s * attempt
            )
            self.queue[index] = (attempt + 1, not_before)

    # -- message handling ---------------------------------------------------------------

    def _read_conn(self, conn: _Conn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as error:
            self._drop_conn(conn, f"recv failed: {error}")
            return
        if not data:
            self._drop_conn(conn, "connection closed by peer")
            return
        conn.buffer.extend(data)
        if len(conn.buffer) > MAX_LINE_BYTES:
            self._send(
                conn,
                wire.WireError("line_too_long", "wire line exceeds limit"),
            )
            self._drop_conn(conn, "oversized wire line")
            return
        while True:
            newline = conn.buffer.find(b"\n")
            if newline < 0:
                break
            line = bytes(conn.buffer[: newline + 1])
            del conn.buffer[: newline + 1]
            try:
                message = wire.decode_message(line)
            except wire.WireProtocolError as error:
                self._send(conn, wire.WireError("protocol_error", str(error)))
                self._drop_conn(conn, f"protocol error: {error}")
                return
            self._handle_message(conn, message)
            if conn.sock.fileno() < 0:
                return  # the handler dropped this connection

    def _handle_message(self, conn: _Conn, message: Any) -> None:
        if isinstance(message, wire.Hello):
            if message.fingerprint != self.digest:
                # A worker built for a different sweep would compute
                # different trajectories — refuse it before it gets work.
                self._send(
                    conn,
                    wire.WireError(
                        "fingerprint_mismatch",
                        "worker was configured for a different sweep",
                        retry_safe=False,
                    ),
                )
                self._drop_conn(conn, "fingerprint mismatch")
                return
            conn.worker = message.worker
            self._send(
                conn,
                wire.Welcome(
                    epoch=self.epoch,
                    heartbeat_s=self.cluster.heartbeat_s,
                    lease_ttl_s=self.cluster.lease_ttl_s,
                ),
            )
        elif isinstance(message, wire.Heartbeat):
            conn.suspect = False
            lease = self.active.get(message.lease)
            if (
                lease is not None
                and lease.epoch == message.epoch
                and lease.conn is conn
            ):
                lease.deadline = time.monotonic() + self.cluster.lease_ttl_s
        elif isinstance(message, wire.EntityResult):
            self._handle_result(conn, message)
        else:
            self._send(
                conn,
                wire.WireError(
                    "unexpected_message",
                    f"coordinator cannot accept {type(message).__name__}",
                ),
            )
            self._drop_conn(conn, f"unexpected {type(message).__name__}")

    def _handle_result(self, conn: _Conn, result: wire.EntityResult) -> None:
        lease = self.active.get(result.lease)
        if lease is None or lease.epoch != result.epoch or lease.conn is not conn:
            # The fencing check: a zombie quoting an expired (lease, epoch)
            # pair — or a hijacked lease id from another connection — is
            # rejected and its result never touches a worker journal.
            self.stats.results_rejected += 1
            self._journal(
                {
                    "type": "result_rejected",
                    "worker": result.worker,
                    "lease": result.lease,
                    "epoch": result.epoch,
                    "current_epoch": self.epoch,
                    "index": result.index,
                }
            )
            return
        if result.index not in lease.pending:
            # Inside an active lease but already answered: duplicated
            # delivery (retransmit or injected duplicate).  Drop silently
            # but account for it.
            self.stats.duplicates_dropped += 1
            self._journal(
                {
                    "type": "result_duplicate",
                    "worker": result.worker,
                    "lease": result.lease,
                    "index": result.index,
                }
            )
            return
        lease.pending.discard(result.index)
        lease.deadline = time.monotonic() + self.cluster.lease_ttl_s
        attempt = lease.attempt_of.get(result.index, 1)
        if result.ok and result.payload is not None:
            record = entity_done_record(
                self.problems, self.config, result.index, attempt, result.payload
            )
            record["worker"] = result.worker
            self._worker_journal(result.worker).append(record)
            self.state.completed[result.index] = record
            self.stats.results_accepted += 1
            self._checkpoint()
        else:
            self._charge_failure(
                result.index, attempt, result.error or "worker reported failure"
            )
        if not lease.pending:
            self.active.pop(lease.lease_id, None)
            if conn.lease == lease.lease_id:
                conn.lease = None
            self._journal(
                {
                    "type": "lease_complete",
                    "lease": lease.lease_id,
                    "worker": lease.worker,
                }
            )
            self._persist_leases()

    # -- granting -----------------------------------------------------------------------

    def _pop_contiguous(self, now: float) -> Optional[List[int]]:
        """The next contiguous run of eligible entity indices, or ``None``."""
        eligible = sorted(
            index
            for index, (_attempt, not_before) in self.queue.items()
            if not_before <= now
        )
        if not eligible:
            return None
        run = [eligible[0]]
        for index in eligible[1:]:
            if len(run) >= self.cluster.lease_entities:
                break
            if index == run[-1] + 1:
                run.append(index)
            else:
                break
        return run

    def _grant_leases(self, now: float) -> None:
        for key in list(self.selector.get_map().values()):
            conn = key.data
            if conn is None or conn.worker is None:
                continue
            if conn.lease is not None or conn.suspect:
                continue
            run = self._pop_contiguous(now)
            if run is None:
                return
            lease_id = f"lease-{self.stats.leases_granted}-{uuid.uuid4().hex[:8]}"
            lease = _Lease(
                lease_id=lease_id,
                worker=conn.worker,
                conn=conn,
                epoch=self.epoch,
                start=run[0],
                stop=run[-1] + 1,
                deadline=now + self.cluster.lease_ttl_s,
                pending=set(run),
                attempt_of={index: self.queue[index][0] for index in run},
            )
            for index in run:
                del self.queue[index]
            self.active[lease_id] = lease
            conn.lease = lease_id
            self.stats.leases_granted += 1
            self._journal(
                {
                    "type": "lease_granted",
                    "lease": lease_id,
                    "worker": conn.worker,
                    "epoch": lease.epoch,
                    "start": lease.start,
                    "stop": lease.stop,
                    "attempts": {
                        str(i): lease.attempt_of[i] for i in sorted(run)
                    },
                }
            )
            self._persist_leases()
            if not self._send(
                conn,
                wire.LeaseGrant(
                    lease=lease_id,
                    epoch=lease.epoch,
                    start=lease.start,
                    stop=lease.stop,
                ),
            ):
                self._drop_conn(conn, "lease grant send failed")

    # -- the loop -----------------------------------------------------------------------

    def run(self) -> None:
        """Drive the sweep until every entity is completed or quarantined."""
        self._checkpoint()
        while self.queue or self.active:
            now = time.monotonic()
            self._grant_leases(now)
            timeout = 0.2
            if self.active:
                nearest = min(lease.deadline for lease in self.active.values())
                timeout = min(timeout, max(0.0, nearest - now))
            for key, _events in self.selector.select(timeout):
                if key.data is None:
                    self._accept()
                else:
                    self._read_conn(key.data)
            now = time.monotonic()
            for lease in list(self.active.values()):
                if lease.deadline <= now:
                    self._fence_lease(
                        lease,
                        f"no heartbeat for {self.cluster.lease_ttl_s:.3f}s",
                    )
        self._checkpoint("complete")
        self._persist_leases()
        self._journal(
            {"type": "cluster_stats", **self.stats.to_payload()}
        )
        for key in list(self.selector.get_map().values()):
            conn = key.data
            if conn is not None:
                self._send(conn, wire.Shutdown("sweep complete"))

    def close(self) -> None:
        for key in list(self.selector.get_map().values()):
            conn = key.data
            target = conn.sock if conn is not None else key.fileobj
            try:
                self.selector.unregister(target)
            except (KeyError, ValueError):  # pragma: no cover
                pass
            try:
                target.close()
            except OSError:  # pragma: no cover
                pass
        self.selector.close()
        for writer in self.worker_journals.values():
            writer.close()


def run_cluster_experiment(
    problems: List[EntityProblem],
    config: ExperimentConfig,
    cluster: ClusterConfig,
    budgets: Optional[Mapping[str, int]] = None,
    stream: Optional[CurveStream] = None,
    on_listening: Optional[Any] = None,
) -> ClusterReport:
    """Run (or resume) a lease-fenced multi-host sweep and return its curve.

    ``on_listening`` (if given) is called with the bound port once the
    coordinator accepts connections — before any worker is awaited — so
    callers can advertise the endpoint (the CLI prints it for the smoke
    harness; tests use it to start loopback workers).
    """
    if not problems:
        raise OrchestrationError("cannot orchestrate an empty problem list")
    if cluster.local_workers and not fork_available():
        raise OrchestrationError(
            "local cluster workers fork from the coordinator, which this "
            "platform does not support; use remote shard workers instead"
        )
    budget_overrides = dict(budgets or {})
    run_dir = cluster.run_dir
    os.makedirs(run_dir, exist_ok=True)

    with RunLock(os.path.join(run_dir, LOCK_NAME)):
        fingerprint = _fingerprint(problems, config, budget_overrides)
        check_manifest(run_dir, fingerprint, cluster.resume)

        state = _RunState(problems)
        journal_paths = [os.path.join(run_dir, JOURNAL_NAME)]
        journal_paths.extend(worker_journal_paths(run_dir))
        state.replay(merge_journals(journal_paths))
        resumed = len(state.completed)

        with JournalWriter(os.path.join(run_dir, JOURNAL_NAME)) as journal:
            coordinator = _Coordinator(
                list(problems), config, cluster, budget_overrides, state, journal
            )
            pool: Optional[_LocalWorkerPool] = None
            try:
                port = coordinator.bind()
                if on_listening is not None:
                    on_listening(port)
                if cluster.local_workers:
                    _worker_module._CLUSTER_CONTEXT = (
                        list(problems), config, budget_overrides
                    )
                    _worker_module._INHERITED_LISTENER = coordinator.listener
                    pool = _LocalWorkerPool(
                        cluster.local_workers, cluster.host, port
                    )
                    _worker_module._INHERITED_LISTENER = None
                    register_shutdown_reaper(pool)
                if state.pending_indices():
                    coordinator.run()
                else:
                    coordinator._checkpoint("complete")
                    coordinator.journal.append(
                        {"type": "cluster_stats", **coordinator.stats.to_payload()}
                    )
            finally:
                coordinator.close()
                if pool is not None:
                    unregister_shutdown_reaper(pool)
                    pool.join()
                    _worker_module._CLUSTER_CONTEXT = None

        result, quarantined = assemble_result(
            state, problems, config, run_dir, stream
        )
        return ClusterReport(
            result=result,
            run_dir=run_dir,
            completed=len(state.completed),
            resumed=resumed,
            quarantined=quarantined,
            stats=coordinator.stats,
            port=coordinator.port,
        )
