"""Typed runtime configuration shared by every execution layer.

Before this module existed, five loose keywords — ``workers``,
``parallel_threshold``, ``persistent_pool``, ``recalibrate`` and
``parallel_entities`` — were duplicated (with slightly different names and
validation) across :class:`~repro.core.engine.CrowdFusionEngine`,
:class:`~repro.evaluation.experiment.ExperimentConfig`,
:class:`~repro.core.selection.session.RefinementSession` and the CLI.
:class:`RuntimeOptions` is the single typed carrier for all of them: build it
once, pass it to any layer, and every layer derives the same
:class:`~repro.core.selection.parallel.ParallelPolicy` and the same validity
rules from it.  The old keywords keep working for one release and raise a
:class:`DeprecationWarning` pointing here.

The fields mean the same thing everywhere:

``workers``
    Worker processes for parallel candidate scans (``None`` disables
    process-level parallelism; selectors then never fork).
``parallel_threshold``
    Auto-serial threshold (candidates × support rows) below which a
    configured parallel scan still runs in process (``None`` = library
    default).
``persistent_pool``
    Sessions own one long-lived worker pool surviving every Bayesian merge
    (posteriors travel through the shared-memory snapshot ring) instead of a
    per-call pool being re-forked per selection.
``recalibrate``
    Sessions re-estimate per-fact channel accuracies from answer/posterior
    agreement as rounds accumulate.
``parallel_entities``
    Experiment-level fan-out: whole entities run in fork workers (mutually
    exclusive with ``workers``).  Layers below the experiment runner ignore
    it.
``dispatch_timeout_ms``
    Wall-clock budget for one parallel dispatch before the supervisor
    declares the pool hung and rebuilds it (``None`` disables the timeout).
``max_rebuilds``
    Consecutive crashed dispatches the pool supervisor absorbs before its
    circuit breaker degrades the affected engine(s) to serial evaluation.
``kernel``
    Kernel-tier request for the entropy engines the run constructs
    (``auto``/``compiled``/``numpy``/``reference``; see
    :mod:`repro.core.kernels`).  ``auto`` picks the compiled tier when numba
    is importable and falls back to numpy otherwise; the ``REPRO_KERNEL``
    environment variable overrides the auto choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.kernels import KERNEL_CHOICES
from repro.core.selection.parallel import (
    DEFAULT_PARALLEL_THRESHOLD,
    ParallelPolicy,
    fork_available,
)
from repro.exceptions import CrowdFusionError


@dataclass(frozen=True)
class RuntimeOptions:
    """How (and how hard) the refinement runtime may use this machine.

    All fields default to the conservative serial behaviour, so
    ``RuntimeOptions()`` is always valid and means "single process, no
    re-calibration".  Validation happens at construction: an invalid
    combination raises :class:`~repro.exceptions.CrowdFusionError`
    immediately rather than deep inside a run.
    """

    workers: Optional[int] = None
    parallel_threshold: Optional[int] = None
    persistent_pool: bool = False
    recalibrate: bool = False
    parallel_entities: Optional[int] = None
    dispatch_timeout_ms: Optional[int] = None
    max_rebuilds: int = 2
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.kernel not in KERNEL_CHOICES:
            raise CrowdFusionError(
                f"kernel must be one of {KERNEL_CHOICES}, got {self.kernel!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise CrowdFusionError(
                f"workers must be a positive integer, got {self.workers}"
            )
        if self.dispatch_timeout_ms is not None and self.dispatch_timeout_ms <= 0:
            raise CrowdFusionError(
                f"dispatch_timeout_ms must be positive, got {self.dispatch_timeout_ms}"
            )
        if self.max_rebuilds < 0:
            raise CrowdFusionError(
                f"max_rebuilds must be non-negative, got {self.max_rebuilds}"
            )
        if self.parallel_threshold is not None and self.parallel_threshold < 0:
            raise CrowdFusionError(
                f"parallel_threshold must be non-negative, got {self.parallel_threshold}"
            )
        if self.parallel_entities is not None and self.parallel_entities < 1:
            raise CrowdFusionError(
                f"parallel_entities must be a positive integer, got "
                f"{self.parallel_entities}"
            )
        if self.persistent_pool and self.workers is None:
            raise CrowdFusionError(
                "persistent_pool requires workers: set workers (--workers) to "
                "the pool size the persistent runtime should keep alive"
            )
        if self.parallel_entities is not None and self.workers is not None:
            raise CrowdFusionError(
                "parallel_entities and workers are mutually exclusive: entity "
                "fan-out workers are daemonic and cannot fork nested candidate-"
                "scan pools; pick one parallelism axis"
            )
        if (self.persistent_pool or self.parallel_entities is not None) and (
            not fork_available()
        ):
            raise CrowdFusionError(
                "persistent worker pools and entity fan-out need the 'fork' "
                "start method, which this platform does not provide"
            )

    @property
    def parallel_policy(self) -> Optional[ParallelPolicy]:
        """The candidate-scan sharding policy these options imply (or ``None``)."""
        if self.workers is None:
            return None
        return ParallelPolicy(
            workers=self.workers,
            parallel_threshold=(
                self.parallel_threshold
                if self.parallel_threshold is not None
                else DEFAULT_PARALLEL_THRESHOLD
            ),
            max_rebuilds=self.max_rebuilds,
            dispatch_timeout=(
                self.dispatch_timeout_ms / 1000.0
                if self.dispatch_timeout_ms is not None
                else None
            ),
        )

    @property
    def session_policy(self) -> Optional[ParallelPolicy]:
        """The policy a :class:`RefinementSession` should *own*.

        A session-owned evaluator is persistent by construction (it survives
        the session's merges), so sessions engage the worker pool only when
        ``persistent_pool`` is set; with ``persistent_pool=False`` the policy
        belongs to the selector layer (one pool per selection call) and the
        session stays serial.
        """
        return self.parallel_policy if self.persistent_pool else None

    @property
    def parallel(self) -> bool:
        """Whether any process-level parallelism is configured at all."""
        return self.workers is not None or self.parallel_entities is not None
