"""The paper's running example (Tables I, II and IV).

Four facts about Hong Kong with a hand-specified joint output distribution.
Used throughout the tests to pin the implementation to the exact numbers
printed in the paper, and by the quickstart example.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.facts import Fact, FactSet

#: Table II — joint probability of each of the 16 outputs, keyed by the truth
#: values of (f1, f2, f3, f4).
_TABLE_II: Dict[Tuple[bool, bool, bool, bool], float] = {
    (False, False, False, False): 0.03,
    (False, False, False, True): 0.06,
    (False, False, True, False): 0.07,
    (False, False, True, True): 0.04,
    (False, True, False, False): 0.09,
    (False, True, False, True): 0.01,
    (False, True, True, False): 0.11,
    (False, True, True, True): 0.09,
    (True, False, False, False): 0.04,
    (True, False, False, True): 0.04,
    (True, False, True, False): 0.04,
    (True, False, True, True): 0.05,
    (True, True, False, False): 0.06,
    (True, True, False, True): 0.09,
    (True, True, True, False): 0.07,
    (True, True, True, True): 0.11,
}


def running_example_facts() -> FactSet:
    """The four facts of Table I, with their marginal priors."""
    return FactSet(
        [
            Fact("f1", "Hong Kong", "Continent", "Asia", prior=0.50),
            Fact("f2", "Hong Kong", "Population", ">= 500,000", prior=0.63),
            Fact("f3", "Hong Kong", "Major Ethnic Group", "Chinese", prior=0.58),
            Fact("f4", "Hong Kong", "Continent", "Europe", prior=0.49),
        ]
    )


def running_example_distribution() -> JointDistribution:
    """The joint output distribution of Table II."""
    fact_ids = ("f1", "f2", "f3", "f4")
    return JointDistribution.from_assignments(fact_ids, dict(_TABLE_II))


def running_example_answer_table(accuracy: float = 0.8) -> JointDistribution:
    """The answer joint distribution of Table IV (all facts asked, ``Pc`` = 0.8)."""
    crowd = CrowdModel(accuracy)
    return crowd.full_answer_joint(running_example_distribution())
