"""Crowd answer records.

An :class:`Answer` is one worker judgment of one fact; an :class:`AnswerSet`
collects the judgments gathered for one selection round (one task set) and is
what gets merged back into the joint distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import InvalidFactError


@dataclass(frozen=True)
class Answer:
    """A single crowd judgment on one fact.

    Parameters
    ----------
    fact_id:
        The fact that was asked.
    judgment:
        The crowd's true/false verdict.
    worker_id:
        Optional identifier of the worker (or aggregated worker group).
    confidence:
        Optional self-reported or platform-estimated confidence in ``[0, 1]``.
    """

    fact_id: str
    judgment: bool
    worker_id: Optional[str] = None
    confidence: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.fact_id:
            raise InvalidFactError("answer must reference a non-empty fact id")
        if self.confidence is not None and not 0.0 <= self.confidence <= 1.0:
            raise InvalidFactError(
                f"confidence must be in [0, 1], got {self.confidence}"
            )


class AnswerSet:
    """The collected answers for one round's task set.

    Behaves like an immutable mapping from fact id to boolean judgment, while
    also retaining the underlying :class:`Answer` records for provenance.
    """

    def __init__(self, answers: Iterable[Answer]):
        self._answers: Tuple[Answer, ...] = tuple(answers)
        if not self._answers:
            raise InvalidFactError("an AnswerSet must contain at least one answer")
        judgments: Dict[str, bool] = {}
        for answer in self._answers:
            if answer.fact_id in judgments:
                raise InvalidFactError(
                    f"duplicate answer for fact {answer.fact_id!r}; aggregate per-fact "
                    "answers before building an AnswerSet"
                )
            judgments[answer.fact_id] = answer.judgment
        self._judgments = judgments

    @classmethod
    def from_mapping(
        cls, judgments: Mapping[str, bool], worker_id: Optional[str] = None
    ) -> "AnswerSet":
        """Build an answer set directly from a ``fact_id -> bool`` mapping."""
        return cls(
            Answer(fact_id=fact_id, judgment=judgment, worker_id=worker_id)
            for fact_id, judgment in judgments.items()
        )

    # -- mapping protocol -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._answers)

    def __iter__(self) -> Iterator[str]:
        return iter(self._judgments)

    def __contains__(self, fact_id: object) -> bool:
        return fact_id in self._judgments

    def __getitem__(self, fact_id: str) -> bool:
        try:
            return self._judgments[fact_id]
        except KeyError:
            raise InvalidFactError(f"no answer recorded for fact {fact_id!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnswerSet):
            return NotImplemented
        return self._judgments == other._judgments

    def __repr__(self) -> str:
        verdicts = ", ".join(
            f"{fact_id}={'T' if judgment else 'F'}"
            for fact_id, judgment in self._judgments.items()
        )
        return f"AnswerSet({verdicts})"

    # -- accessors -------------------------------------------------------------------

    @property
    def fact_ids(self) -> Tuple[str, ...]:
        """Fact ids covered by this answer set, in answer order."""
        return tuple(answer.fact_id for answer in self._answers)

    @property
    def answers(self) -> Tuple[Answer, ...]:
        """The underlying answer records."""
        return self._answers

    def judgments(self) -> Dict[str, bool]:
        """Return a copy of the ``fact_id -> judgment`` mapping."""
        return dict(self._judgments)

    def agreement_with(self, truth: Mapping[str, bool]) -> Tuple[int, int]:
        """Count ``(#Same, #Diff)`` of this answer set against a truth assignment.

        Only the facts present in this answer set are counted, mirroring the
        ``#Same`` / ``#Diff`` definition of Equation 2.
        """
        same = 0
        diff = 0
        for fact_id, judgment in self._judgments.items():
            if fact_id not in truth:
                raise InvalidFactError(
                    f"truth assignment is missing a value for fact {fact_id!r}"
                )
            if truth[fact_id] == judgment:
                same += 1
            else:
                diff += 1
        return same, diff

    def restricted_to(self, fact_ids: Sequence[str]) -> "AnswerSet":
        """Return the answers for the subset ``fact_ids`` only."""
        selected = [answer for answer in self._answers if answer.fact_id in set(fact_ids)]
        return AnswerSet(selected)
