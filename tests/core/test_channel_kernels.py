"""Heterogeneous channel kernels vs. the uniform BSC transforms.

Two contracts anchor the heterogeneous-channel refactor:

* **bit-for-bit degeneration** — ``channel_transform`` (and its row variant)
  with ``k`` equal accuracies must perform exactly the floating-point
  operations of ``bsc_transform`` (``bsc_transform_rows``), making the
  uniform path a strict special case rather than a parallel implementation;
* **Equation-2 correctness** — with distinct per-bit accuracies the result
  must match the dense per-(answer, projection) sum
  ``Σ_s v[s] · Π_i (acc_i if a_i = s_i else 1 − acc_i)``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.entropy import (
    bsc_transform,
    bsc_transform_rows,
    channel_transform,
    channel_transform_rows,
)

accuracy_values = st.sampled_from([0.5, 0.6, 0.75, 0.8, 0.9, 0.97, 1.0])


@st.composite
def mass_vectors(draw, max_bits=4):
    """A non-negative mass vector over ``2^k`` answer slots, with its ``k``."""
    k = draw(st.integers(min_value=0, max_value=max_bits))
    masses = draw(
        st.lists(
            st.integers(min_value=0, max_value=50),
            min_size=1 << k,
            max_size=1 << k,
        )
    )
    return np.array(masses, dtype=np.float64), k


def dense_channel_reference(vector, accuracies):
    """Equation 2 the slow way: one term per (answer, projection) pair."""
    k = len(accuracies)
    out = np.zeros_like(vector)
    for answer in range(1 << k):
        total = 0.0
        for projection in range(1 << k):
            term = vector[projection]
            for bit, accuracy in enumerate(accuracies):
                same = ((answer >> bit) & 1) == ((projection >> bit) & 1)
                term *= accuracy if same else 1.0 - accuracy
            total += term
        out[answer] = total
    return out


class TestUniformDegeneration:
    @given(mass_vectors(), accuracy_values)
    @settings(max_examples=80, deadline=None)
    def test_equal_accuracies_reproduce_bsc_transform_bitwise(self, vector_k, accuracy):
        vector, k = vector_k
        uniform = bsc_transform(vector, k, accuracy)
        heterogeneous = channel_transform(vector, np.full(k, accuracy))
        assert heterogeneous.shape == uniform.shape
        # Bit-for-bit: same operations in the same order, not just approx.
        assert np.array_equal(heterogeneous, uniform)

    @given(mass_vectors(), accuracy_values, st.integers(min_value=1, max_value=4))
    @settings(max_examples=80, deadline=None)
    def test_equal_accuracies_reproduce_bsc_transform_rows_bitwise(
        self, vector_k, accuracy, groups
    ):
        vector, k = vector_k
        matrix = np.vstack([np.roll(vector, shift) for shift in range(groups)])
        uniform = bsc_transform_rows(matrix, k, accuracy)
        heterogeneous = channel_transform_rows(matrix, np.full(k, accuracy))
        assert np.array_equal(heterogeneous, uniform)

    def test_zero_bits_returns_copy(self):
        vector = np.array([0.25, 0.75])
        result = channel_transform(vector, np.empty(0))
        # k = 0 means "no channels": the (length 2^0 = 1 would be usual, but
        # any vector must come back unchanged and decoupled from the input).
        assert np.array_equal(result, vector)
        result[0] = 99.0
        assert vector[0] == 0.25


class TestHeterogeneousCorrectness:
    @given(
        mass_vectors(max_bits=3),
        st.lists(accuracy_values, min_size=3, max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_dense_reference(self, vector_k, accuracy_list):
        vector, k = vector_k
        accuracies = np.array(accuracy_list[:k], dtype=np.float64)
        expected = dense_channel_reference(vector, accuracies)
        actual = channel_transform(vector, accuracies)
        assert actual == pytest.approx(expected, abs=1e-9)

    def test_bit_order_convention_lsb_first(self):
        # Mass concentrated on projection 0b01 (bit 0 set); a perfect channel
        # on bit 0 and a noisy channel on bit 1 must spread mass only along
        # the bit-1 axis.
        vector = np.array([0.0, 1.0, 0.0, 0.0])
        accuracies = np.array([1.0, 0.8])  # bit 0 perfect, bit 1 at 0.8
        result = channel_transform(vector, accuracies)
        assert result == pytest.approx([0.0, 0.8, 0.0, 0.2])

    def test_identity_channels_are_skipped(self):
        vector = np.array([0.1, 0.2, 0.3, 0.4])
        result = channel_transform(vector, np.array([1.0, 1.0]))
        assert np.array_equal(result, vector)
        # And the result is a copy, not a view of the input.
        result[0] = 9.0
        assert vector[0] == 0.1

    def test_rows_match_per_row_transform(self):
        rng = np.random.default_rng(7)
        matrix = rng.uniform(0.0, 1.0, size=(5, 8))
        accuracies = np.array([0.6, 0.9, 0.75])
        rows = channel_transform_rows(matrix, accuracies)
        for index in range(matrix.shape[0]):
            assert rows[index] == pytest.approx(
                channel_transform(matrix[index], accuracies), abs=1e-12
            )

    def test_mass_is_conserved(self):
        rng = np.random.default_rng(11)
        vector = rng.uniform(0.0, 1.0, size=16)
        accuracies = np.array([0.55, 0.7, 0.85, 1.0])
        result = channel_transform(vector, accuracies)
        assert result.sum() == pytest.approx(vector.sum())
        assert (result >= 0.0).all()
