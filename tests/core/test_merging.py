"""Unit tests for Bayesian answer merging (Equation 3)."""

import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.merging import (
    answer_likelihoods,
    answer_probability,
    merge_answer_sequence,
    merge_answers,
)
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import SelectionError


class TestAnswerLikelihoods:
    def test_likelihood_values(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.5})
        crowd = CrowdModel(0.8)
        answers = AnswerSet.from_mapping({"a": True})
        likelihoods = answer_likelihoods(dist, answers, crowd)
        # Outputs with a=True get Pc, outputs with a=False get 1-Pc.
        for mask, value in likelihoods.items():
            expected = 0.8 if mask & 1 else 0.2
            assert value == pytest.approx(expected)

    def test_unselected_facts_do_not_affect_likelihood(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.9})
        crowd = CrowdModel(0.7)
        answers = AnswerSet.from_mapping({"a": False})
        likelihoods = answer_likelihoods(dist, answers, crowd)
        # Masks 0b00 and 0b10 agree on a=False regardless of b.
        assert likelihoods[0b00] == pytest.approx(likelihoods[0b10])


class TestAnswerProbability:
    def test_matches_equation_two(self):
        dist = JointDistribution.independent({"a": 0.7})
        crowd = CrowdModel(0.8)
        yes = AnswerSet.from_mapping({"a": True})
        assert answer_probability(dist, yes, crowd) == pytest.approx(0.7 * 0.8 + 0.3 * 0.2)

    def test_answer_probabilities_sum_to_one_over_all_answer_sets(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        total = 0.0
        for a in (False, True):
            for b in (False, True):
                answers = AnswerSet.from_mapping({"f1": a, "f2": b})
                total += answer_probability(dist, answers, crowd)
        assert total == pytest.approx(1.0)


class TestMergeAnswers:
    def test_running_example_posterior(self):
        """Section III-A worked example: ask f1, receive 'yes', Pc = 0.8."""
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        posterior = merge_answers(dist, AnswerSet.from_mapping({"f1": True}), crowd)
        assert posterior.probability((False, False, False, False)) == pytest.approx(0.012)
        assert posterior.probability((True, False, False, False)) == pytest.approx(0.064)

    def test_positive_answer_raises_marginal(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.5})
        crowd = CrowdModel(0.9)
        posterior = merge_answers(dist, AnswerSet.from_mapping({"a": True}), crowd)
        assert posterior.marginal("a") > 0.5
        assert posterior.marginal("b") == pytest.approx(0.5)

    def test_negative_answer_lowers_marginal(self):
        dist = JointDistribution.independent({"a": 0.5})
        crowd = CrowdModel(0.9)
        posterior = merge_answers(dist, AnswerSet.from_mapping({"a": False}), crowd)
        assert posterior.marginal("a") < 0.5

    def test_uninformative_crowd_changes_nothing(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.5)
        posterior = merge_answers(dist, AnswerSet.from_mapping({"f1": True}), crowd)
        assert posterior.allclose(dist)

    def test_perfect_crowd_eliminates_conflicting_outputs(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.5})
        crowd = CrowdModel(1.0)
        posterior = merge_answers(dist, AnswerSet.from_mapping({"a": True}), crowd)
        assert posterior.marginal("a") == pytest.approx(1.0)

    def test_posterior_still_normalised(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        posterior = merge_answers(
            dist, AnswerSet.from_mapping({"f1": True, "f3": False}), crowd
        )
        assert sum(p for _, p in posterior.items()) == pytest.approx(1.0)

    def test_merge_empty_answer_set_impossible(self):
        # An AnswerSet can never be empty, so merging guards via the
        # likelihood helper when given a foreign object.
        dist = JointDistribution.independent({"a": 0.5})
        crowd = CrowdModel(0.8)

        class _Empty:
            def judgments(self):
                return {}

        with pytest.raises(SelectionError):
            answer_likelihoods(dist, _Empty(), crowd)


class TestMergeSequence:
    def test_sequential_equals_joint_merge(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        both = merge_answers(
            dist, AnswerSet.from_mapping({"f1": True, "f2": False}), crowd
        )
        sequential = merge_answer_sequence(
            dist,
            [AnswerSet.from_mapping({"f1": True}), AnswerSet.from_mapping({"f2": False})],
            crowd,
        )
        assert sequential.allclose(both)

    def test_repeated_consistent_answers_increase_confidence(self):
        dist = JointDistribution.independent({"a": 0.5})
        crowd = CrowdModel(0.7)
        once = merge_answers(dist, AnswerSet.from_mapping({"a": True}), crowd)
        twice = merge_answer_sequence(
            dist,
            [AnswerSet.from_mapping({"a": True}), AnswerSet.from_mapping({"a": True})],
            crowd,
        )
        assert twice.marginal("a") > once.marginal("a") > 0.5

    def test_contradicting_answers_cancel_out(self):
        dist = JointDistribution.independent({"a": 0.5})
        crowd = CrowdModel(0.8)
        merged = merge_answer_sequence(
            dist,
            [AnswerSet.from_mapping({"a": True}), AnswerSet.from_mapping({"a": False})],
            crowd,
        )
        assert merged.marginal("a") == pytest.approx(0.5)
