"""Unit tests for the pruning greedy selector (Theorem 3)."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import GreedySelector, PruningGreedySelector
from repro.datasets.running_example import running_example_distribution


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


def correlated_distribution(num_facts=8, seed=5):
    """A distribution with a mix of near-certain and uncertain facts.

    Near-certain facts are exactly the ones the pruning rule should discard
    early once a good candidate has been found.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    marginals = {}
    for index in range(num_facts):
        if index % 2 == 0:
            marginals[f"f{index}"] = float(rng.uniform(0.45, 0.55))
        else:
            marginals[f"f{index}"] = float(rng.uniform(0.9, 0.99))
    return JointDistribution.independent(marginals)


class TestPruningCorrectness:
    def test_same_selection_as_plain_greedy_on_running_example(self, crowd):
        dist = running_example_distribution()
        for k in range(1, 5):
            plain = GreedySelector().select(dist, crowd, k)
            pruned = PruningGreedySelector().select(dist, crowd, k)
            assert pruned.task_ids == plain.task_ids
            assert pruned.objective == pytest.approx(plain.objective)

    def test_same_selection_on_mixed_certainty_facts(self, crowd):
        dist = correlated_distribution()
        for k in (2, 3, 4):
            plain = GreedySelector().select(dist, crowd, k)
            pruned = PruningGreedySelector().select(dist, crowd, k)
            assert pruned.task_ids == plain.task_ids
            assert pruned.objective == pytest.approx(plain.objective)

    def test_objective_equals_task_entropy(self, crowd):
        dist = correlated_distribution()
        result = PruningGreedySelector().select(dist, crowd, 3)
        assert result.objective == pytest.approx(
            crowd.task_entropy(dist, result.task_ids)
        )


class TestPruningEffect:
    def test_pruning_never_costs_extra_evaluations(self, crowd):
        dist = correlated_distribution(num_facts=10)
        k = 4
        plain = GreedySelector().select(dist, crowd, k)
        pruned = PruningGreedySelector().select(dist, crowd, k)
        total_considered = (
            pruned.stats.candidate_evaluations + pruned.stats.pruned_candidates
        )
        assert total_considered == plain.stats.candidate_evaluations
        assert pruned.stats.candidate_evaluations <= plain.stats.candidate_evaluations

    def test_final_iteration_marks_uncompetitive_facts(self, crowd):
        """With zero slack in the last iteration, strictly worse facts are marked pruned."""
        dist = correlated_distribution(num_facts=10)
        result = PruningGreedySelector().select(dist, crowd, 4)
        assert result.stats.pruned_facts > 0

    def test_pruned_facts_zero_when_all_candidates_tie(self, crowd):
        # With every fact identically uncertain, no candidate is ever strictly
        # worse than the best, so nothing gets marked.
        dist = JointDistribution.independent({f"f{i}": 0.5 for i in range(4)})
        result = PruningGreedySelector().select(dist, crowd, 2)
        assert result.stats.pruned_facts == 0

    def test_last_iteration_uses_zero_slack(self, crowd):
        """With k = 1 the slack is zero, so strictly worse candidates are marked pruned."""
        dist = correlated_distribution(num_facts=6)
        result = PruningGreedySelector().select(dist, crowd, 1)
        assert len(result.task_ids) == 1
        assert result.stats.pruned_facts > 0
