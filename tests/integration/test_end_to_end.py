"""Integration tests: raw observations → fusion → crowd refinement → metrics."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.engine import CrowdFusionEngine
from repro.core.selection import get_selector
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.qualification import QualificationTest
from repro.crowdsim.worker import WorkerPool
from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.datasets.flights import FlightCorpusConfig, generate_flight_corpus
from repro.evaluation.experiment import (
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.evaluation.metrics import classification_scores
from repro.fusion.crh import ModifiedCRH
from repro.fusion.majority import MajorityVote
from repro.fusion.pipeline import FusionPipeline, accuracy_against_gold


@pytest.fixture(scope="module")
def book_corpus():
    return generate_book_corpus(
        BookCorpusConfig(num_books=12, num_sources=14, seed=101)
    )


class TestBookPipeline:
    def test_fusion_then_refinement_improves_f1(self, book_corpus):
        problems = build_problems(
            book_corpus.database,
            book_corpus.gold,
            ModifiedCRH(),
            difficulties=book_corpus.difficulties,
            max_facts_per_entity=8,
        )
        config = ExperimentConfig(
            selector="greedy_prune_pre", k=2, budget_per_entity=12,
            worker_accuracy=0.9, seed=7,
        )
        result = run_quality_experiment(problems, config)
        assert result.final_point.f1 > result.initial_point.f1
        assert result.final_point.utility > result.initial_point.utility

    def test_crowd_refinement_beats_machine_only_accuracy(self, book_corpus):
        crh = ModifiedCRH()
        machine_accuracy = accuracy_against_gold(crh.run(book_corpus.database), book_corpus.gold)
        problems = build_problems(
            book_corpus.database, book_corpus.gold, crh, max_facts_per_entity=8
        )
        config = ExperimentConfig(
            selector="greedy_prune_pre", k=2, budget_per_entity=16,
            worker_accuracy=0.9, seed=13,
        )
        result = run_quality_experiment(problems, config)
        assert result.final_point.accuracy > machine_accuracy

    def test_single_book_engine_round_trip(self, book_corpus):
        pipeline = FusionPipeline(ModifiedCRH())
        per_entity = pipeline.priors_by_entity(book_corpus.database)
        isbn = book_corpus.books[0].isbn
        facts, prior = per_entity[isbn]
        gold = {fact_id: book_corpus.gold[fact_id] for fact_id in facts.fact_ids}

        platform = SimulatedPlatform(
            ground_truth=gold, workers=WorkerPool.homogeneous(20, 0.9, seed=3)
        )
        engine = CrowdFusionEngine(
            get_selector("greedy_prune_pre"), CrowdModel(0.9), budget=10, tasks_per_round=2
        )
        result = engine.run(prior, platform)
        scores = classification_scores(result.predicted_labels(), gold)
        baseline = classification_scores(prior.predicted_labels(), gold)
        assert scores.accuracy >= baseline.accuracy
        assert result.final_utility >= result.initial_utility - 1.0


class TestFlightPipeline:
    def test_flight_corpus_refinement(self):
        corpus = generate_flight_corpus(
            FlightCorpusConfig(num_flights=15, num_sources=10, seed=31)
        )
        problems = build_problems(
            corpus.database, corpus.gold, MajorityVote(), max_facts_per_entity=6
        )
        config = ExperimentConfig(
            selector="greedy", k=1, budget_per_entity=6, worker_accuracy=0.9, seed=5
        )
        result = run_quality_experiment(problems, config)
        assert result.final_point.f1 >= result.initial_point.f1


class TestCalibrationLoop:
    def test_qualification_estimate_feeds_crowd_model(self, book_corpus):
        """Estimate Pc from a pre-test, then run CrowdFusion with the estimate."""
        gold_sample = dict(list(book_corpus.gold.items())[:15])
        platform = SimulatedPlatform(
            ground_truth=book_corpus.gold,
            workers=WorkerPool.heterogeneous(30, mean_accuracy=0.85, spread=0.05, seed=17),
        )
        estimate = QualificationTest(gold_sample, repetitions=4).run(platform)
        assert 0.7 <= estimate.estimated_accuracy <= 1.0

        problems = build_problems(
            book_corpus.database, book_corpus.gold, ModifiedCRH(), max_facts_per_entity=6
        )
        config = ExperimentConfig(
            selector="greedy_prune_pre",
            k=2,
            budget_per_entity=8,
            worker_accuracy=0.85,
            assumed_accuracy=estimate.estimated_accuracy,
            seed=19,
        )
        result = run_quality_experiment(problems, config)
        assert result.final_point.utility > result.initial_point.utility
