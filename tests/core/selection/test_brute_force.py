"""Unit tests for the brute-force (OPT) selector."""

import itertools

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import BruteForceSelector
from repro.datasets.running_example import running_example_distribution


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


class TestBruteForce:
    def test_finds_global_optimum(self, crowd):
        dist = running_example_distribution()
        result = BruteForceSelector().select(dist, crowd, 2)
        best = max(
            crowd.task_entropy(dist, pair)
            for pair in itertools.combinations(dist.fact_ids, 2)
        )
        assert result.objective == pytest.approx(best)

    def test_running_example_best_pair(self, crowd):
        dist = running_example_distribution()
        result = BruteForceSelector().select(dist, crowd, 2)
        assert set(result.task_ids) == {"f1", "f4"}

    def test_k_equals_n_selects_everything(self, crowd):
        dist = running_example_distribution()
        result = BruteForceSelector().select(dist, crowd, 4)
        assert set(result.task_ids) == set(dist.fact_ids)

    def test_counts_candidate_evaluations(self, crowd):
        dist = running_example_distribution()
        result = BruteForceSelector().select(dist, crowd, 2)
        assert result.stats.candidate_evaluations == 6  # C(4, 2)

    def test_subset_guard_triggers(self, crowd):
        dist = JointDistribution.independent({f"f{i}": 0.5 for i in range(12)})
        selector = BruteForceSelector(max_subsets=10)
        with pytest.raises(RuntimeError):
            selector.select(dist, crowd, 5)

    def test_never_worse_than_greedy(self, crowd):
        from repro.core.selection import GreedySelector

        dist = JointDistribution.from_assignments(
            ("a", "b", "c"),
            {
                (False, False, False): 0.25,
                (True, True, False): 0.25,
                (False, True, True): 0.3,
                (True, False, True): 0.2,
            },
        )
        for k in (1, 2, 3):
            opt = BruteForceSelector().select(dist, crowd, k).objective
            greedy = GreedySelector().select(dist, crowd, k).objective
            assert opt >= greedy - 1e-9

    def test_exclusion_respected(self, crowd):
        dist = running_example_distribution()
        result = BruteForceSelector().select(dist, crowd, 2, exclude=["f1"])
        assert "f1" not in result.task_ids
