"""Persistent refinement sessions vs. the fresh-engine-per-round path.

The session's contract is *pure amortisation*: reusing one engine (and
reweighting its probability vector in place) across the rounds of a
multi-round run must select exactly the task sets — with objectives within
1e-9 — that rebuilding a fresh engine from the materialised posterior every
round selects.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.merging import merge_answers
from repro.core.query import Query
from repro.core.selection import (
    EntropyEngine,
    GreedySelector,
    LazyGreedySelector,
    PruningGreedySelector,
    QueryGreedySelector,
    RandomSelector,
    RefinementSession,
    SessionPool,
    get_selector,
)
from repro.exceptions import SelectionError


@st.composite
def coarse_distributions(draw, max_facts=5):
    """Random sparse joints with coarse rational masses (see engine tests)."""
    n = draw(st.integers(min_value=2, max_value=max_facts))
    fact_ids = tuple(f"f{i}" for i in range(n))
    size = 1 << n
    support = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=2,
            max_size=size,
            unique=True,
        )
    )
    masses = draw(
        st.lists(
            st.integers(min_value=1, max_value=40),
            min_size=len(support),
            max_size=len(support),
        )
    )
    return JointDistribution(fact_ids, dict(zip(support, map(float, masses))))


accuracies = st.sampled_from([0.6, 0.75, 0.8, 0.9])


def oracle(gold):
    """Deterministic answer provider: always the gold label."""

    def collect(task_ids):
        return AnswerSet.from_mapping({fact_id: gold[fact_id] for fact_id in task_ids})

    return collect


def run_fresh_path(distribution, crowd, selector, collect, budget, k):
    """The pre-session behaviour: a fresh selector/engine pass per round."""
    current = distribution
    task_sets = []
    objectives = []
    remaining = budget
    while remaining > 0:
        size = min(k, remaining, current.num_facts)
        selection = selector.select(current, crowd, size)
        if not selection.task_ids:
            break
        task_sets.append(selection.task_ids)
        objectives.append(selection.objective)
        current = merge_answers(current, collect(selection.task_ids), crowd)
        remaining -= len(selection.task_ids)
    return task_sets, objectives, current


class TestSessionEquivalence:
    @given(
        coarse_distributions(),
        accuracies,
        st.integers(min_value=1, max_value=3),
        st.sampled_from(["greedy", "greedy_lazy", "greedy_prune_pre"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_session_rounds_match_fresh_engine_rounds(self, dist, accuracy, k, name):
        crowd = CrowdModel(accuracy)
        gold = {fact_id: index % 2 == 0 for index, fact_id in enumerate(dist.fact_ids)}
        budget = 3 * k

        fresh_sets, fresh_objectives, fresh_final = run_fresh_path(
            dist, crowd, get_selector(name), oracle(gold), budget, k
        )
        engine = CrowdFusionEngine(
            get_selector(name), crowd, budget=budget, tasks_per_round=k
        )
        result = engine.run(dist, oracle(gold))

        assert [record.task_ids for record in result.rounds] == fresh_sets
        for record, objective in zip(result.rounds, fresh_objectives):
            assert record.selection_objective == pytest.approx(objective, abs=1e-9)
        assert result.final_distribution.allclose(fresh_final, tolerance=1e-9)

    @given(coarse_distributions(max_facts=4), st.integers(min_value=1, max_value=2))
    @settings(max_examples=25, deadline=None)
    def test_session_equivalence_under_heterogeneous_channels(self, dist, k):
        channel = PerFactChannelModel(
            0.8, {fact_id: 0.6 + 0.05 * index for index, fact_id in enumerate(dist.fact_ids)}
        )
        gold = {fact_id: True for fact_id in dist.fact_ids}
        budget = 2 * k

        fresh_sets, fresh_objectives, fresh_final = run_fresh_path(
            dist, channel, GreedySelector(), oracle(gold), budget, k
        )
        engine = CrowdFusionEngine(
            GreedySelector(), channel, budget=budget, tasks_per_round=k
        )
        result = engine.run(dist, oracle(gold))

        assert [record.task_ids for record in result.rounds] == fresh_sets
        for record, objective in zip(result.rounds, fresh_objectives):
            assert record.selection_objective == pytest.approx(objective, abs=1e-9)
        assert result.final_distribution.allclose(fresh_final, tolerance=1e-9)


class TestRefinementSession:
    def make_session(self, accuracy=0.8):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6, "c": 0.5})
        return dist, RefinementSession(dist, CrowdModel(accuracy))

    def test_initial_posterior_is_the_prior(self):
        dist, session = self.make_session()
        assert session.distribution is dist
        assert session.entropy() == pytest.approx(dist.entropy())
        assert session.marginals() == pytest.approx(dist.marginals())

    def test_merge_matches_merge_answers(self):
        dist, session = self.make_session()
        answers = AnswerSet.from_mapping({"a": True, "c": False})
        session.merge(answers)
        expected = merge_answers(dist, answers, CrowdModel(0.8))
        assert session.distribution.allclose(expected, tolerance=1e-12)
        assert session.rounds_merged == 1
        assert session.entropy() == pytest.approx(expected.entropy())
        assert session.predicted_labels() == expected.predicted_labels()

    def test_merge_invalidates_materialised_posterior(self):
        dist, session = self.make_session()
        before = session.distribution
        session.merge(AnswerSet.from_mapping({"a": True}))
        after = session.distribution
        assert after is not before
        assert after is session.distribution  # cached until the next merge

    def test_session_select_uses_selector(self):
        _, session = self.make_session()
        result = session.select(GreedySelector(), k=2)
        assert len(result.task_ids) == 2
        assert result.stats.elapsed_seconds >= 0.0

    def test_fallback_selector_works_with_sessions(self):
        _, session = self.make_session()
        result = RandomSelector(seed=3).select_with_session(session, 2)
        assert len(result.task_ids) == 2

    def test_exclude_validated_on_session_path(self):
        _, session = self.make_session()
        with pytest.raises(SelectionError):
            GreedySelector().select_with_session(session, 1, exclude=["nope"])

    def test_engine_survives_perfect_crowd_zero_rows(self):
        # Pc = 1 drives conflicting support rows to exactly zero mass; the
        # session must keep row alignment and still answer later rounds.
        dist, session = self.make_session(accuracy=1.0)
        session.merge(AnswerSet.from_mapping({"a": True}))
        assert session.marginal("a") == pytest.approx(1.0)
        expected = merge_answers(dist, AnswerSet.from_mapping({"a": True}), CrowdModel(1.0))
        assert session.distribution.allclose(expected, tolerance=1e-12)
        # A second round on the now-partially-zero support still works.
        session.merge(AnswerSet.from_mapping({"b": True}))
        assert session.marginal("b") == pytest.approx(1.0)

    def test_query_selector_reuses_matching_session(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6, "c": 0.5, "d": 0.45})
        query = Query.of(["a", "b"])
        session = RefinementSession(dist, CrowdModel(0.8), interest_ids=query.fact_ids)
        selector = QueryGreedySelector(query)
        from_session = selector.select_with_session(session, 2)
        from_fresh = selector.select(dist, CrowdModel(0.8), 2)
        assert from_session.task_ids == from_fresh.task_ids
        assert from_session.objective == pytest.approx(from_fresh.objective, abs=1e-12)

    def test_query_selector_falls_back_on_interest_mismatch(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6, "c": 0.5})
        session = RefinementSession(dist, CrowdModel(0.8))  # no interest cells
        selector = QueryGreedySelector(Query.of(["a"]))
        result = selector.select_with_session(session, 2)
        fresh = selector.select(dist, CrowdModel(0.8), 2)
        assert result.task_ids == fresh.task_ids


class TestEngineReweight:
    def test_reweight_validates_shape_and_values(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6})
        engine = EntropyEngine(dist, CrowdModel(0.8))
        with pytest.raises(SelectionError):
            engine.reweight(np.ones(3))
        with pytest.raises(SelectionError):
            engine.reweight(np.array([-1.0] * dist.support_size))
        with pytest.raises(SelectionError):
            engine.reweight(np.zeros(dist.support_size))

    def test_reweight_renormalises_and_clears_weighted_bits(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6})
        engine = EntropyEngine(dist, CrowdModel(0.8))
        before = engine.weighted_bits("a").sum()
        assert before == pytest.approx(0.3)
        weights = np.where(engine.bits("a") == 1, 2.0, 1.0)
        engine.reweight(weights)
        assert engine.probabilities.sum() == pytest.approx(1.0)
        after = engine.weighted_bits("a").sum()
        assert after == pytest.approx(0.6 / 1.3)
        assert engine.reweights == 1


class TestSessionPool:
    def test_pool_lifecycle(self):
        pool = SessionPool()
        dist = JointDistribution.independent({"a": 0.3, "b": 0.6})
        session = pool.add("book1", dist, CrowdModel(0.8))
        assert pool["book1"] is session
        assert "book1" in pool and len(pool) == 1
        assert pool.keys() == ("book1",)
        assert pool.total_utility() == pytest.approx(-dist.entropy())
        assert pool.predicted_labels() == dist.predicted_labels()

    def test_duplicate_and_missing_keys_rejected(self):
        pool = SessionPool()
        dist = JointDistribution.independent({"a": 0.3})
        pool.add("x", dist, CrowdModel(0.8))
        with pytest.raises(SelectionError):
            pool.add("x", dist, CrowdModel(0.8))
        with pytest.raises(SelectionError):
            pool["missing"]
