"""Random task selection — the baseline used in the paper's quality plots."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import SelectionResult, SelectionStats, TaskSelector


class RandomSelector(TaskSelector):
    """Select ``k`` distinct facts uniformly at random.

    Within one round a task can be selected only once (matching the
    evaluation's description of the random method); across rounds the same
    fact may be asked again.
    """

    name = "random"

    def __init__(self, seed: Optional[int] = None):
        self._rng = np.random.default_rng(seed)

    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        stats = SelectionStats(candidate_evaluations=0, iterations=1)
        chosen = self._rng.choice(len(candidates), size=k, replace=False)
        task_ids = tuple(candidates[index] for index in sorted(chosen))
        objective = crowd.task_entropy(distribution, task_ids)
        return SelectionResult(task_ids=task_ids, objective=objective, stats=stats)
