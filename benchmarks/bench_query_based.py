"""Section IV — query-based CrowdFusion.

The paper presents query-based selection analytically (no dedicated figure):
when only a subset of facts matters, selecting tasks that maximise
``Q(I | T) = H(T) − H(I, T)`` concentrates the budget on the facts of
interest and their correlated neighbours.  This benchmark quantifies that on
the flight corpus: for each flight we designate one claim as the fact of
interest and compare (a) standard CrowdFusion and (b) query-based
CrowdFusion under the same small budget, measuring the entropy remaining on
the facts of interest and the time per selection.
"""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.engine import CrowdFusionEngine
from repro.core.query import Query
from repro.core.selection import QueryGreedySelector, get_selector
from repro.correlation.builder import JointDistributionBuilder
from repro.correlation.rules import MutualExclusionRule
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.worker import WorkerPool
from repro.datasets.flights import FlightCorpusConfig, generate_flight_corpus
from repro.evaluation.reporting import format_table
from repro.fusion.majority import MajorityVote

from _bench_utils import write_result

BUDGET = 3
ACCURACY = 0.85

_RESULTS = {}


def _build_cases():
    corpus = generate_flight_corpus(
        FlightCorpusConfig(num_flights=20, num_sources=12, seed=71)
    )
    fusion = MajorityVote().run(corpus.database)
    cases = []
    for flight in corpus.flights:
        claims = corpus.claims_for_flight(flight.flight_id)
        if len(claims) < 3:
            continue
        marginals = {
            claim.claim_id: min(0.9, max(0.1, fusion.confidence(claim.claim_id)))
            for claim in claims
        }
        prior = JointDistributionBuilder(
            marginals,
            [MutualExclusionRule([c.claim_id for c in claims], strength=0.95)],
        ).build()
        gold = {claim.claim_id: corpus.gold[claim.claim_id] for claim in claims}
        # The fact of interest: the least supported claim (hardest to settle
        # from the machine prior alone).
        interest = min(claims, key=lambda claim: claim.support).claim_id
        cases.append((flight.flight_id, prior, gold, Query.of([interest])))
    return cases


CASES = _build_cases()


def _run_mode(mode):
    crowd = CrowdModel(ACCURACY)
    remaining_entropy = 0.0
    for index, (flight_id, prior, gold, query) in enumerate(CASES):
        platform = SimulatedPlatform(
            ground_truth=gold,
            workers=WorkerPool.homogeneous(15, ACCURACY, seed=1000 + index),
        )
        if mode == "query":
            selector = QueryGreedySelector(query)
        else:
            selector = get_selector("greedy_prune_pre")
        engine = CrowdFusionEngine(selector, crowd, budget=BUDGET, tasks_per_round=1)
        outcome = engine.run(prior, platform)
        remaining_entropy += outcome.final_distribution.marginalize(
            query.fact_ids
        ).entropy()
    return remaining_entropy


@pytest.mark.parametrize("mode", ["standard", "query"])
def test_query_based_refinement(benchmark, mode):
    """Benchmark a full pass over all flights for one selection mode."""
    remaining = benchmark.pedantic(
        _run_mode, args=(mode,), rounds=1, iterations=1, warmup_rounds=0
    )
    _RESULTS[mode] = remaining
    assert remaining >= 0.0


def test_query_report_and_shape(benchmark):
    """Query-based selection leaves no more FOI entropy than standard selection."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < 2:
        pytest.skip("mode benchmarks did not run")

    prior_entropy = sum(
        prior.marginalize(query.fact_ids).entropy()
        for _flight, prior, _gold, query in CASES
    )
    rows = [
        ["prior (no crowd)", prior_entropy],
        ["standard CrowdFusion", _RESULTS["standard"]],
        ["query-based CrowdFusion", _RESULTS["query"]],
    ]
    write_result(
        "query_based.txt",
        format_table(
            ["strategy", "total entropy remaining on facts of interest"], rows
        ),
    )

    assert _RESULTS["query"] <= _RESULTS["standard"] + 1e-6
    assert _RESULTS["query"] < prior_entropy
