"""Refinement-service benchmarks: multi-tenant throughput and latency.

Three scenarios for the ``service/*`` family of the shared selection
artifact, all driving the in-process :class:`RefinementService` (no sockets,
so the numbers isolate the service layer itself — queueing, batching,
caching — from TCP noise):

* **multi-tenant throughput** — N concurrent tenants each running a full
  select → post round loop; wall-clock, requests/sec, and the service's own
  selection-latency percentiles, with the per-tenant trajectories asserted
  identical to standalone serial sessions (the service must add overhead,
  never divergence);
* **merge batching** — one chatty tenant enqueueing whole waves of answer
  posts at once; the drainer must fold each wave into fewer executor hops
  than merges (``merge_batches < merges``);
* **shared-pool throughput** (``parallel`` marker) — the acceptance-style
  four-tenants-one-pool run, timed, with pool utilisation recorded.

Scenarios merge-append into ``benchmarks/results/BENCH_selection.json``
under ``service/*`` keys; schema in ``benchmarks/README.md``.
"""

import asyncio
import multiprocessing
import time

import numpy as np
import pytest

import _bench_utils  # noqa: F401  (sys.path setup for src/)

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.runtime import RuntimeOptions
from repro.core.selection import RefinementSession, get_selector
from repro.service import RefinementService

from bench_selection_hotpath import _record_scenarios

SELECTOR = "greedy_prune_pre"


def service_distribution(num_facts, support, seed):
    rng = np.random.default_rng(seed)
    masks = rng.choice(1 << num_facts, size=support, replace=False)
    probabilities = rng.uniform(0.05, 1.0, size=support)
    return JointDistribution(
        tuple(f"f{i}" for i in range(num_facts)),
        dict(zip((int(mask) for mask in masks), probabilities)),
    )


def scripted_answers(task_ids, round_index):
    return AnswerSet.from_mapping(
        {fact_id: (round_index + position) % 2 == 0
         for position, fact_id in enumerate(task_ids)}
    )


async def drive_tenant(service, session_id, tenant, rounds, k):
    trajectory = []
    for round_index in range(rounds):
        reply = await service.select_next(session_id, batch=k)
        await service.post_answers(
            session_id, scripted_answers(reply.task_ids, round_index + tenant)
        )
        trajectory.append(tuple(reply.task_ids))
    return trajectory


def standalone_trajectory(distribution, channel, tenant, rounds, k):
    session = RefinementSession(distribution, channel)
    selector = get_selector(SELECTOR)
    trajectory = []
    for round_index in range(rounds):
        result = session.select(selector, k)
        session.merge(scripted_answers(result.task_ids, round_index + tenant))
        trajectory.append(tuple(result.task_ids))
    return trajectory


def run_tenant_fleet(runtime, pools, tenants, rounds, k, num_facts, support):
    """One timed fleet run; returns (trajectories, wall_seconds, metrics)."""
    problems = [
        (service_distribution(num_facts, support, seed=50 + t), CrowdModel(0.8))
        for t in range(tenants)
    ]

    async def scenario():
        async with RefinementService(runtime, pools=pools) as service:
            sessions = []
            for prior, channel in problems:
                created = await service.create_session(
                    prior, channel, budget=rounds * k, selector=SELECTOR
                )
                sessions.append(created.session_id)
            started = time.perf_counter()
            trajectories = await asyncio.gather(
                *(
                    drive_tenant(service, session_id, tenant, rounds, k)
                    for tenant, session_id in enumerate(sessions)
                )
            )
            elapsed = time.perf_counter() - started
            return trajectories, elapsed, service.metrics()

    trajectories, elapsed, metrics = asyncio.run(scenario())
    for tenant, (prior, channel) in enumerate(problems):
        expected = standalone_trajectory(prior, channel, tenant, rounds, k)
        assert trajectories[tenant] == expected, (
            f"tenant {tenant} diverged from its standalone session"
        )
    return trajectories, elapsed, metrics, problems


def test_multi_tenant_throughput_serial_runtime():
    tenants, rounds, k = 4, 4, 2
    _, elapsed, metrics, problems = run_tenant_fleet(
        runtime=None, pools=1, tenants=tenants, rounds=rounds, k=k,
        num_facts=10, support=256,
    )

    # The non-service baseline: the same work as plain session loops.
    started = time.perf_counter()
    for tenant, (prior, channel) in enumerate(problems):
        standalone_trajectory(prior, channel, tenant, rounds, k)
    baseline = time.perf_counter() - started

    requests = tenants * rounds * 2  # one select + one post per round
    entry = {
        "suite": "service",
        "description": (
            f"{tenants} concurrent tenants x {rounds} select/post rounds "
            f"(k={k}) through the in-process async service (serial runtime), "
            "trajectories asserted identical to standalone sessions; "
            "baseline is the same work as plain session loops."
        ),
        "tenants": tenants,
        "rounds": rounds,
        "k": k,
        "num_facts": 10,
        "support": 256,
        "requests": requests,
        "wall_seconds": elapsed,
        "requests_per_second": requests / elapsed,
        "baseline_wall_seconds": baseline,
        "service_overhead_factor": elapsed / baseline if baseline > 0 else None,
        "merges_per_second": metrics["merges"]["per_second"],
        "selection_latency_ms": metrics["selections"]["latency"],
        "merge_latency_ms": metrics["merges"]["latency"],
        "identical_task_sequences": True,
    }
    _record_scenarios({f"service/tenants{tenants}_rounds{rounds}_serial": entry})


def test_merge_batching_folds_chatty_tenant_waves():
    waves, wave_size = 4, 6
    prior = service_distribution(10, 256, seed=60)

    async def scenario():
        async with RefinementService(max_pending=wave_size + 1) as service:
            created = await service.create_session(
                prior, CrowdModel(0.8), budget=waves * wave_size
            )
            fact_ids = prior.fact_ids
            started = time.perf_counter()
            for wave in range(waves):
                # A whole wave lands in the queue before the drainer wakes:
                # the batcher should fold it into far fewer executor hops.
                await asyncio.gather(
                    *(
                        service.post_answers(
                            created.session_id,
                            {fact_ids[(wave + i) % len(fact_ids)]: i % 2 == 0},
                        )
                        for i in range(wave_size)
                    )
                )
            elapsed = time.perf_counter() - started
            return elapsed, service.metrics()

    elapsed, metrics = asyncio.run(scenario())
    merges = metrics["merges"]["count"]
    batches = metrics["merges"]["batches"]
    assert merges == waves * wave_size
    assert batches < merges, "consecutive queued merges were not batched"

    entry = {
        "suite": "service",
        "description": (
            f"One chatty tenant posting {waves} waves of {wave_size} "
            "concurrent answer posts; the per-session drainer folds each "
            "wave's consecutive merges into single executor hops."
        ),
        "waves": waves,
        "wave_size": wave_size,
        "merges": merges,
        "merge_batches": batches,
        "merges_per_batch": merges / batches,
        "wall_seconds": elapsed,
        "merges_per_second": metrics["merges"]["per_second"],
    }
    _record_scenarios({"service/merge_batching_chatty_tenant": entry})


@pytest.mark.parallel
def test_multi_tenant_throughput_shared_pool():
    tenants, rounds, k = 4, 3, 2
    runtime = RuntimeOptions(workers=2, parallel_threshold=0)
    _, elapsed, metrics, _ = run_tenant_fleet(
        runtime=runtime, pools=1, tenants=tenants, rounds=rounds, k=k,
        num_facts=12, support=1 << 10,
    )
    assert multiprocessing.active_children() == []

    pools = metrics["pools"]
    assert pools["sessions_assigned"] == tenants
    requests = tenants * rounds * 2
    entry = {
        "suite": "service",
        "description": (
            f"{tenants} tenants multiplexed onto ONE shared 2-worker "
            f"persistent pool, {rounds} select/post rounds each (every scan "
            "forced parallel); trajectories identical to standalone serial "
            "sessions, no worker processes left after shutdown."
        ),
        "tenants": tenants,
        "rounds": rounds,
        "k": k,
        "num_facts": 12,
        "support": 1 << 10,
        "workers": 2,
        "pools": 1,
        "requests": requests,
        "wall_seconds": elapsed,
        "requests_per_second": requests / elapsed,
        "selection_latency_ms": metrics["selections"]["latency"],
        "pool_utilisation": pools,
        "identical_task_sequences": True,
    }
    _record_scenarios({f"service/tenants{tenants}_shared_pool_w2": entry})
