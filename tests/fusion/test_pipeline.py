"""Unit tests for the fusion → CrowdFusion pipeline glue."""

import pytest

from repro.exceptions import FusionError
from repro.fusion.claims import ClaimDatabase
from repro.fusion.crh import ModifiedCRH
from repro.fusion.majority import MajorityVote
from repro.fusion.pipeline import (
    FusionPipeline,
    FusionResult,
    accuracy_against_gold,
    claims_to_facts,
    fusion_prior,
)


def small_database():
    return ClaimDatabase.from_observations(
        [
            ("s1", "book1", "author_list", "Ada Lovelace"),
            ("s2", "book1", "author_list", "Ada Lovelace"),
            ("s3", "book1", "author_list", "Al Lovelace"),
            ("s1", "book2", "author_list", "Alan Turing"),
            ("s3", "book2", "author_list", "Allan Turing"),
        ]
    )


class TestFusionResult:
    def test_confidence_lookup(self):
        result = FusionResult("test", {"c1": 0.7})
        assert result.confidence("c1") == 0.7

    def test_unknown_claim_raises(self):
        with pytest.raises(FusionError):
            FusionResult("test", {}).confidence("c1")

    def test_labels_threshold(self):
        result = FusionResult("test", {"c1": 0.7, "c2": 0.3, "c3": 0.5})
        assert result.labels() == {"c1": True, "c2": False, "c3": False}
        assert result.labels(threshold=0.2) == {"c1": True, "c2": True, "c3": True}


class TestClaimsToFacts:
    def test_fact_fields_copied_from_claims(self):
        database = small_database()
        result = MajorityVote().run(database)
        facts = claims_to_facts(database.claims(), result)
        fact = facts["c1"]
        assert fact.subject == "book1"
        assert fact.predicate == "author_list"
        assert fact.obj == "Ada Lovelace"
        assert fact.prior == pytest.approx(2 / 3)

    def test_without_result_priors_are_none(self):
        database = small_database()
        facts = claims_to_facts(database.claims())
        assert all(fact.prior is None for fact in facts)

    def test_empty_claims_rejected(self):
        with pytest.raises(FusionError):
            claims_to_facts([])


class TestFusionPrior:
    def test_prior_marginals_are_clipped_confidences(self):
        database = small_database()
        result = MajorityVote().run(database)
        claims = database.claims()
        prior = fusion_prior(result, claims, clip=0.1)
        marginals = prior.marginals()
        for claim in claims:
            expected = min(0.9, max(0.1, result.confidence(claim.claim_id)))
            assert marginals[claim.claim_id] == pytest.approx(expected)

    def test_invalid_clip_rejected(self):
        database = small_database()
        result = MajorityVote().run(database)
        with pytest.raises(FusionError):
            fusion_prior(result, database.claims(), clip=0.6)

    def test_prior_fact_order_can_be_fixed(self):
        database = small_database()
        result = MajorityVote().run(database)
        claims = database.claims()
        order = tuple(reversed([claim.claim_id for claim in claims]))
        prior = fusion_prior(result, claims, fact_ids=order)
        assert prior.fact_ids == order


class TestFusionPipeline:
    def test_run_returns_consistent_artifacts(self):
        database = small_database()
        facts, prior, result = FusionPipeline(ModifiedCRH()).run(database)
        assert facts.fact_ids == prior.fact_ids
        assert set(result.confidences) == set(facts.fact_ids)

    def test_priors_by_entity_split(self):
        database = small_database()
        per_entity = FusionPipeline(MajorityVote()).priors_by_entity(database)
        assert set(per_entity) == {"book1", "book2"}
        facts_book1, prior_book1 = per_entity["book1"]
        assert len(facts_book1) == 2
        assert prior_book1.num_facts == 2


class TestAccuracyAgainstGold:
    def test_accuracy_counts_threshold_agreements(self):
        result = FusionResult("test", {"c1": 0.9, "c2": 0.2, "c3": 0.8})
        gold = {"c1": True, "c2": True, "c3": False}
        assert accuracy_against_gold(result, gold) == pytest.approx(1 / 3)

    def test_no_overlap_raises(self):
        result = FusionResult("test", {"c1": 0.9})
        with pytest.raises(FusionError):
            accuracy_against_gold(result, {"other": True})
