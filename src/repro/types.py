"""Shared typing aliases and small validators used across the library."""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

from repro.exceptions import InvalidCrowdModelError

#: A truth assignment over ``n`` facts, ordered by fact index.
TruthVector = Tuple[bool, ...]

#: Mapping from a fact identifier to a marginal probability of being true.
MarginalMap = Mapping[str, float]

#: A sequence of fact identifiers (e.g. a selected task set).
FactIds = Sequence[str]


def validate_accuracy(value: float, context: str = "accuracy") -> float:
    """Check one worker-correctness probability against Definition 2's range.

    Every accuracy the model consumes — shared crowd ``Pc``, per-worker base
    accuracy, per-domain skill, per-fact channel accuracy — must lie in
    ``[0.5, 1.0]``: below chance the crowd would be adversarial rather than
    noisy, above one it would not be a probability.  Returns the value as a
    plain ``float`` so dataclass fields normalise NumPy scalars.
    """
    if not 0.5 <= value <= 1.0:
        raise InvalidCrowdModelError(
            f"{context} must be in [0.5, 1.0], got {value}"
        )
    return float(value)
