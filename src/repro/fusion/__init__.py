"""Machine-only data-fusion / truth-discovery methods.

CrowdFusion refines the output of an existing fusion method; the paper
initialises with a modified CRH framework.  This subpackage provides the
claim/source data model and several classic fusion algorithms so the system
is self-contained:

* :class:`MajorityVote` — per data item, confidence proportional to support.
* :class:`ModifiedCRH` — the paper's initialiser: top-50 % majority labelling
  followed by CRH-style source-weight / truth iterations.
* :class:`TruthFinder` — Yin et al.'s iterative confidence propagation.
* :class:`BayesianVote` — ACCU-style Bayesian source-accuracy fusion.

All methods consume a :class:`ClaimDatabase` and produce a
:class:`FusionResult` mapping each claim to a confidence in ``[0, 1]``; the
:mod:`repro.fusion.pipeline` module converts that into the prior joint
distribution CrowdFusion starts from.
"""

from repro.fusion.accu import BayesianVote
from repro.fusion.claims import Claim, ClaimDatabase, Source
from repro.fusion.crh import ModifiedCRH
from repro.fusion.majority import MajorityVote
from repro.fusion.pipeline import FusionPipeline, FusionResult, fusion_prior
from repro.fusion.source_quality import source_accuracy, source_error_rates
from repro.fusion.truthfinder import TruthFinder

__all__ = [
    "BayesianVote",
    "Claim",
    "ClaimDatabase",
    "FusionPipeline",
    "FusionResult",
    "MajorityVote",
    "ModifiedCRH",
    "Source",
    "TruthFinder",
    "fusion_prior",
    "source_accuracy",
    "source_error_rates",
]
