"""Greedy selection with the Theorem-3 pruning rule.

Section III-E of the paper: while scanning candidates within one greedy
iteration, a fact ``f_j`` can be discarded *for the rest of the whole
selection* if even the most optimistic completion of a task set containing it
cannot beat the best candidate already seen.  The optimistic completion bound
uses sub-additivity of entropy:

``H(T ∪ {f_j} ∪ S) ≤ H(T ∪ {f_j}) + H(S) ≤ H(T ∪ {f_j}) + |S|``

where ``|S| = k − |T| − 1`` is the number of tasks still to be chosen and each
binary answer variable carries at most one bit.  (The paper prints the slack
as ``log(k − |T| − 1)``; the dimensionally sound bound for binary answers is
``k − |T| − 1`` bits, which is what we use — it is never smaller, so pruning
remains safe and the selected set is identical to plain greedy.)
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.greedy import GAIN_TOLERANCE
from repro.core.utility import crowd_entropy


class PruningGreedySelector(TaskSelector):
    """Algorithm 1 plus permanent candidate pruning (Theorem 3)."""

    name = "greedy_prune"

    def _select(
        self,
        distribution: JointDistribution,
        crowd: CrowdModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        stats = SelectionStats()
        selected: List[str] = []
        remaining = list(candidates)
        pruned: Set[str] = set()
        current_entropy = 0.0
        noise_entropy = crowd_entropy(crowd.accuracy)

        for _iteration in range(k):
            stats.iterations += 1
            slack_bits = float(k - len(selected) - 1)
            best_id = None
            best_entropy = float("-inf")
            newly_pruned: Set[str] = set()

            for fact_id in remaining:
                if fact_id in pruned:
                    stats.pruned_candidates += 1
                    continue
                stats.candidate_evaluations += 1
                entropy = crowd.task_entropy(distribution, selected + [fact_id])
                if entropy > best_entropy + TIE_TOLERANCE:
                    best_entropy = entropy
                    best_id = fact_id
                # Theorem 3: if even adding the remaining slack cannot reach the
                # current best, this fact can never be part of a better greedy
                # trajectory — drop it for all future iterations too.
                if entropy + slack_bits < best_entropy:
                    newly_pruned.add(fact_id)

            pruned.update(newly_pruned)
            stats.pruned_facts = len(pruned)
            if best_id is None:
                break
            gain = best_entropy - current_entropy - noise_entropy
            if gain <= GAIN_TOLERANCE:
                break
            selected.append(best_id)
            remaining.remove(best_id)
            current_entropy = best_entropy
            if not remaining:
                break

        return SelectionResult(
            task_ids=tuple(selected), objective=current_entropy, stats=stats
        )
