"""Qualification pre-tests for estimating crowd accuracy.

Section V-C of the paper recommends estimating the crowd's reliability with a
small set of sample tasks whose ground truth is known ("a pre-test with
groundtruth"), and notes that under- or over-estimating ``Pc`` degrades the
refinement.  :class:`QualificationTest` runs such a pre-test against a
simulated platform and returns a point estimate plus a Wilson confidence
interval, clipped into the model's legal range ``[0.5, 1.0]``.

Beyond the single pooled ``Pc``, the pre-test machinery also feeds the
heterogeneous channel models of :mod:`repro.core.crowd`:

* :func:`calibrate_worker_accuracies` pre-tests every worker of a pool
  individually, giving per-worker estimates whose pooled mean
  (:func:`pooled_accuracy`) is the calibrated default channel accuracy;
* :func:`calibrate_domain_accuracies` groups the gold sample by task domain
  and pre-tests each group through the platform, estimating one accuracy per
  domain — exactly the "workers reliable only in some domains" signal that
  :meth:`repro.core.crowd.CalibratedCrowdModel.from_domain_estimates` turns
  into per-fact channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.task import Task
from repro.crowdsim.worker import WorkerPool
from repro.exceptions import PlatformError


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> Tuple[float, float]:
    """Wilson score interval for a Bernoulli proportion.

    Returns ``(low, high)``; raises for zero trials.
    """
    if trials <= 0:
        raise PlatformError("cannot compute an interval for zero trials")
    if not 0 <= successes <= trials:
        raise PlatformError("successes must lie between 0 and trials")
    proportion = successes / trials
    denominator = 1 + z * z / trials
    centre = proportion + z * z / (2 * trials)
    margin = z * math.sqrt(
        (proportion * (1 - proportion) + z * z / (4 * trials)) / trials
    )
    return (centre - margin) / denominator, (centre + margin) / denominator


def estimate_accuracy(
    answers: Mapping[str, bool], gold: Mapping[str, bool]
) -> float:
    """Fraction of pre-test answers agreeing with gold, clipped to ``[0.5, 1.0]``.

    Clipping mirrors the crowd-model constraint that ``Pc ≥ 0.5``: a crowd
    measured below chance on a tiny sample is treated as an uninformative
    crowd, not an adversarial one.
    """
    if not answers:
        raise PlatformError("cannot estimate accuracy from zero answers")
    missing = [fact_id for fact_id in answers if fact_id not in gold]
    if missing:
        raise PlatformError(f"pre-test answers reference unlabelled facts: {missing}")
    correct = sum(1 for fact_id, judgment in answers.items() if gold[fact_id] == judgment)
    return min(1.0, max(0.5, correct / len(answers)))


@dataclass(frozen=True)
class QualificationResult:
    """Outcome of a qualification pre-test."""

    estimated_accuracy: float
    raw_accuracy: float
    sample_size: int
    interval_low: float
    interval_high: float


class QualificationTest:
    """Run a gold-label pre-test against a platform to estimate ``Pc``.

    Parameters
    ----------
    gold_facts:
        Mapping from fact id to gold label for the sample tasks.  These should
        be facts whose truth is certain (the "small set of sample tasks with
        groundtruth" of Definition 2).
    repetitions:
        How many times each sample task is asked; more repetitions tighten the
        estimate at a linear cost in tasks.
    """

    def __init__(self, gold_facts: Mapping[str, bool], repetitions: int = 1):
        if not gold_facts:
            raise PlatformError("a qualification test needs at least one gold fact")
        if repetitions <= 0:
            raise PlatformError(f"repetitions must be positive, got {repetitions}")
        self._gold = dict(gold_facts)
        self._repetitions = repetitions

    @property
    def sample_size(self) -> int:
        """Total number of pre-test tasks that will be asked."""
        return len(self._gold) * self._repetitions

    def run(self, platform: SimulatedPlatform) -> QualificationResult:
        """Ask the sample tasks and estimate the crowd accuracy."""
        fact_ids: Sequence[str] = tuple(self._gold)
        correct = 0
        total = 0
        for _ in range(self._repetitions):
            answers = platform.collect(fact_ids)
            for fact_id in fact_ids:
                total += 1
                if answers[fact_id] == self._gold[fact_id]:
                    correct += 1
        return _result_from_counts(correct, total)


def _result_from_counts(correct: int, total: int) -> QualificationResult:
    """Build a :class:`QualificationResult` from raw pre-test counts."""
    raw = correct / total
    low, high = wilson_interval(correct, total)
    return QualificationResult(
        estimated_accuracy=min(1.0, max(0.5, raw)),
        raw_accuracy=raw,
        sample_size=total,
        interval_low=low,
        interval_high=high,
    )


def calibrate_worker_accuracies(
    pool: WorkerPool,
    gold: Mapping[str, bool],
    repetitions: int = 1,
    seed: Optional[int] = None,
) -> Dict[str, QualificationResult]:
    """Pre-test every worker of a pool individually against gold tasks.

    Unlike :class:`QualificationTest` — which measures the *pool* through the
    platform's anonymous task routing — this routes the same gold sample to
    each worker separately, the way a real platform calibrates workers before
    admitting them.  Returns one :class:`QualificationResult` per worker id;
    feed the estimates to :func:`pooled_accuracy` for a calibrated default
    channel, or inspect them to blocklist unreliable workers.
    """
    if not gold:
        raise PlatformError("a qualification test needs at least one gold fact")
    if repetitions <= 0:
        raise PlatformError(f"repetitions must be positive, got {repetitions}")
    rng = np.random.default_rng(seed)
    estimates: Dict[str, QualificationResult] = {}
    for worker in pool:
        correct = 0
        total = 0
        for _ in range(repetitions):
            for fact_id, truth in gold.items():
                task = Task(
                    fact_id=fact_id,
                    question=f"Is the statement {fact_id!r} true?",
                    ground_truth=truth,
                )
                total += 1
                if worker.answer(task, truth, rng) == truth:
                    correct += 1
        estimates[worker.worker_id] = _result_from_counts(correct, total)
    return estimates


def pooled_accuracy(estimates: Mapping[str, QualificationResult]) -> float:
    """Mean of per-worker estimated accuracies, clipped to ``[0.5, 1.0]``.

    The single number a uniform selection channel would assume for a pool
    whose workers were calibrated individually.
    """
    if not estimates:
        raise PlatformError("cannot pool zero worker estimates")
    mean = sum(result.estimated_accuracy for result in estimates.values()) / len(
        estimates
    )
    return min(1.0, max(0.5, mean))


def calibrate_domain_accuracies(
    platform: SimulatedPlatform,
    gold: Mapping[str, bool],
    domains: Mapping[str, str],
    repetitions: int = 1,
) -> Dict[str, QualificationResult]:
    """Estimate one crowd accuracy per task domain from a gold pre-test.

    The gold sample is partitioned by the ``domains`` tagging (facts without
    a tag are ignored) and each partition is pre-tested through the platform,
    so domain-skilled worker pools show up as per-domain accuracy differences.
    The resulting mapping plugs straight into
    :meth:`repro.core.crowd.CalibratedCrowdModel.from_domain_estimates`.
    """
    by_domain: Dict[str, Dict[str, bool]] = {}
    for fact_id, truth in gold.items():
        domain = domains.get(fact_id)
        if domain is None:
            continue
        by_domain.setdefault(domain, {})[fact_id] = truth
    if not by_domain:
        raise PlatformError("no gold facts carry a domain tag")
    return {
        domain: QualificationTest(sample, repetitions=repetitions).run(platform)
        for domain, sample in sorted(by_domain.items())
    }
