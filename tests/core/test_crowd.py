"""Unit tests for the CrowdModel answer distributions."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import InvalidCrowdModelError, SelectionError


class TestCrowdModelBasics:
    def test_error_rate(self):
        assert CrowdModel(0.8).error_rate == pytest.approx(0.2)

    @pytest.mark.parametrize("bad", [0.49, 0.0, 1.1, -1.0])
    def test_invalid_accuracy_rejected(self, bad):
        with pytest.raises(InvalidCrowdModelError):
            CrowdModel(bad)

    def test_boundary_accuracies_allowed(self):
        assert CrowdModel(0.5).accuracy == 0.5
        assert CrowdModel(1.0).accuracy == 1.0

    def test_answer_likelihood(self):
        crowd = CrowdModel(0.8)
        assert crowd.answer_likelihood(2, 1) == pytest.approx(0.8 ** 2 * 0.2)
        assert crowd.answer_likelihood(0, 0) == pytest.approx(1.0)

    def test_answer_likelihood_negative_counts_rejected(self):
        with pytest.raises(InvalidCrowdModelError):
            CrowdModel(0.8).answer_likelihood(-1, 0)


class TestAnswerDistribution:
    def test_single_fact_perfect_crowd(self):
        dist = JointDistribution.independent({"a": 0.7})
        crowd = CrowdModel(1.0)
        answers = crowd.answer_distribution(dist, ["a"])
        assert answers.probability((True,)) == pytest.approx(0.7)

    def test_single_fact_noisy_crowd(self):
        dist = JointDistribution.independent({"a": 0.7})
        crowd = CrowdModel(0.8)
        answers = crowd.answer_distribution(dist, ["a"])
        # P(yes) = 0.7*0.8 + 0.3*0.2
        assert answers.probability((True,)) == pytest.approx(0.62)

    def test_answer_distribution_sums_to_one(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        answers = crowd.answer_distribution(dist, ["f1", "f3"])
        assert sum(p for _, p in answers.items()) == pytest.approx(1.0)

    def test_uninformative_crowd_gives_uniform_answers(self):
        dist = JointDistribution.independent({"a": 0.9, "b": 0.2})
        crowd = CrowdModel(0.5)
        answers = crowd.answer_distribution(dist, ["a", "b"])
        for _, probability in answers.items():
            assert probability == pytest.approx(0.25)

    def test_empty_task_set_rejected(self):
        dist = JointDistribution.independent({"a": 0.5})
        with pytest.raises(SelectionError):
            CrowdModel(0.8).answer_distribution(dist, [])

    def test_duplicate_tasks_rejected(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.5})
        with pytest.raises(SelectionError):
            CrowdModel(0.8).answer_distribution(dist, ["a", "a"])

    def test_task_entropy_matches_distribution_entropy(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        tasks = ["f1", "f2"]
        assert crowd.task_entropy(dist, tasks) == pytest.approx(
            crowd.answer_distribution(dist, tasks).entropy()
        )

    def test_noise_increases_answer_entropy(self):
        dist = JointDistribution.independent({"a": 0.9})
        noisy = CrowdModel(0.7).task_entropy(dist, ["a"])
        clean = CrowdModel(1.0).task_entropy(dist, ["a"])
        assert noisy > clean

    def test_full_answer_joint_covers_all_vectors(self):
        dist = running_example_distribution()
        table = CrowdModel(0.8).full_answer_joint(dist)
        assert table.support_size == 16
        assert sum(p for _, p in table.items()) == pytest.approx(1.0)


class TestJointFactAnswerEntropy:
    def test_empty_tasks_returns_interest_entropy(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        value = crowd.joint_fact_answer_entropy(dist, ["f1", "f2"], [])
        assert value == pytest.approx(dist.marginalize(["f1", "f2"]).entropy())

    def test_joint_entropy_at_least_interest_entropy(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        interest = ["f2", "f3"]
        h_interest = dist.marginalize(interest).entropy()
        h_joint = crowd.joint_fact_answer_entropy(dist, interest, ["f1"])
        assert h_joint >= h_interest - 1e-9

    def test_joint_entropy_at_least_task_entropy(self):
        dist = running_example_distribution()
        crowd = CrowdModel(0.8)
        tasks = ["f1", "f4"]
        h_tasks = crowd.task_entropy(dist, tasks)
        h_joint = crowd.joint_fact_answer_entropy(dist, ["f2"], tasks)
        assert h_joint >= h_tasks - 1e-9

    def test_perfect_crowd_asking_interest_fact_gives_interest_entropy(self):
        # With Pc=1 and T ⊆ I, H(I, T) = H(I) because answers are functions of I.
        dist = running_example_distribution()
        crowd = CrowdModel(1.0)
        value = crowd.joint_fact_answer_entropy(dist, ["f1", "f2"], ["f1"])
        assert value == pytest.approx(dist.marginalize(["f1", "f2"]).entropy())


class TestDenseTableGuards:
    def test_oversized_task_set_rejected(self):
        marginals = {f"f{i}": 0.5 for i in range(26)}
        dist = JointDistribution.independent(
            {k: marginals[k] for k in list(marginals)[:2]}
        )
        with pytest.raises(SelectionError):
            CrowdModel(0.8).answer_distribution(dist, [f"f{i}" for i in range(25)])

    def test_oversized_joint_table_rejected(self):
        import random

        rng = random.Random(0)
        num_facts = 26
        fact_ids = tuple(f"f{i}" for i in range(num_facts))
        masks = list({rng.getrandbits(num_facts) for _ in range(40)})
        dist = JointDistribution(
            fact_ids, {mask: rng.uniform(0.1, 1.0) for mask in masks}
        )
        crowd = CrowdModel(0.8)
        # ~40 interest cells x 2^24 answer vectors overflows the dense-table
        # cap and must fail fast instead of attempting a multi-GB allocation.
        with pytest.raises(SelectionError):
            crowd.joint_fact_answer_entropy(
                dist, [f"f{i}" for i in range(16, 26)], [f"f{i}" for i in range(24)]
            )
