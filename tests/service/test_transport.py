"""Wire-level suite: the JSON-lines transport and the typed client.

Boots a real loopback server per scenario and checks that the full
round-trip, typed error re-raising (wire code → same exception class on the
client side), and the transport's handling of garbage input all behave.
"""

import asyncio
import json

import pytest

from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.service import RefinementService, ServiceClient, serve
from repro.service.api import (
    BudgetExhaustedError,
    UnknownSessionError,
    ValidationFailedError,
    decode_channel,
    encode_channel,
)
from repro.service.transport import bound_port

from tests.core.selection.test_persistent_pool import dense_distribution


def run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(scenario):
    """Boot service + listener, run ``scenario(service, port)``, tear down."""
    service = RefinementService()
    server = await serve(service, port=0)
    try:
        return await scenario(service, bound_port(server))
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()


async def _raw_request(port, payload: str) -> dict:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write((payload + "\n").encode("utf-8"))
        await writer.drain()
        return json.loads(await reader.readline())
    finally:
        writer.close()
        await writer.wait_closed()


def test_client_round_trip_over_tcp():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=30)
        async with await ServiceClient.connect("127.0.0.1", port) as client:
            pong = await client.ping()
            assert pong["pong"] and pong["sessions_live"] == 0

            created = await client.create_session(prior, CrowdModel(0.8), budget=6)
            reply = await client.select_next(created.session_id, batch=2)
            report = await client.post_answers(
                created.session_id, {t: True for t in reply.task_ids}
            )
            assert report.rounds_merged == 1

            view = await client.get_posterior(created.session_id)
            assert view.fact_ids == prior.fact_ids
            restored = view.distribution()
            assert abs(sum(p for _, p in restored.items()) - 1.0) < 1e-9

            metrics = await client.metrics()
            assert metrics["sessions"]["live"] == 1

            closed = await client.close_session(created.session_id)
            assert closed.budget_spent == 2

    run(_with_server(scenario))


def test_sessions_survive_reconnection():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=31)
        async with await ServiceClient.connect("127.0.0.1", port) as first:
            created = await first.create_session(prior, CrowdModel(0.8), budget=6)
        # A brand-new connection can keep driving the same session.
        async with await ServiceClient.connect("127.0.0.1", port) as second:
            reply = await second.select_next(created.session_id, batch=1)
            assert reply.task_ids

    run(_with_server(scenario))


def test_typed_errors_cross_the_wire():
    async def scenario(service, port):
        prior = dense_distribution(5, 24, seed=32)
        async with await ServiceClient.connect("127.0.0.1", port) as client:
            with pytest.raises(UnknownSessionError):
                await client.select_next("s-424242")

            created = await client.create_session(prior, CrowdModel(0.8), budget=1)
            with pytest.raises(BudgetExhaustedError):
                await client.post_answers(
                    created.session_id, {f: True for f in prior.fact_ids[:3]}
                )
            with pytest.raises(ValidationFailedError):
                await client.post_answers(created.session_id, {"ghost": True})

    run(_with_server(scenario))


def test_malformed_requests_get_validation_errors_not_disconnects():
    async def scenario(service, port):
        assert (await _raw_request(port, "this is not json"))["error"][
            "code"
        ] == "validation_failed"
        assert (await _raw_request(port, '["a", "list"]'))["error"][
            "code"
        ] == "validation_failed"
        assert (await _raw_request(port, '{"op": "transmogrify"}'))["error"][
            "code"
        ] == "validation_failed"
        # The connection stays usable after an error on the same socket.
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(b"garbage\n")
            await writer.drain()
            first = json.loads(await reader.readline())
            writer.write(b'{"op": "ping"}\n')
            await writer.drain()
            second = json.loads(await reader.readline())
            assert not first["ok"] and second["ok"]
        finally:
            writer.close()
            await writer.wait_closed()

    run(_with_server(scenario))


def test_large_posterior_crosses_the_wire():
    # A realistic posterior (12 facts, 4096 support rows) serialises well
    # past asyncio's default 64 KiB readline limit in both directions: the
    # client ships it in create_session and reads it back in get_posterior,
    # so both endpoints must size their stream buffers from MAX_LINE_BYTES.
    async def scenario(service, port):
        prior = dense_distribution(12, 4096, seed=33)
        async with await ServiceClient.connect("127.0.0.1", port) as client:
            created = await client.create_session(prior, CrowdModel(0.8), budget=4)
            view = await client.get_posterior(created.session_id)
            assert len(view.support) == 4096
            assert len(json.dumps(view.to_payload())) > 64 * 1024
            assert abs(sum(p for _, p in view.support) - 1.0) < 1e-9

    run(_with_server(scenario))


def test_channel_codec_round_trips_heterogeneous_models():
    uniform = CrowdModel(0.85)
    per_fact = PerFactChannelModel(0.8, {"f1": 0.7, "f2": 0.9})
    for channel in (uniform, per_fact):
        restored = decode_channel(encode_channel(channel))
        assert type(restored) is type(channel)
        for fact_id in ("f1", "f2", "f9"):
            assert abs(
                restored.accuracy_for(fact_id) - channel.accuracy_for(fact_id)
            ) < 1e-12
