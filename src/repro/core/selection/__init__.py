"""Task-selection algorithms for CrowdFusion.

All selectors implement the :class:`repro.core.selection.base.TaskSelector`
interface and maximise the answer-set entropy ``H(T)`` (Equation 4), which is
equivalent to maximising the expected utility gain of one crowdsourcing round.

Available selectors (Section III & IV of the paper):

* :class:`BruteForceSelector` — the exact "OPT" baseline.
* :class:`GreedySelector` — Algorithm 1, the ``(1 − 1/e)`` approximation.
* :class:`LazyGreedySelector` — Algorithm 1 with CELF lazy evaluation of
  submodular marginal gains.
* :class:`PruningGreedySelector` — Algorithm 1 plus the Theorem-3 pruning rule.
* :class:`PreprocessingGreedySelector` — Algorithm 1 plus the answer-joint
  preprocessing and incremental partition refinement (Algorithm 2).
* :class:`PrunedPreprocessingGreedySelector` — both accelerations.
* :class:`RandomSelector` — the random baseline used in the evaluation.
* :class:`QueryGreedySelector` — query-based CrowdFusion (Section IV).
* :class:`ReferenceGreedySelector` — the seed's pure-Python greedy, kept for
  equivalence tests and old-vs-new benchmarks.

All non-reference selectors evaluate entropies through the shared vectorized
incremental :class:`EntropyEngine` — with uniform or heterogeneous per-task
channels — and can run either on a fresh engine per call or against a
persistent :class:`RefinementSession` that amortises one engine across the
rounds of a multi-round refinement (``TaskSelector.select_with_session``).
:class:`SessionPool` keys such sessions by entity for batched experiments.

The greedy family additionally accepts a :class:`ParallelPolicy`: candidate
scans past a work threshold are sharded across a fork-shared
``multiprocessing`` pool (:mod:`repro.core.selection.parallel`) with
selections bit-for-bit identical to the serial path, and sessions score many
queries in one batch off shared cached bit columns
(``RefinementSession.select_queries``).  A :class:`RefinementSession` built
with a parallel policy owns a *persistent* worker pool for its whole
multi-round run: reweighted posteriors are shipped to the long-lived workers
through a shared-memory snapshot ring (and channel swaps are replayed),
instead of the pool being re-forked after every merge.  The CELF lazy
selector shards its refresh loop in batch waves through the same evaluator.
"""

from repro.core.selection.base import SelectionResult, SelectionStats, TaskSelector
from repro.core.selection.brute_force import BruteForceSelector
from repro.core.selection.engine import EntropyEngine, SelectionState
from repro.core.selection.fact_entropy import FactEntropySelector
from repro.core.selection.greedy import GreedySelector
from repro.core.selection.lazy import LazyGreedySelector
from repro.core.selection.parallel import (
    ParallelEvaluator,
    ParallelPolicy,
    ParallelSelectorMixin,
)
from repro.core.selection.preprocessing import (
    PreprocessingGreedySelector,
    PrunedPreprocessingGreedySelector,
)
from repro.core.selection.pruning import PruningGreedySelector
from repro.core.selection.query_greedy import QueryGreedySelector
from repro.core.selection.random_selector import RandomSelector
from repro.core.selection.reference import ReferenceGreedySelector
from repro.core.selection.registry import available_selectors, get_selector
from repro.core.selection.session import RefinementSession, SessionPool

__all__ = [
    "BruteForceSelector",
    "EntropyEngine",
    "FactEntropySelector",
    "GreedySelector",
    "LazyGreedySelector",
    "ParallelEvaluator",
    "ParallelPolicy",
    "ParallelSelectorMixin",
    "PreprocessingGreedySelector",
    "PrunedPreprocessingGreedySelector",
    "PruningGreedySelector",
    "QueryGreedySelector",
    "RandomSelector",
    "ReferenceGreedySelector",
    "RefinementSession",
    "SelectionResult",
    "SelectionState",
    "SelectionStats",
    "SessionPool",
    "TaskSelector",
    "available_selectors",
    "get_selector",
]
