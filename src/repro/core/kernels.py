"""The kernel registry: one selection hot loop, three interchangeable tiers.

The per-candidate cost of one greedy iteration is a short fixed pipeline —
mask the probability vector to the candidate's true rows, group it by the
cached partition key, push the grouped table through the per-bit noise
channels, and take two entropies.  The :mod:`repro.core.selection.engine`
composes that pipeline from vectorized NumPy primitives; this module lets the
same engine swap the *implementation* of the pipeline without changing a
single selection:

``compiled``
    The loop bodies below JIT-compiled by :mod:`numba` (an optional extra:
    ``pip install .[compiled]``).  The whole per-candidate scan — masked
    bincount, channel butterflies, entropy accumulation — fuses into one
    native call with zero temporary arrays, which is where sub-millisecond
    greedy rounds at ``2^20`` supports come from.
``numpy``
    The existing vectorized primitives from :mod:`repro.core.entropy`,
    composed per step.  Always available; the default wherever numba is not
    importable.
``reference``
    The *same* loop bodies as ``compiled``, executed as plain Python.  Slow,
    but dependency-free — it exists so the compiled algorithm is testable
    (and equivalence-gated against the numpy tier) on hosts without numba.

Tier selection happens at :class:`~repro.core.selection.engine.EntropyEngine`
construction through :attr:`repro.core.runtime.RuntimeOptions.kernel`:
``auto`` (the default) resolves to ``compiled`` when numba is importable and
JIT is not disabled, else ``numpy``; the ``REPRO_KERNEL`` environment
variable overrides the auto choice, and an explicit ``compiled`` request on a
numba-less host degrades to ``numpy`` with a one-time log line — never an
import error.

Numerical contract: every tier's selections are identical and its entropies
agree within 1e-9.  The masked bincount accumulates in support order exactly
like ``np.bincount``; the channel butterflies perform the same two-point
convolution per (pair, axis) as the ``accuracy * x + error * flip(x)``
NumPy kernels; only the final entropy reductions may differ from NumPy's
pairwise summation at the ~1e-16 level, far inside the engines' 1e-9 gate
and the selectors' tie tolerances.
"""

from __future__ import annotations

import logging
import math
import os
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.entropy import (
    bsc_transform_rows,
    channel_transform_rows,
    popcount_array,
)
from repro.exceptions import CrowdFusionError

logger = logging.getLogger(__name__)

#: The implementation tiers, fastest first.
KERNEL_TIERS = ("compiled", "numpy", "reference")

#: Valid values of ``RuntimeOptions.kernel`` / ``--kernel`` / ``REPRO_KERNEL``.
KERNEL_CHOICES = ("auto",) + KERNEL_TIERS

#: Environment variable overriding the ``auto`` tier choice.
KERNEL_ENV_VAR = "REPRO_KERNEL"


# -- njit-compatible loop bodies ----------------------------------------------------
#
# Each function below is written in the scalar-loop subset numba's nopython
# mode compiles directly: the ``compiled`` tier is literally
# ``njit(function)``, and the ``reference`` tier is the same object executed
# by CPython.  They are self-contained on purpose (the channel butterfly is
# inlined rather than shared) so each compiles as a single unit.


def _popcount_impl(values):
    """Per-element popcount of an int64 array (Kernighan clears)."""
    counts = np.zeros(values.shape[0], dtype=np.int64)
    for index in range(values.shape[0]):
        value = values[index]
        count = 0
        while value:
            value &= value - 1
            count += 1
        counts[index] = count
    return counts


def _bsc_transform_rows_impl(matrix, num_bits, accuracy):
    """Loop form of :func:`repro.core.entropy.bsc_transform_rows`.

    In-place butterflies on a copy: for each bit axis, every column pair
    ``(a, a | bit)`` becomes ``(acc·x + err·y, acc·y + err·x)`` — exactly the
    per-element arithmetic of ``accuracy * m + error * flip(m, axis)``.
    """
    result = matrix.copy()
    if num_bits == 0 or accuracy == 1.0:
        return result
    error = 1.0 - accuracy
    groups = result.shape[0]
    stride = result.shape[1]
    for axis in range(1, num_bits + 1):
        bit = 1 << (num_bits - axis)
        for group in range(groups):
            for column in range(stride):
                if column & bit == 0:
                    x = result[group, column]
                    y = result[group, column | bit]
                    result[group, column] = accuracy * x + error * y
                    result[group, column | bit] = accuracy * y + error * x
    return result


def _channel_transform_rows_impl(matrix, accuracies):
    """Loop form of :func:`repro.core.entropy.channel_transform_rows`.

    ``accuracies[i]`` belongs to the task at bit ``i`` of the column index
    (least-significant-bit first); identity channels are skipped, and equal
    accuracies reproduce :func:`_bsc_transform_rows_impl` bit for bit.
    """
    result = matrix.copy()
    num_bits = accuracies.shape[0]
    groups = result.shape[0]
    stride = result.shape[1]
    for axis in range(1, num_bits + 1):
        accuracy = accuracies[num_bits - axis]
        if accuracy == 1.0:
            continue
        error = 1.0 - accuracy
        bit = 1 << (num_bits - axis)
        for group in range(groups):
            for column in range(stride):
                if column & bit == 0:
                    x = result[group, column]
                    y = result[group, column | bit]
                    result[group, column] = accuracy * x + error * y
                    result[group, column | bit] = accuracy * y + error * x
    return result


def _refine_partition_impl(projection, bits, cell_index, width):
    """Fused partition refinement: new projection and bincount key in one pass.

    Integer-only (bit-identical to the vectorized
    ``(projection << 1) | bits`` / ``(cell << width) | projection`` pair).
    """
    rows = projection.shape[0]
    refined = np.empty(rows, dtype=np.int64)
    combined = np.empty(rows, dtype=np.int64)
    for index in range(rows):
        value = (projection[index] << 1) | np.int64(bits[index])
        refined[index] = value
        combined[index] = (cell_index[index] << width) | value
    return refined, combined


def _extension_scan_impl(
    combined,
    bits,
    probabilities,
    table,
    num_cells,
    width,
    bit_accuracies,
    uniform_accuracy,
    candidate_accuracy,
):
    """The fused per-candidate conditional-entropy scan.

    One pass produces ``(H(T ∪ {f}), H(I, T ∪ {f}))`` for a candidate fact:

    1. masked bincount — the candidate's true mass grouped by the cached
       ``(cell << width) | projection`` key (support order, like
       ``np.bincount``);
    2. channel butterflies over the selected bits (``uniform_accuracy`` when
       non-negative, else per-bit ``bit_accuracies``, LSB first);
    3. the candidate's own 2×2 channel, with the false-branch mass recovered
       by linearity from the state's cached ``table`` (clamped at zero like
       the NumPy path);
    4. entropy accumulation, summing cell-marginalised columns only when the
       engine actually partitions by facts of interest.
    """
    stride = np.int64(1) << width
    size = np.int64(num_cells) * stride
    grouped = np.zeros(size, dtype=np.float64)
    for row in range(combined.shape[0]):
        if bits[row] != 0:
            grouped[combined[row]] += probabilities[row]
    for axis in range(1, width + 1):
        if uniform_accuracy >= 0.0:
            accuracy = uniform_accuracy
        else:
            accuracy = bit_accuracies[width - axis]
        if accuracy == 1.0:
            continue
        error = 1.0 - accuracy
        bit = np.int64(1) << (width - axis)
        for cell in range(num_cells):
            base = cell * stride
            for column in range(stride):
                if column & bit == 0:
                    low = base + column
                    high = low + bit
                    x = grouped[low]
                    y = grouped[high]
                    grouped[low] = accuracy * x + error * y
                    grouped[high] = accuracy * y + error * x
    error = 1.0 - candidate_accuracy
    joint_entropy = 0.0
    column_false = np.zeros(stride, dtype=np.float64)
    column_true = np.zeros(stride, dtype=np.float64)
    for cell in range(num_cells):
        base = cell * stride
        for column in range(stride):
            mass_true = grouped[base + column]
            mass_false = table[base + column] - mass_true
            if mass_false < 0.0:
                mass_false = 0.0
            answer_true = candidate_accuracy * mass_true + error * mass_false
            answer_false = error * mass_true + candidate_accuracy * mass_false
            if answer_false > 0.0:
                joint_entropy -= answer_false * math.log2(answer_false)
            if answer_true > 0.0:
                joint_entropy -= answer_true * math.log2(answer_true)
            if num_cells > 1:
                column_false[column] += answer_false
                column_true[column] += answer_true
    if num_cells == 1:
        return joint_entropy, joint_entropy
    task_entropy = 0.0
    for column in range(stride):
        value = column_false[column]
        if value > 0.0:
            task_entropy -= value * math.log2(value)
        value = column_true[column]
        if value > 0.0:
            task_entropy -= value * math.log2(value)
    return task_entropy, joint_entropy


# -- the registry -------------------------------------------------------------------


@dataclass(frozen=True)
class KernelSet:
    """One resolved tier: the callables an :class:`EntropyEngine` dispatches to.

    ``extension_scan`` and ``refine_partition`` are ``None`` on the ``numpy``
    tier — the engine then composes the scan from its per-step vectorized
    primitives exactly as before this module existed — and fused loop kernels
    on the ``compiled`` and ``reference`` tiers.
    """

    tier: str
    popcount: Callable
    bsc_transform_rows: Callable
    channel_transform_rows: Callable
    extension_scan: Optional[Callable]
    refine_partition: Optional[Callable]


_KERNEL_SETS: "dict[str, KernelSet]" = {}
_WARMED: "set[str]" = set()
#: One-time flag for the compiled→numpy degradation log line.
_fallback_logged = False


def _import_numba():
    """Import hook for :mod:`numba`; tests monkeypatch this to simulate CI
    hosts without the optional extra."""
    import numba

    return numba


def jit_disabled() -> bool:
    """Whether the ``NUMBA_DISABLE_JIT`` escape hatch is active.

    With JIT disabled numba runs ``njit`` bodies as plain Python — strictly
    slower than the numpy tier — so the registry treats it like a missing
    dependency and resolves to ``numpy``.
    """
    return os.environ.get("NUMBA_DISABLE_JIT", "").strip() not in ("", "0")


def numba_available() -> bool:
    """Whether the compiled tier can actually JIT on this host."""
    if jit_disabled():
        return False
    try:
        _import_numba()
    except Exception:
        return False
    return True


def _log_fallback_once(reason: str) -> None:
    global _fallback_logged
    if _fallback_logged:
        return
    _fallback_logged = True
    logger.warning(
        "compiled kernel tier unavailable (%s); falling back to the numpy "
        "tier — selections are identical, per-candidate scans are slower",
        reason,
    )


def _build_tier(tier: str) -> KernelSet:
    if tier == "numpy":
        return KernelSet(
            tier="numpy",
            popcount=popcount_array,
            bsc_transform_rows=bsc_transform_rows,
            channel_transform_rows=channel_transform_rows,
            extension_scan=None,
            refine_partition=None,
        )
    if tier == "reference":
        return KernelSet(
            tier="reference",
            popcount=_popcount_impl,
            bsc_transform_rows=_bsc_transform_rows_impl,
            channel_transform_rows=_channel_transform_rows_impl,
            extension_scan=_extension_scan_impl,
            refine_partition=_refine_partition_impl,
        )
    numba = _import_numba()
    jit = numba.njit(cache=True, nogil=True)
    return KernelSet(
        tier="compiled",
        popcount=jit(_popcount_impl),
        bsc_transform_rows=jit(_bsc_transform_rows_impl),
        channel_transform_rows=jit(_channel_transform_rows_impl),
        extension_scan=jit(_extension_scan_impl),
        refine_partition=jit(_refine_partition_impl),
    )


def resolve_kernels(kernel: str = "auto") -> KernelSet:
    """Resolve a tier request (``auto``/``compiled``/``numpy``/``reference``).

    ``auto`` honours the ``REPRO_KERNEL`` environment variable, then detects
    numba.  A host that cannot compile — numba missing, or
    ``NUMBA_DISABLE_JIT`` set — degrades every ``compiled`` request to
    ``numpy`` with a one-time log line; it never raises an import error.
    """
    choice = (kernel or "auto").strip().lower()
    if choice not in KERNEL_CHOICES:
        raise CrowdFusionError(
            f"kernel must be one of {KERNEL_CHOICES}, got {kernel!r}"
        )
    if choice == "auto":
        override = os.environ.get(KERNEL_ENV_VAR, "").strip().lower()
        if override and override != "auto":
            if override not in KERNEL_TIERS:
                raise CrowdFusionError(
                    f"{KERNEL_ENV_VAR} must be one of {KERNEL_CHOICES}, "
                    f"got {override!r}"
                )
            choice = override
        else:
            choice = "compiled" if numba_available() else "numpy"
    if choice == "compiled" and not numba_available():
        _log_fallback_once(
            "NUMBA_DISABLE_JIT is set" if jit_disabled() else "numba is not importable"
        )
        choice = "numpy"
    cached = _KERNEL_SETS.get(choice)
    if cached is None:
        cached = _build_tier(choice)
        _KERNEL_SETS[choice] = cached
    return cached


def warmup(kernels: KernelSet) -> None:
    """Force-compile every kernel of a tier on tiny inputs (idempotent).

    Called by the parallel evaluators immediately before forking a worker
    pool so the JIT cost is paid exactly once in the parent — workers inherit
    the compiled machine code through copy-on-write memory instead of each
    stalling on its own compilation.  The numpy tier has nothing to compile;
    the reference tier runs the same calls for free, keeping one code path.
    """
    if kernels.tier in _WARMED:
        return
    if kernels.extension_scan is not None:
        combined = np.zeros(2, dtype=np.int64)
        bits = np.array([1, 0], dtype=np.int8)
        probabilities = np.array([0.5, 0.5], dtype=np.float64)
        table = np.ones(1, dtype=np.float64)
        accuracies = np.empty(0, dtype=np.float64)
        kernels.extension_scan(
            combined, bits, probabilities, table, 1, 0, accuracies, 0.9, 0.9
        )
        kernels.refine_partition(
            np.zeros(2, dtype=np.int64), bits, combined, 1
        )
        kernels.popcount(np.array([3], dtype=np.int64))
        matrix = np.ones((1, 2), dtype=np.float64)
        kernels.bsc_transform_rows(matrix, 1, 0.9)
        kernels.channel_transform_rows(matrix, np.array([0.9], dtype=np.float64))
    _WARMED.add(kernels.tier)


def default_tier() -> str:
    """The tier ``auto`` resolves to on this host (for stats and CLI output)."""
    return resolve_kernels("auto").tier


def _reset_for_tests() -> None:
    """Drop cached tiers, warmup marks and the one-time fallback flag."""
    global _fallback_logged
    _KERNEL_SETS.clear()
    _WARMED.clear()
    _fallback_logged = False
