"""Sparse joint distributions over binary fact assignments.

A :class:`JointDistribution` is the paper's "output set with probabilities"
(Table II): a probability distribution over complete truth assignments of an
ordered set of facts.  We store only the support (assignments with non-zero
probability) as a mapping from bitmask to probability, which keeps entropy,
marginalisation and Bayesian updates linear in the support size — the same
``|O|`` the paper's complexity analysis is written in.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.assignment import Assignment, mask_from_bools, project_mask
from repro.core.bitplanes import pack_masks, unpack_planes
from repro.core.entropy import entropy_bits, project_columns
from repro.exceptions import InvalidDistributionError, InvalidFactError

#: Supports at least this large use the contiguous-array fast path for
#: entropy, marginals and marginalisation; smaller ones stay on the dict path
#: (array construction would dominate).
_VECTOR_MIN_SUPPORT = 32


def entropy_of(probabilities: Iterable[float]) -> float:
    """Shannon entropy (base 2) of an iterable of probabilities.

    Zero-probability terms contribute nothing; the input is assumed to sum
    to one (callers normalise first).
    """
    total = 0.0
    for p in probabilities:
        if p > 0.0:
            total -= p * math.log2(p)
    return total


class JointDistribution:
    """A normalised probability distribution over truth assignments.

    Parameters
    ----------
    fact_ids:
        Ordered fact identifiers; position ``j`` maps to bit ``j`` of the
        assignment bitmasks.
    probabilities:
        Mapping from assignment bitmask to (possibly unnormalised) probability
        mass.  Masks must lie in ``[0, 2**n)``; negative masses are rejected.
    normalise:
        When true (the default), the masses are rescaled to sum to one.
    """

    __slots__ = ("_fact_ids", "_positions", "_probs", "_arrays", "_planes")

    def __init__(
        self,
        fact_ids: Sequence[str],
        probabilities: Mapping[int, float],
        normalise: bool = True,
    ):
        if not fact_ids:
            raise InvalidDistributionError("a distribution needs at least one fact")
        self._fact_ids: Tuple[str, ...] = tuple(fact_ids)
        if len(set(self._fact_ids)) != len(self._fact_ids):
            raise InvalidDistributionError("fact ids must be unique")
        self._positions: Dict[str, int] = {
            fact_id: position for position, fact_id in enumerate(self._fact_ids)
        }

        limit = 1 << len(self._fact_ids)
        cleaned: Dict[int, float] = {}
        total = 0.0
        for mask, probability in probabilities.items():
            if not 0 <= mask < limit:
                raise InvalidDistributionError(
                    f"assignment mask {mask} out of range for {len(self._fact_ids)} facts"
                )
            if math.isnan(probability) or probability < 0.0:
                raise InvalidDistributionError(
                    f"probability for mask {mask} must be non-negative, got {probability}"
                )
            # Only exactly-zero mass is dropped: an absolute epsilon cutoff
            # biases conditioned marginals when the support mixes very large
            # and very small (but real) masses.
            if probability > 0.0:
                cleaned[mask] = cleaned.get(mask, 0.0) + probability
                total += probability
        if not cleaned or total <= 0.0:
            raise InvalidDistributionError("distribution has no probability mass")

        if normalise:
            self._probs = {mask: p / total for mask, p in cleaned.items()}
        else:
            if abs(total - 1.0) > 1e-6:
                raise InvalidDistributionError(
                    f"probabilities sum to {total:.6f}, expected 1.0 "
                    "(pass normalise=True to rescale)"
                )
            self._probs = dict(cleaned)
        self._arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._planes: Optional[np.ndarray] = None

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_assignments(
        cls,
        fact_ids: Sequence[str],
        assignments: Mapping[Union[Tuple[bool, ...], Assignment], float],
        normalise: bool = True,
    ) -> "JointDistribution":
        """Build a distribution from explicit truth-tuples (or Assignments)."""
        probs: Dict[int, float] = {}
        width = len(fact_ids)
        for key, probability in assignments.items():
            if isinstance(key, Assignment):
                if key.width != width:
                    raise InvalidDistributionError(
                        f"assignment width {key.width} does not match {width} facts"
                    )
                mask = key.mask
            else:
                if len(key) != width:
                    raise InvalidDistributionError(
                        f"assignment tuple of length {len(key)} does not match {width} facts"
                    )
                mask = mask_from_bools(key)
            probs[mask] = probs.get(mask, 0.0) + probability
        return cls(fact_ids, probs, normalise=normalise)

    @classmethod
    def independent(
        cls, marginals: Mapping[str, float], fact_ids: Optional[Sequence[str]] = None
    ) -> "JointDistribution":
        """Build the product distribution from per-fact marginal probabilities.

        ``marginals`` maps each fact id to ``P(fact is true)``.  ``fact_ids``
        fixes the positional order; by default it is the iteration order of
        ``marginals``.
        """
        ids = tuple(fact_ids) if fact_ids is not None else tuple(marginals)
        for fact_id in ids:
            if fact_id not in marginals:
                raise InvalidDistributionError(f"missing marginal for fact {fact_id!r}")
            p = marginals[fact_id]
            if not 0.0 <= p <= 1.0:
                raise InvalidDistributionError(
                    f"marginal for {fact_id!r} must be in [0, 1], got {p}"
                )
        probs: Dict[int, float] = {0: 1.0}
        for position, fact_id in enumerate(ids):
            p_true = marginals[fact_id]
            updated: Dict[int, float] = {}
            for mask, mass in probs.items():
                if p_true > 0.0:
                    updated[mask | (1 << position)] = (
                        updated.get(mask | (1 << position), 0.0) + mass * p_true
                    )
                if p_true < 1.0:
                    updated[mask] = updated.get(mask, 0.0) + mass * (1.0 - p_true)
            probs = updated
        return cls(ids, probs)

    @classmethod
    def uniform(cls, fact_ids: Sequence[str]) -> "JointDistribution":
        """Build the uniform distribution over all ``2**n`` assignments."""
        n = len(fact_ids)
        if n > 20:
            raise InvalidDistributionError(
                "refusing to materialise a uniform distribution over more than 2^20 outputs"
            )
        mass = 1.0 / (1 << n)
        return cls(fact_ids, {mask: mass for mask in range(1 << n)})

    # -- basic accessors ----------------------------------------------------------

    @property
    def fact_ids(self) -> Tuple[str, ...]:
        """Ordered fact identifiers covered by this distribution."""
        return self._fact_ids

    @property
    def num_facts(self) -> int:
        """Number of facts (bits per assignment)."""
        return len(self._fact_ids)

    @property
    def support_size(self) -> int:
        """Number of assignments with non-zero probability (``|O|`` in the paper)."""
        return len(self._probs)

    def position(self, fact_id: str) -> int:
        """Return the bit position of ``fact_id``."""
        try:
            return self._positions[fact_id]
        except KeyError:
            raise InvalidFactError(f"unknown fact id {fact_id!r}") from None

    def positions(self, fact_ids: Sequence[str]) -> Tuple[int, ...]:
        """Return bit positions for several fact ids, preserving order."""
        return tuple(self.position(fact_id) for fact_id in fact_ids)

    def probability(self, assignment: Union[int, Assignment, Sequence[bool]]) -> float:
        """Return the probability of a full assignment (0.0 if outside the support)."""
        if isinstance(assignment, Assignment):
            mask = assignment.mask
        elif isinstance(assignment, int):
            mask = assignment
        else:
            mask = mask_from_bools(assignment)
        return self._probs.get(mask, 0.0)

    def items(self) -> Iterator[Tuple[int, float]]:
        """Iterate over ``(mask, probability)`` pairs of the support."""
        return iter(self._probs.items())

    def support(self) -> Tuple[int, ...]:
        """Return the assignment masks in the support."""
        return tuple(self._probs)

    def as_dict(self) -> Dict[int, float]:
        """Return a copy of the underlying ``mask -> probability`` mapping."""
        return dict(self._probs)

    def assignments(self) -> Iterator[Tuple[Assignment, float]]:
        """Iterate over ``(Assignment, probability)`` pairs of the support."""
        width = self.num_facts
        for mask, probability in self._probs.items():
            yield Assignment(mask=mask, width=width), probability

    # -- contiguous-array fast path ------------------------------------------------

    def support_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the support as aligned ``(masks, probabilities)`` NumPy arrays.

        The arrays are built once and cached (the distribution is immutable);
        they are marked read-only because callers share the cache.  Masks of
        distributions past 63 facts do not fit ``int64`` and are stored as an
        object array of Python ints — slower, but every bit-wise consumer
        keeps working (projections onto task sets stay small and are always
        re-packed into ``int64``).
        """
        if self._arrays is None:
            count = len(self._probs)
            mask_dtype = np.int64 if self.num_facts <= 63 else object
            masks = np.fromiter(self._probs.keys(), dtype=mask_dtype, count=count)
            probs = np.fromiter(self._probs.values(), dtype=np.float64, count=count)
            masks.setflags(write=False)
            probs.setflags(write=False)
            self._arrays = (masks, probs)
        return self._arrays

    def support_planes(self) -> np.ndarray:
        """Return the support as packed ``(rows, ceil(n/64))`` uint64 bit planes.

        Row ``i`` packs the same assignment as ``support_arrays()[0][i]``
        (same alignment contract), with bit ``j`` of word ``w`` holding fact
        bit ``64w + j`` — the wide-fact representation every engine kernel
        stays vectorized on (see :mod:`repro.core.bitplanes`).  Built once
        and cached read-only; distributions constructed through
        :meth:`from_packed_arrays` carry their planes from birth.
        """
        if self._planes is None:
            if self._arrays is not None or self.num_facts <= 63:
                source = self.support_arrays()[0]
            else:
                # Pack straight from the dict keys: building the legacy
                # object-dtype mask array first would materialise the very
                # representation the planes exist to avoid.
                source = self._probs.keys()
            planes = pack_masks(source, self.num_facts)
            planes.setflags(write=False)
            self._planes = planes
        return self._planes

    def support_probabilities(self) -> np.ndarray:
        """The probability column of :meth:`support_arrays`, masks not required.

        Wide-fact consumers (the packed-plane engine path) call this instead
        of :meth:`support_arrays` so a 64+-fact hot path never materialises
        the object-dtype mask column at all.  Dict iteration order is stable,
        so the result is aligned with :meth:`support_planes` rows and with a
        later :meth:`support_arrays` call.
        """
        if self._arrays is not None:
            return self._arrays[1]
        if self.num_facts <= 63:
            return self.support_arrays()[1]
        probs = np.fromiter(
            self._probs.values(), dtype=np.float64, count=len(self._probs)
        )
        probs.setflags(write=False)
        return probs

    def _use_arrays(self) -> bool:
        return self._arrays is not None or len(self._probs) >= _VECTOR_MIN_SUPPORT

    # -- information-theoretic quantities ------------------------------------------

    def entropy(self) -> float:
        """Shannon entropy ``H(F)`` of the joint distribution, in bits."""
        if self._use_arrays():
            return entropy_bits(self.support_arrays()[1])
        return entropy_of(self._probs.values())

    def marginal(self, fact_id: str) -> float:
        """Marginal probability that ``fact_id`` is true: ``P(f_k) = Σ_{o ∈ O_k} P(o)``."""
        position = self.position(fact_id)
        if self._use_arrays():
            masks, probs = self.support_arrays()
            return float(probs[(masks >> position & 1).astype(bool)].sum())
        return sum(p for mask, p in self._probs.items() if mask >> position & 1)

    def marginals(self) -> Dict[str, float]:
        """Marginal truth probabilities of every fact."""
        if self._use_arrays():
            masks, probs = self.support_arrays()
            return {
                fact_id: float(probs[(masks >> position & 1).astype(bool)].sum())
                for position, fact_id in enumerate(self._fact_ids)
            }
        totals = [0.0] * self.num_facts
        for mask, probability in self._probs.items():
            for position in range(self.num_facts):
                if mask >> position & 1:
                    totals[position] += probability
        return dict(zip(self._fact_ids, totals))

    def marginalize(self, fact_ids: Sequence[str]) -> "JointDistribution":
        """Return the joint distribution restricted to ``fact_ids`` (marginalising the rest)."""
        if not fact_ids:
            raise InvalidDistributionError("cannot marginalise onto an empty fact set")
        positions = self.positions(fact_ids)
        if self._use_arrays() and len(positions) <= 24:
            masks, probs = self.support_arrays()
            projected = project_columns(masks, positions)
            grouped = np.bincount(projected, weights=probs, minlength=1 << len(positions))
            kept = np.nonzero(grouped)[0]
            sub_probs = dict(zip(kept.tolist(), grouped[kept].tolist()))
            return JointDistribution(fact_ids, sub_probs, normalise=True)
        probs_map: Dict[int, float] = {}
        for mask, probability in self._probs.items():
            sub = project_mask(mask, positions)
            probs_map[sub] = probs_map.get(sub, 0.0) + probability
        return JointDistribution(fact_ids, probs_map, normalise=True)

    def condition(self, evidence: Mapping[str, bool]) -> "JointDistribution":
        """Condition the distribution on known truth values of some facts.

        Raises :class:`InvalidDistributionError` if the evidence has zero
        probability under the current distribution.
        """
        if not evidence:
            return self.copy()
        checks = [(self.position(fact_id), value) for fact_id, value in evidence.items()]
        if self._use_arrays():
            masks, probs = self.support_arrays()
            keep = np.ones(masks.shape[0], dtype=bool)
            for position, value in checks:
                keep &= (masks >> position & 1).astype(bool) == value
            if not keep.any():
                raise InvalidDistributionError(
                    "conditioning evidence has zero probability under this distribution"
                )
            probs_map = dict(zip(masks[keep].tolist(), probs[keep].tolist()))
            return JointDistribution(self._fact_ids, probs_map, normalise=True)
        probs_map = {}
        for mask, probability in self._probs.items():
            if all(bool(mask >> position & 1) == value for position, value in checks):
                probs_map[mask] = probability
        if not probs_map:
            raise InvalidDistributionError(
                "conditioning evidence has zero probability under this distribution"
            )
        return JointDistribution(self._fact_ids, probs_map, normalise=True)

    def reweight(self, weights: Mapping[int, float]) -> "JointDistribution":
        """Multiply each support point's mass by ``weights[mask]`` and renormalise.

        Missing masks get weight 1.0.  This is the primitive used by Bayesian
        answer merging (Equation 3).
        """
        probs = {
            mask: probability * weights.get(mask, 1.0)
            for mask, probability in self._probs.items()
        }
        return JointDistribution(self._fact_ids, probs, normalise=True)

    def reweight_array(self, weights: np.ndarray) -> "JointDistribution":
        """Vectorised :meth:`reweight` with weights aligned to :meth:`support_arrays`.

        ``weights[i]`` multiplies the mass of ``support_arrays()[0][i]``; the
        result is renormalised.  This is the fast Bayesian-update path used by
        answer merging.
        """
        masks, probs = self.support_arrays()
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != probs.shape:
            raise InvalidDistributionError(
                f"expected {probs.shape[0]} weights aligned to the support, "
                f"got {weights.shape}"
            )
        if np.isnan(weights).any() or (weights < 0.0).any():
            raise InvalidDistributionError("weights must be non-negative numbers")
        return self.from_support_arrays(self._fact_ids, masks, probs * weights)

    @classmethod
    def from_support_arrays(
        cls, fact_ids: Sequence[str], masks: np.ndarray, masses: np.ndarray
    ) -> "JointDistribution":
        """Build a distribution from aligned arrays of unique masks and masses.

        The trusted-input constructor behind :meth:`reweight_array` and the
        refinement sessions' posterior materialisation: it skips the per-item
        Python validation loop of ``__init__`` — callers must guarantee the
        masks are unique and in range — but keeps the zero-mass filtering and
        normalisation semantics (masses may be unnormalised; rows with exactly
        zero mass are dropped).
        """
        keep = masses > 0.0
        if not keep.any():
            raise InvalidDistributionError("distribution has no probability mass")
        if not keep.all():
            masks = masks[keep]
            masses = masses[keep]
        masses = masses / masses.sum()
        instance = cls.__new__(cls)
        instance._fact_ids = tuple(fact_ids)
        instance._positions = {
            fact_id: position for position, fact_id in enumerate(instance._fact_ids)
        }
        instance._probs = dict(zip(masks.tolist(), masses.tolist()))
        instance._arrays = None
        instance._planes = None
        return instance

    @classmethod
    def from_packed_arrays(
        cls, fact_ids: Sequence[str], planes: np.ndarray, masses: np.ndarray
    ) -> "JointDistribution":
        """Build a distribution from packed uint64 bit planes and masses.

        The wide-fact counterpart of :meth:`from_support_arrays`: ``planes``
        rows (see :mod:`repro.core.bitplanes`) must be unique assignments;
        masses may be unnormalised, and exactly-zero rows are dropped.  The
        planes are adopted as the cached :meth:`support_planes` value, so
        generators (``datasets.scale``) hand the engine its vectorized
        representation without ever round-tripping through Python ints on
        the hot path.
        """
        masses = np.asarray(masses, dtype=np.float64)
        keep = masses > 0.0
        if not keep.any():
            raise InvalidDistributionError("distribution has no probability mass")
        if not keep.all():
            planes = planes[keep]
            masses = masses[keep]
        masses = masses / masses.sum()
        planes = np.ascontiguousarray(planes, dtype=np.uint64)
        planes.setflags(write=False)
        instance = cls.__new__(cls)
        instance._fact_ids = tuple(fact_ids)
        instance._positions = {
            fact_id: position for position, fact_id in enumerate(instance._fact_ids)
        }
        instance._probs = dict(
            zip(unpack_planes(planes).tolist(), masses.tolist())
        )
        instance._arrays = None
        instance._planes = planes
        return instance

    # -- decisions -----------------------------------------------------------------

    def map_assignment(self) -> Assignment:
        """Return the maximum-a-posteriori assignment."""
        best_mask = max(self._probs, key=lambda mask: self._probs[mask])
        return Assignment(mask=best_mask, width=self.num_facts)

    def predicted_labels(self, threshold: float = 0.5) -> Dict[str, bool]:
        """Threshold the per-fact marginals into boolean labels.

        A fact is predicted true when its marginal probability is strictly
        greater than ``threshold`` (ties go to false, matching the
        "needs positive evidence" convention used in the evaluation).
        """
        return {
            fact_id: probability > threshold
            for fact_id, probability in self.marginals().items()
        }

    # -- utilities -----------------------------------------------------------------

    def copy(self) -> "JointDistribution":
        """Return an independent copy of this distribution."""
        return JointDistribution(self._fact_ids, dict(self._probs), normalise=True)

    def allclose(self, other: "JointDistribution", tolerance: float = 1e-9) -> bool:
        """Return whether two distributions agree on fact order and probabilities."""
        if self._fact_ids != other._fact_ids:
            return False
        masks = set(self._probs) | set(other._probs)
        return all(
            abs(self._probs.get(mask, 0.0) - other._probs.get(mask, 0.0)) <= tolerance
            for mask in masks
        )

    def __repr__(self) -> str:
        return (
            f"JointDistribution(facts={len(self._fact_ids)}, "
            f"support={len(self._probs)}, entropy={self.entropy():.4f})"
        )
