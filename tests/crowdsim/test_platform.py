"""Unit tests for the simulated crowdsourcing platform and tasks."""

import pytest

from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.task import Task, TaskBatch
from repro.crowdsim.worker import WorkerPool
from repro.exceptions import PlatformError

GOLD = {"f1": True, "f2": False, "f3": True, "f4": True}


def make_platform(accuracy=1.0, seed=0, **kwargs):
    return SimulatedPlatform(
        ground_truth=GOLD,
        workers=WorkerPool.homogeneous(10, accuracy, seed=seed),
        **kwargs,
    )


class TestTask:
    def test_invalid_difficulty_rejected(self):
        with pytest.raises(PlatformError):
            Task("f1", "q", difficulty=0.7)

    def test_empty_fact_id_rejected(self):
        with pytest.raises(PlatformError):
            Task("", "q")


class TestTaskBatch:
    def test_from_fact_ids(self):
        batch = TaskBatch.from_fact_ids(1, ["f1", "f2"])
        assert len(batch) == 2
        assert batch.fact_ids == ("f1", "f2")

    def test_empty_batch_rejected(self):
        with pytest.raises(PlatformError):
            TaskBatch(batch_id=1, tasks=())

    def test_duplicate_fact_rejected(self):
        with pytest.raises(PlatformError):
            TaskBatch.from_fact_ids(1, ["f1", "f1"])

    def test_misaligned_questions_rejected(self):
        with pytest.raises(PlatformError):
            TaskBatch.from_fact_ids(1, ["f1", "f2"], questions=["only one"])


class TestSimulatedPlatform:
    def test_requires_gold_labels(self):
        with pytest.raises(PlatformError):
            SimulatedPlatform(ground_truth={}, workers=WorkerPool.homogeneous(3, 0.8))

    def test_invalid_answers_per_task(self):
        with pytest.raises(PlatformError):
            make_platform(answers_per_task=0)

    def test_publish_and_collect_batch(self):
        platform = make_platform()
        batch_id = platform.publish(["f1", "f2"])
        answers = platform.collect_batch(batch_id)
        assert answers.judgments() == {"f1": True, "f2": False}

    def test_collect_batch_is_cached(self):
        platform = make_platform(accuracy=0.6, seed=9)
        batch_id = platform.publish(["f1", "f2", "f3"])
        first = platform.collect_batch(batch_id)
        second = platform.collect_batch(batch_id)
        assert first == second
        assert platform.stats().answers_collected == 3

    def test_publish_empty_batch_rejected(self):
        with pytest.raises(PlatformError):
            make_platform().publish([])

    def test_publish_unlabelled_fact_rejected(self):
        with pytest.raises(PlatformError):
            make_platform().publish(["f1", "zzz"])

    def test_collect_unknown_batch_rejected(self):
        with pytest.raises(PlatformError):
            make_platform().collect_batch(99)

    def test_one_step_collect(self):
        platform = make_platform()
        answers = platform.collect(["f3", "f4"])
        assert answers.judgments() == {"f3": True, "f4": True}

    def test_perfect_workers_always_match_gold(self):
        platform = make_platform(accuracy=1.0)
        for _ in range(5):
            answers = platform.collect(list(GOLD))
            assert answers.judgments() == GOLD

    def test_noisy_workers_make_mistakes_at_expected_rate(self):
        platform = make_platform(accuracy=0.7, seed=11)
        total = 0
        correct = 0
        for _ in range(300):
            answers = platform.collect(list(GOLD))
            for fact_id, judgment in answers.judgments().items():
                total += 1
                correct += judgment == GOLD[fact_id]
        assert correct / total == pytest.approx(0.7, abs=0.04)

    def test_difficulty_lowers_effective_accuracy(self):
        difficulties = {"f1": 0.4}
        platform = make_platform(accuracy=0.9, seed=13, difficulties=difficulties)
        correct_hard = 0
        correct_easy = 0
        rounds = 400
        for _ in range(rounds):
            answers = platform.collect(["f1", "f3"])
            correct_hard += answers["f1"] == GOLD["f1"]
            correct_easy += answers["f3"] == GOLD["f3"]
        assert correct_easy / rounds > correct_hard / rounds

    def test_majority_aggregation_beats_single_answer(self):
        single = make_platform(accuracy=0.7, seed=17)
        voted = make_platform(accuracy=0.7, seed=17, answers_per_task=5)
        rounds = 300
        single_correct = sum(
            single.collect(["f1"])["f1"] == GOLD["f1"] for _ in range(rounds)
        )
        voted_correct = sum(
            voted.collect(["f1"])["f1"] == GOLD["f1"] for _ in range(rounds)
        )
        assert voted_correct > single_correct

    def test_stats_counts(self):
        platform = make_platform()
        platform.collect(["f1", "f2"])
        platform.collect(["f3"])
        stats = platform.stats()
        assert stats.batches_published == 2
        assert stats.tasks_published == 3
        assert stats.answers_collected == 3

    def test_ground_truth_copy(self):
        platform = make_platform()
        copy = platform.ground_truth
        copy["f1"] = False
        assert platform.ground_truth["f1"] is True
