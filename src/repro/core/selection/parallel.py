"""Parallel shared-memory candidate evaluation for greedy selection.

One greedy iteration of Algorithm 1 scores every remaining candidate against
the same :class:`~repro.core.selection.engine.EntropyEngine` state — a pure
read-only array pass per candidate (one grouped ``np.bincount`` plus one
channel transform), with no shared mutable state.  That makes the candidate
scan embarrassingly parallel, and on scale corpora (supports past ``2^20``,
hundreds of candidate facts) the scan is the system bottleneck the paper's
Table V measures.

This module shards the scan across a ``multiprocessing`` pool:

* **Fork-inherited shared memory** — the pool is created with the ``fork``
  start method *after* the live engine has been published to a module global,
  so every worker inherits the engine's read-only state (support masks,
  probability vector, cached per-fact bit columns, interest cells) via
  copy-on-write pages.  Nothing about the support is ever pickled; the only
  data crossing process boundaries are fact-id chunks going out and float
  entropies coming back.
* **State replay instead of state shipping** — the incremental
  :class:`~repro.core.selection.engine.SelectionState` grows by one task per
  iteration, and shipping its arrays (``O(|O|)`` per iteration) would undo
  the sharing.  Workers instead keep their own state and replay the parent's
  ``extend`` calls from the selected-task prefix — one extension per
  iteration, the cost of a single candidate evaluation.  Because ``extend``
  is deterministic over the shared arrays, the replayed state is bit-for-bit
  the parent's state, so every worker-computed entropy is exactly the float
  the serial scan would have produced.
* **Chunked dispatch with an auto-serial policy** — candidates are dispatched
  in order-preserving chunks (several per worker, for load balance), and a
  :class:`ParallelPolicy` decides per iteration whether parallelism pays at
  all: below a work threshold (candidates × support rows) the evaluator
  reports "serial" and the caller runs the ordinary in-process scan, so
  small Table-V-sized rounds never pay the fork or IPC overhead.

* **Persistent pools across rounds** — a fork is only free of state shipping
  while the engine's posterior matches the fork-time snapshot, which is why
  the per-call evaluator re-forks after every ``EntropyEngine.reweight``.
  The *persistent* mode instead keeps one pool alive for a whole multi-round
  refinement run and ships each round's posterior through a
  :class:`multiprocessing.shared_memory` ring of probability snapshots
  (:class:`_SnapshotRing`): the parent writes the reweighted (already
  normalised) vector into the next ring slot, and every dispatch carries a
  tiny generation header ``(reweights, slot, channel_swaps, channel)``.  A
  worker whose inherited engine is behind copies the snapshot byte for byte
  (:meth:`EntropyEngine.load_probabilities` — no renormalisation, so all
  later float operations stay bit-identical to the parent's) and replays any
  ``set_channel`` swap (adaptive re-calibration) from the header, then
  rebuilds its selection state exactly as on first contact.  Fork cost is
  paid once per run instead of once per round.

* **Multiplexed pools across engines** — a persistent pool still binds one
  fork pool to one engine, which on a multi-tenant server means one pool per
  live session.  An :class:`EvaluatorPool` instead multiplexes *many* engines
  onto one shared persistent fork pool: every attached engine gets a small
  integer **engine id** and its own snapshot ring, workers inherit the whole
  ``{engine id: engine}`` registry at fork time, and each dispatch header
  carries the engine id alongside the generation counters, so one worker
  pool serves interleaved rounds of any number of refinement sessions.
  Engines attached *after* the fork mark the pool stale; the next dispatch
  re-forks once with the full registry (one fork per tenant-join wave,
  amortised over every tenant's rounds, instead of one pool per tenant).
  Per-engine selection states are replayed exactly as in the single-engine
  persistent mode, so scores stay bit-for-bit serial-identical.

Selection results are **bit-for-bit identical** to the serial path by
construction: the parallel evaluator returns one entropy per candidate in
candidate order, and the caller replays the exact serial ranking loop
(same ``TIE_TOLERANCE`` first-index-wins comparison, same pruning bound)
over those values.
"""

from __future__ import annotations

import atexit
import logging
import math
import multiprocessing
import os
import signal
import threading
import time
import warnings
import weakref
from dataclasses import dataclass
from functools import partial
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.crowd import ChannelModel
from repro.core.selection.base import SelectionResult
from repro.core.selection.engine import EntropyEngine, SelectionState
from repro.exceptions import SelectionError
from repro.testing import faults

_LOGGER = logging.getLogger("repro.selection.parallel")

#: Default auto-serial threshold, in work units of candidates × support rows.
#: One unit is roughly one support-row visit; forking a pool costs on the
#: order of millions of row visits, so below ~2^22 units the serial scan wins
#: (the Table-V hot path — tens of candidates over a few-thousand-row support
#: — sits orders of magnitude under it and never leaves the serial path).
DEFAULT_PARALLEL_THRESHOLD = 1 << 22

#: Chunks dispatched per worker per iteration when no explicit chunk size is
#: configured: more than one for load balance (candidate costs vary with the
#: cached-partition width), few enough that IPC stays negligible.
_CHUNKS_PER_WORKER = 4

#: Slots in a persistent pool's shared-memory snapshot ring.  ``pool.map`` is
#: synchronous, so one slot would suffice for correctness; a small ring keeps
#: the parent from overwriting the page a straggling worker is still reading
#: if dispatch ever becomes asynchronous.
_SNAPSHOT_SLOTS = 4

#: Published engine the pool workers inherit at fork time.  Set by
#: :meth:`ParallelEvaluator._ensure_pool` immediately before the fork and
#: cleared right after: the parent never keeps a module-level reference, the
#: children each keep their inherited copy.
_FORK_ENGINE: Optional[EntropyEngine] = None

#: Published snapshot ring of a *persistent* pool, inherited the same way.
#: The underlying shared-memory mapping is ``MAP_SHARED``, so parent writes
#: after the fork are visible to every worker.
_FORK_RING: Optional["_SnapshotRing"] = None

#: Per-worker replayed selection state (lives only in pool worker processes).
_WORKER_STATE: Optional[SelectionState] = None

#: Published engine registry of a *multiplexed* pool (:class:`EvaluatorPool`),
#: inherited the same way: workers keep their fork-time copy of every
#: attached engine, keyed by the engine id shipped in each dispatch header.
_FORK_ENGINES: Optional[Dict[int, EntropyEngine]] = None

#: Published per-engine snapshot rings of a multiplexed pool.
_FORK_RING_MAP: Optional[Dict[int, "_SnapshotRing"]] = None

#: Per-worker replayed selection states of a multiplexed pool, one per engine
#: id (lives only in pool worker processes).
_WORKER_STATES: Dict[int, SelectionState] = {}

#: Serialises every set-globals → fork → clear-globals sequence across *all*
#: :class:`ParallelEvaluator` and :class:`EvaluatorPool` instances.  The
#: per-instance locks are not enough: a multi-pool service dispatches from
#: several executor threads, and two pools forking concurrently would race on
#: the module globals above — pool B overwriting (or clearing) them between
#: pool A publishing its registry and A's fork completing, so A's workers
#: could inherit B's engines under A's per-pool engine ids and silently score
#: another tenant's posterior.
_FORK_PUBLISH_LOCK = threading.Lock()


def fork_available() -> bool:
    """Whether this platform can share engine state via the ``fork`` method."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerSyncError(SelectionError):
    """A pool worker found its fork-inherited state unusable for a dispatch.

    Raised *inside* workers when the fork contract is broken: no inherited
    engine (the worker was respawned by the pool's maintenance thread rather
    than our supervised fork), no snapshot ring, or a generation header that
    advanced the channel generation without shipping the channel model (a
    torn/corrupt header).  The supervisor treats it exactly like a worker
    death — rebuild the pool — because the worker's state cannot be trusted
    to produce serial-identical scores.
    """


class WorkerCrashError(SelectionError):
    """Parent-side verdict that a supervised dispatch cannot complete.

    Covers a worker process found dead mid-dispatch (sentinel exitcode), a
    dispatch exceeding its configured timeout (hung/blackholed worker), and a
    :class:`WorkerSyncError` surfacing through the result queue.  Internal to
    the supervisor: callers never see it — the pool is rebuilt and the
    dispatch retried, or the circuit breaker degrades the scan to serial.
    """


# ---------------------------------------------------------------------------------------
# Shared-memory leak guard.
#
# A snapshot ring's /dev/shm segment is normally unlinked by ``close()`` when
# the owning evaluator/pool shuts down.  A parent killed by SIGTERM (container
# stop, supervisor restart) never reaches that path — SIGTERM's default
# disposition skips ``atexit`` entirely — and would orphan one segment per
# live ring until the resource tracker complains at its own exit.  Every ring
# registers itself here at creation; the guard reaps whatever is still alive
# at interpreter exit *and* on SIGTERM (chaining to the previous handler so
# embedding applications keep their own shutdown behaviour).
#
# Both paths are owner-pid-guarded: pool workers fork-inherit the registry
# and the signal handler, and ``Pool.terminate`` SIGTERMs them — without the
# pid check a dying worker would unlink the parent's *live* segment out from
# under every other worker.
# ---------------------------------------------------------------------------------------

_LIVE_RINGS: "weakref.WeakSet[_SnapshotRing]" = weakref.WeakSet()
#: Objects with a ``reap_on_shutdown()`` method that must run alongside the
#: ring reap — the experiment orchestrator registers its shard-process pool
#: here, so a SIGTERM'd orchestrator leaks neither shard workers nor rings.
_LIVE_REAPERS: "weakref.WeakSet" = weakref.WeakSet()
_GUARD_PID: Optional[int] = None
_PREV_SIGTERM = None


def register_shutdown_reaper(reaper) -> None:
    """Run ``reaper.reap_on_shutdown()`` at interpreter exit and on SIGTERM.

    The same owner-pid-guarded lifecycle as the snapshot rings: only the
    registering process ever runs the reap (fork children inherit the
    registry but their pid check makes it a no-op), and the registry holds
    weak references so a reaper that is garbage collected simply drops out.
    Child-process supervisors (the orchestrator's shard pool) register here
    so an abnormal parent exit cannot orphan their worker processes.
    """
    _ensure_ring_guard()
    _LIVE_REAPERS.add(reaper)


def unregister_shutdown_reaper(reaper) -> None:
    """Remove ``reaper`` from the shutdown registry (idempotent)."""
    _LIVE_REAPERS.discard(reaper)


def _reap_live_rings() -> None:
    """Reap registered child supervisors, then unlink every still-live ring
    owned by this process (idempotent)."""
    if os.getpid() != _GUARD_PID:
        return
    # Child reapers first: a shard process may still hold an inherited ring
    # mapping open, and terminating it before the unlink keeps the segment's
    # refcount honest.
    for reaper in list(_LIVE_REAPERS):
        try:
            reaper.reap_on_shutdown()
        except Exception:  # pragma: no cover - best effort during shutdown
            pass
    for ring in list(_LIVE_RINGS):
        try:
            ring.close()
        except Exception:  # pragma: no cover - best effort during shutdown
            pass


def _sigterm_reap_and_chain(signum, frame):  # pragma: no cover - exercised in subprocess
    _reap_live_rings()
    previous = _PREV_SIGTERM
    if callable(previous):
        previous(signum, frame)
        return
    if previous is signal.SIG_IGN:
        return
    # Default disposition: restore it and re-deliver so the exit status still
    # says "terminated by SIGTERM" to whatever sent the signal.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _ensure_ring_guard() -> None:
    """Install the atexit + SIGTERM reaper once per owning process."""
    global _GUARD_PID, _PREV_SIGTERM
    if _GUARD_PID == os.getpid():
        return
    # First ring of this process (or of a fork that inherited a stale guard
    # pid): (re)register for *this* pid.  The atexit hook may end up
    # registered once per forked generation; the pid check makes extras no-ops.
    _GUARD_PID = os.getpid()
    atexit.register(_reap_live_rings)
    try:
        previous = signal.signal(signal.SIGTERM, _sigterm_reap_and_chain)
    except ValueError:  # pragma: no cover - not on the main thread
        previous = None
    if previous is not _sigterm_reap_and_chain:
        # A fork re-installing over our own inherited handler must keep the
        # original chain target, not chain to itself.
        _PREV_SIGTERM = previous


class _SnapshotRing:
    """A shared-memory ring of posterior snapshots for one persistent pool.

    One float64 row per slot, each the full support-aligned probability
    vector.  The parent owns the segment: it publishes a reweighted posterior
    with :meth:`publish` (slot chosen by generation), workers read their slot
    with :meth:`read`.  Workers inherit the mapped segment at fork time —
    shared, not copy-on-write — so a publish after the fork is immediately
    visible to every worker without any pickling or re-attach.
    """

    def __init__(self, support_size: int, slots: int = _SNAPSHOT_SLOTS):
        self._slots = slots
        self._support_size = support_size
        self._owner_pid = os.getpid()
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, slots * support_size * 8)
        )
        self._array = np.ndarray(
            (slots, support_size), dtype=np.float64, buffer=self._shm.buf
        )
        _ensure_ring_guard()
        _LIVE_RINGS.add(self)

    def publish(self, generation: int, probabilities: np.ndarray) -> int:
        """Copy ``probabilities`` into the slot for ``generation``; return it."""
        slot = generation % self._slots
        self._array[slot, :] = probabilities
        return slot

    def read(self, slot: int) -> np.ndarray:
        """The snapshot in ``slot``, as a *view* of the shared segment.

        Callers must copy before keeping it (``EntropyEngine.
        load_probabilities`` does) — a later :meth:`publish` to the same slot
        would mutate the view in place.  Returning the view keeps the worker
        sync path at exactly one full-support copy per generation.
        """
        return self._array[slot]

    def close(self) -> None:
        """Release this process's mapping; the owner also unlinks the segment.

        Idempotent, and safe in fork children: only the creating process
        unlinks (a worker closing its inherited handle must not destroy the
        segment the parent and its siblings still share).
        """
        if self._shm is None:
            return
        # The ndarray view pins the exported buffer; drop it before closing.
        self._array = None
        self._shm.close()
        if self._owner_pid == os.getpid():
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._shm = None
        _LIVE_RINGS.discard(self)


@dataclass(frozen=True)
class ParallelPolicy:
    """When and how to shard candidate evaluations across processes.

    Attributes
    ----------
    workers:
        Worker processes to use; ``None`` means one per available CPU.
        A resolved count below two always selects the serial path.
    parallel_threshold:
        Minimum work size (candidates × support rows) of one iteration's scan
        before the pool is used; smaller scans run serially so that small
        rounds never regress.  Zero forces parallelism whenever possible.
    chunk_size:
        Candidates per dispatched chunk; ``None`` derives a size giving each
        worker several chunks for load balance.
    max_rebuilds:
        Consecutive crashed dispatches the supervisor absorbs (rebuilding the
        pool after each) before the circuit breaker trips and the evaluator
        degrades to the serial path for the rest of its life.
    dispatch_timeout:
        Wall-clock seconds one dispatch may take before the supervisor
        declares the pool hung and treats it as crashed; ``None`` (the
        default) disables the timeout — a healthy scan's duration scales with
        corpus size, so there is no safe universal default.
    heartbeat:
        Seconds between the supervisor's liveness probes of the worker
        processes while a dispatch is in flight.
    """

    workers: Optional[int] = None
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    chunk_size: Optional[int] = None
    max_rebuilds: int = 2
    dispatch_timeout: Optional[float] = None
    heartbeat: float = 0.05

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise SelectionError(f"workers must be positive, got {self.workers}")
        if self.parallel_threshold < 0:
            raise SelectionError(
                f"parallel_threshold must be non-negative, got {self.parallel_threshold}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SelectionError(f"chunk_size must be positive, got {self.chunk_size}")
        if self.max_rebuilds < 0:
            raise SelectionError(
                f"max_rebuilds must be non-negative, got {self.max_rebuilds}"
            )
        if self.dispatch_timeout is not None and self.dispatch_timeout <= 0:
            raise SelectionError(
                f"dispatch_timeout must be positive, got {self.dispatch_timeout}"
            )
        if self.heartbeat <= 0:
            raise SelectionError(f"heartbeat must be positive, got {self.heartbeat}")

    def resolved_workers(self) -> int:
        """The worker count this policy resolves to on this machine."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    def should_parallelise(self, num_candidates: int, support_size: int) -> bool:
        """Decide serial vs. parallel for one iteration's candidate scan."""
        if self.resolved_workers() < 2 or not fork_available():
            return False
        if num_candidates < 2:
            return False
        return num_candidates * support_size >= self.parallel_threshold

    def resolved_chunk_size(self, num_candidates: int) -> int:
        """Candidates per chunk for a scan of ``num_candidates``."""
        if self.chunk_size is not None:
            return self.chunk_size
        per_worker = self.resolved_workers() * _CHUNKS_PER_WORKER
        return max(1, math.ceil(num_candidates / per_worker))


def _advance_state(
    engine: EntropyEngine,
    state: Optional[SelectionState],
    task_ids: Tuple[str, ...],
) -> SelectionState:
    """Bring a worker's replayed selection state up to the parent's prefix.

    The worker keeps the state of the previous iteration; committing the
    parent's newly selected task is one ``extend`` call.  A non-prefix state
    (first call, or a fresh selection on a reused pool) restarts from the
    empty state.
    """
    if state is None or state.task_ids != task_ids[: state.width]:
        state = engine.initial_state()
    for fact_id in task_ids[state.width:]:
        state = engine.extend(state, fact_id)
    return state


def _replay_state(engine: EntropyEngine, task_ids: Tuple[str, ...]) -> SelectionState:
    """Rebuild the parent's selection state inside a single-engine pool worker."""
    global _WORKER_STATE
    _WORKER_STATE = _advance_state(engine, _WORKER_STATE, task_ids)
    return _WORKER_STATE


def _evaluate_chunk(task_ids: Tuple[str, ...], chunk: Sequence[str]) -> List[float]:
    """Worker entry point: ``H(T ∪ {f})`` for every candidate in ``chunk``."""
    faults.fire("worker_dispatch")
    engine = _FORK_ENGINE
    if engine is None:
        # A respawned worker (the pool's maintenance thread replaced a dead
        # one) never went through our supervised fork and has no engine; the
        # supervisor turns this into a full rebuild.
        raise WorkerSyncError("parallel worker started without a fork-shared engine")
    state = _replay_state(engine, task_ids)
    return [engine.extension_entropy(state, fact_id) for fact_id in chunk]


#: Generation header of one persistent-pool dispatch: the parent engine's
#: ``reweights`` counter, the ring slot its posterior snapshot occupies,
#: its ``channel_swaps`` counter, and the current channel model (``None``
#: while no swap has happened since the fork).
_SyncHeader = Tuple[int, int, int, Optional[ChannelModel]]


def _sync_worker_engine(engine: EntropyEngine, header: _SyncHeader) -> None:
    """Catch a fork-inherited worker engine up with the parent's generation.

    A stale posterior is loaded byte for byte from the shared snapshot ring; a
    stale channel model is replayed through ``set_channel`` (the same call the
    parent's session made).  Either sync invalidates the worker's replayed
    selection state — its cached tables embed the old probabilities and
    channel accuracies — so the next :func:`_replay_state` restarts from the
    empty state, exactly as on first contact after a fork.
    """
    global _WORKER_STATE
    reweights, slot, channel_swaps, channel = header
    if reweights != engine.reweights:
        ring = _FORK_RING
        if ring is None:
            raise WorkerSyncError(
                "persistent parallel worker has no fork-shared snapshot ring"
            )
        engine.load_probabilities(ring.read(slot), reweights)
        _WORKER_STATE = None
    if channel_swaps != engine.channel_swaps:
        if channel is None:
            raise WorkerSyncError(
                "persistent pool header advanced the channel generation "
                "without shipping the channel model"
            )
        engine.set_channel(channel)
        engine.channel_swaps = channel_swaps
        _WORKER_STATE = None


def _evaluate_chunk_persistent(
    header: _SyncHeader, task_ids: Tuple[str, ...], chunk: Sequence[str]
) -> List[float]:
    """Persistent-pool worker entry point: sync generations, then score."""
    faults.fire("worker_dispatch")
    engine = _FORK_ENGINE
    if engine is None:
        raise WorkerSyncError("parallel worker started without a fork-shared engine")
    _sync_worker_engine(engine, header)
    state = _replay_state(engine, task_ids)
    return [engine.extension_entropy(state, fact_id) for fact_id in chunk]


#: Dispatch header of one multiplexed-pool dispatch: the engine id plus the
#: same generation fields a single-engine persistent dispatch carries.
_MuxHeader = Tuple[int, int, int, int, Optional[ChannelModel]]


def _evaluate_chunk_multiplexed(
    header: _MuxHeader, task_ids: Tuple[str, ...], chunk: Sequence[str]
) -> List[float]:
    """Multiplexed-pool worker entry point: route by engine id, sync, score.

    The engine id selects one of the fork-inherited engines; the rest of the
    header is the usual generation sync (posterior snapshot from that
    engine's ring, channel replay).  Per-engine replayed states live in
    :data:`_WORKER_STATES`, so interleaved dispatches for different tenants
    never invalidate each other's incremental state.
    """
    faults.fire("worker_dispatch")
    engines = _FORK_ENGINES
    rings = _FORK_RING_MAP
    if engines is None or rings is None:
        raise WorkerSyncError(
            "multiplexed parallel worker started without a fork-shared "
            "engine registry"
        )
    engine_id, reweights, slot, channel_swaps, channel = header
    engine = engines.get(engine_id)
    if engine is None:
        raise WorkerSyncError(
            f"multiplexed worker has no fork-inherited engine {engine_id} "
            "(the pool should have re-forked after the attach)"
        )
    if reweights != engine.reweights:
        engine.load_probabilities(rings[engine_id].read(slot), reweights)
        _WORKER_STATES.pop(engine_id, None)
    if channel_swaps != engine.channel_swaps:
        if channel is None:
            raise WorkerSyncError(
                "multiplexed pool header advanced the channel generation "
                "without shipping the channel model"
            )
        engine.set_channel(channel)
        engine.channel_swaps = channel_swaps
        _WORKER_STATES.pop(engine_id, None)
    state = _advance_state(engine, _WORKER_STATES.get(engine_id), task_ids)
    _WORKER_STATES[engine_id] = state
    return [engine.extension_entropy(state, fact_id) for fact_id in chunk]


def _supervised_map(pool, procs, worker, chunks, policy: ParallelPolicy):
    """One crash-aware ``pool.map``: dispatch, watch the workers, collect.

    ``procs`` is the snapshot of worker processes taken immediately after the
    supervised fork — *not* ``pool._pool`` at call time, because the pool's
    maintenance thread silently replaces dead workers (with processes that
    never inherited the engine) and would hide the death from a late
    snapshot.  Raises :class:`WorkerCrashError` when a snapshot worker has
    died, the dispatch exceeds ``policy.dispatch_timeout``, or a worker
    reported :class:`WorkerSyncError`; any other worker exception (an
    application-level scoring error) propagates unchanged.
    """
    for proc in procs:
        if proc.exitcode is not None:
            raise WorkerCrashError(
                f"pool worker {proc.pid} died with exit code {proc.exitcode} "
                "before dispatch"
            )
    result = pool.map_async(worker, chunks)
    timeout = policy.dispatch_timeout
    deadline = None if timeout is None else time.monotonic() + timeout
    while not result.ready():
        result.wait(policy.heartbeat)
        if result.ready():
            break
        for proc in procs:
            if proc.exitcode is not None:
                raise WorkerCrashError(
                    f"pool worker {proc.pid} died with exit code "
                    f"{proc.exitcode} mid-dispatch"
                )
        if deadline is not None and time.monotonic() >= deadline:
            raise WorkerCrashError(
                f"dispatch did not complete within its {timeout:g}s timeout"
            )
    try:
        return result.get()
    except WorkerSyncError as error:
        raise WorkerCrashError(f"pool worker desynchronised: {error}") from error


#: How long a graceful ``Pool.terminate`` may take before the teardown
#: watchdog SIGKILLs the workers.  Generous: a healthy teardown is
#: milliseconds; only a wedged pool ever waits this out.
_TEARDOWN_GRACE = 5.0


def _teardown_pool(pool, procs, grace: float = _TEARDOWN_GRACE) -> None:
    """Terminate a (possibly wedged) fork pool without hanging the caller.

    ``Pool.terminate`` shuts down gracefully — drain the task queue, SIGTERM
    the workers, join everything — and every step of that choreography can
    block forever when a worker died while holding one of the pool's (or the
    application's) fork-shared locks.  A supervisor tearing down a pool it
    already distrusts must not inherit that hang: run the graceful path on a
    watchdog thread, and if it stalls past ``grace``, SIGKILL every worker we
    know about (the fork-time snapshot plus any maintenance respawns).
    Recovery re-forks from the parent's state, so workers hold nothing worth
    a graceful exit.
    """

    def _graceful():
        pool.terminate()
        pool.join()

    thread = threading.Thread(
        target=_graceful, name="repro-pool-teardown", daemon=True
    )
    thread.start()
    thread.join(grace)
    if not thread.is_alive():
        return
    stragglers = {id(proc): proc for proc in procs}
    for proc in list(getattr(pool, "_pool", ()) or ()):
        stragglers.setdefault(id(proc), proc)
    _LOGGER.warning(
        "pool teardown stalled for %.1fs; hard-killing %d worker(s)",
        grace,
        len(stragglers),
    )
    for proc in stragglers.values():
        try:
            if proc.is_alive():
                proc.kill()
        except Exception:  # pragma: no cover - best effort during teardown
            pass
    thread.join(grace)
    if thread.is_alive():  # pragma: no cover - should be unreachable
        _LOGGER.error(
            "pool teardown did not complete after hard-killing its workers; "
            "abandoning the teardown thread"
        )


class ParallelEvaluator:
    """Shards one engine's candidate evaluations across a fork pool.

    By default the evaluator is scoped to one selection call: the pool is
    forked lazily on the first iteration whose scan clears the policy
    threshold (so the engine's probability vector is current at fork time)
    and reused for the remaining iterations of that call.  Use as a context
    manager so the pool is always reclaimed — even when a selector raises
    mid-scan.

    With ``persistent=True`` the evaluator instead survives across rounds of
    a multi-round refinement run (it is then owned by a
    :class:`~repro.core.selection.session.RefinementSession`): before the
    fork it allocates a shared-memory :class:`_SnapshotRing`, and every
    dispatch carries a generation header so workers re-sync their inherited
    engine with the parent's reweighted posterior and swapped channel model
    instead of the pool being re-forked.

    Attributes
    ----------
    workers:
        Worker processes actually forked (0 while every scan stayed serial).
    chunk_size:
        Chunk size of the most recent parallel dispatch (0 if none).
    parallel_evaluations:
        Total candidate evaluations served by the pool (cumulative over the
        evaluator's lifetime, i.e. over all rounds for a persistent pool).
    worker_crashes:
        Dispatches the supervisor aborted (dead worker, hung dispatch, or a
        desynchronised worker).
    pool_rebuilds:
        Transparent pool rebuilds performed after a crashed dispatch.
    breaker_trips:
        Circuit-breaker trips (at most one: a tripped evaluator stays serial).
    """

    def __init__(
        self,
        engine: EntropyEngine,
        policy: ParallelPolicy,
        persistent: bool = False,
    ):
        if policy.resolved_workers() >= 2 and not fork_available():
            warnings.warn(
                "this platform has no fork start method, so the configured "
                "parallel policy cannot engage; all candidate scans will run "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self._engine = engine
        self._policy = policy
        self._persistent = persistent
        self._pool = None
        self._procs: Tuple = ()
        self._ring: Optional[_SnapshotRing] = None
        self._published_reweights = 0
        self._published_slot = -1
        self._fork_channel_swaps = 0
        self._broken = False
        self.workers = 0
        self.chunk_size = 0
        self.parallel_evaluations = 0
        self.worker_crashes = 0
        self.pool_rebuilds = 0
        self.breaker_trips = 0

    @property
    def persistent(self) -> bool:
        """Whether this evaluator survives posterior reweights between scans."""
        return self._persistent

    @property
    def degraded(self) -> bool:
        """Whether the circuit breaker has pinned this evaluator to serial."""
        return self._broken

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the worker pool and release the snapshot ring (idempotent)."""
        try:
            if self._pool is not None:
                _teardown_pool(self._pool, self._procs)
                self._pool = None
        finally:
            self._procs = ()
            if self._ring is not None:
                self._ring.close()
                self._ring = None

    def _discard_pool(self) -> None:
        """Tear down a crashed pool (and its ring) ahead of a rebuild."""
        self.close()

    def refresh_batch_size(self) -> int:
        """Candidates a lazy (CELF) selector should refresh per wave.

        Enough to hand every worker its configured chunk share, so a wave
        that clears the policy threshold saturates the pool; small enough
        that lazy evaluation still skips the long tail of stale candidates.
        """
        workers = self._policy.resolved_workers()
        chunk = self._policy.chunk_size or _CHUNKS_PER_WORKER
        return max(1, workers * chunk)

    def would_parallelise(self, num_candidates: int) -> bool:
        """Whether a scan of ``num_candidates`` would engage the pool.

        Lets batching callers (the CELF wave loop) avoid assembling a batch
        that :meth:`evaluate` would only hand back for in-process scoring.
        """
        return self._policy.should_parallelise(
            num_candidates, self._engine.support_masks.shape[0]
        )

    def _ensure_pool(self):
        if self._pool is None:
            global _FORK_ENGINE, _FORK_RING
            context = multiprocessing.get_context("fork")
            self.workers = self._policy.resolved_workers()
            # JIT-compile the engine's kernel tier *before* forking: workers
            # inherit the compiled machine code through copy-on-write memory
            # instead of each paying its own compile stall mid-dispatch.
            self._engine.warmup_kernels()
            if self._persistent:
                # The ring must exist before the fork so workers inherit the
                # shared mapping; the generation counters pin the fork-time
                # state every worker starts from.
                self._ring = _SnapshotRing(self._engine.probabilities.shape[0])
                self._published_reweights = self._engine.reweights
                self._published_slot = -1
                self._fork_channel_swaps = self._engine.channel_swaps
            # Publish the engine (and ring) for the duration of the fork
            # only: workers inherit them through copy-on-write memory, the
            # parent keeps no module-level reference.  The module lock keeps
            # another evaluator (on another thread) from clobbering the
            # globals mid-fork.
            with _FORK_PUBLISH_LOCK:
                _FORK_ENGINE = self._engine
                _FORK_RING = self._ring
                try:
                    self._pool = context.Pool(processes=self.workers)
                finally:
                    _FORK_ENGINE = None
                    _FORK_RING = None
            # Snapshot the freshly forked workers for the supervisor.  Later
            # snapshots would be useless: the pool's maintenance thread swaps
            # dead workers out of ``_pool`` for respawns that never inherited
            # the engine, erasing the evidence of the death.
            self._procs = tuple(self._pool._pool)
        return self._pool

    def _sync_header(self) -> _SyncHeader:
        """Publish any pending posterior snapshot; return the dispatch header."""
        engine = self._engine
        if engine.reweights != self._published_reweights:
            self._published_slot = self._ring.publish(
                engine.reweights, engine.probabilities
            )
            self._published_reweights = engine.reweights
        channel = (
            engine.crowd
            if engine.channel_swaps != self._fork_channel_swaps
            else None
        )
        return (
            engine.reweights,
            self._published_slot,
            engine.channel_swaps,
            channel,
        )

    def evaluate(
        self, state: SelectionState, candidates: Sequence[str]
    ) -> Optional[List[float]]:
        """Score all ``candidates`` against ``state``, in candidate order.

        Returns ``None`` when the policy elects the serial path for this scan
        (too little work, too few workers, no ``fork`` support, or a tripped
        circuit breaker); the caller then runs its ordinary in-process loop.

        Dispatches are supervised: a crashed or hung worker aborts the
        dispatch, the pool is rebuilt from the engine's *current* state (so
        the retried scan is still bit-identical to serial), and after
        ``policy.max_rebuilds`` consecutive failures the breaker degrades
        this evaluator to serial for good — never an error to the caller.
        """
        support_size = self._engine.support_masks.shape[0]
        if not self._policy.should_parallelise(len(candidates), support_size):
            return None
        if self._broken:
            return None
        chunk_size = self._policy.resolved_chunk_size(len(candidates))
        self.chunk_size = chunk_size
        chunks = [
            list(candidates[start:start + chunk_size])
            for start in range(0, len(candidates), chunk_size)
        ]
        crashes = 0
        while True:
            pool = self._ensure_pool()
            directive = faults.fire("pool_dispatch")
            if self._persistent:
                header = self._sync_header()
                if directive == "corrupt_header":
                    reweights, slot, channel_swaps, _channel = header
                    header = (reweights, slot, channel_swaps + 1, None)
                worker = partial(_evaluate_chunk_persistent, header, state.task_ids)
            else:
                worker = partial(_evaluate_chunk, state.task_ids)
            try:
                scored = _supervised_map(pool, self._procs, worker, chunks, self._policy)
            except WorkerCrashError as crash:
                crashes += 1
                self.worker_crashes += 1
                self._discard_pool()
                if crashes > self._policy.max_rebuilds:
                    self._broken = True
                    self.breaker_trips += 1
                    _LOGGER.warning(
                        "circuit breaker tripped after %d crashed dispatches; "
                        "degrading to serial evaluation (%s)",
                        crashes,
                        crash,
                    )
                    return None
                self.pool_rebuilds += 1
                _LOGGER.warning(
                    "pool dispatch crashed (%s); rebuilding pool (attempt %d/%d)",
                    crash,
                    crashes,
                    self._policy.max_rebuilds,
                )
                continue
            self.parallel_evaluations += len(candidates)
            return [entropy for part in scored for entropy in part]


@dataclass
class _Attachment:
    """Parent-side bookkeeping for one engine multiplexed onto a shared pool."""

    engine: EntropyEngine
    ring: _SnapshotRing
    #: Last posterior generation published into the ring (fork-time value
    #: until the first post-fork reweight — workers inherited that posterior).
    published_reweights: int = 0
    published_slot: int = -1
    #: Channel generation the workers inherited at fork; the channel model is
    #: shipped in the header only while the engine has swapped past it.
    fork_channel_swaps: int = 0
    #: Candidate evaluations served by the shared pool for this engine.
    served: int = 0


class EvaluatorPool:
    """One persistent fork pool shared by many engines (one per tenant).

    The multi-tenant counterpart of a persistent :class:`ParallelEvaluator`:
    instead of one worker pool per engine, any number of engines are
    :meth:`attach`-ed to one pool, each identified by a small integer engine
    id that every dispatch header carries.  Workers inherit the whole engine
    registry (plus one snapshot ring per engine) at fork time; generation
    sync then works exactly as in the single-engine persistent mode, but per
    engine id — so interleaved selections from many refinement sessions share
    one set of worker processes, and each session's scores stay bit-for-bit
    identical to its serial path.

    Attaching an engine *after* the pool has forked marks the pool stale: the
    next dispatch tears the old pool down and forks once with the full
    registry (:attr:`reforks` counts these).  That trades one fork per
    tenant-join wave for never paying one pool per tenant.

    The pool is thread-safe: dispatches from concurrent server executors are
    serialised by an internal lock (worker processes, not caller threads, are
    the parallelism), and :meth:`close` may be called from any thread.
    Detached engines release their ring immediately; their fork-inherited
    copy inside the workers is unreachable dead weight until the next refork.
    """

    def __init__(self, policy: ParallelPolicy):
        if policy.resolved_workers() >= 2 and not fork_available():
            warnings.warn(
                "this platform has no fork start method, so the shared "
                "evaluator pool cannot engage; all candidate scans will run "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self._policy = policy
        self._attachments: Dict[int, _Attachment] = {}
        self._pool = None
        self._procs: Tuple = ()
        self._stale = False
        self._broken = False
        self._next_id = 0
        self._lock = threading.Lock()
        self.workers = 0
        self.dispatches = 0
        self.reforks = 0
        self.worker_crashes = 0
        self.pool_rebuilds = 0
        self.breaker_trips = 0

    @property
    def policy(self) -> ParallelPolicy:
        """The sharding policy every attached engine is scored under."""
        return self._policy

    @property
    def attached(self) -> int:
        """Number of engines currently multiplexed onto this pool."""
        with self._lock:
            return len(self._attachments)

    @property
    def forked(self) -> bool:
        """Whether the shared worker pool is currently alive."""
        return self._pool is not None

    @property
    def degraded(self) -> bool:
        """Whether the breaker has pinned this shared pool to serial scans."""
        return self._broken

    def attach(self, engine: EntropyEngine) -> "PooledEvaluator":
        """Register ``engine`` and return its evaluator facade.

        The facade satisfies the same evaluator interface session-aware
        selectors consume (:meth:`PooledEvaluator.evaluate` and friends);
        closing it detaches the engine without touching other tenants.
        """
        with self._lock:
            engine_id = self._next_id
            self._next_id += 1
            self._attachments[engine_id] = _Attachment(
                engine=engine,
                ring=_SnapshotRing(engine.probabilities.shape[0]),
            )
            if self._pool is not None:
                # The running workers never inherited this engine; re-fork
                # lazily on the next dispatch that needs the pool.
                self._stale = True
        return PooledEvaluator(self, engine_id, engine)

    def detach(self, engine_id: int) -> None:
        """Release one engine's ring and registry slot (idempotent).

        The shared pool keeps running for the remaining tenants; when the
        last engine detaches the worker processes are reclaimed too (a later
        attach simply forks a fresh pool).
        """
        with self._lock:
            attachment = self._attachments.pop(engine_id, None)
            if attachment is not None:
                attachment.ring.close()
            if not self._attachments:
                self._terminate_pool()

    def close(self) -> None:
        """Detach every engine and terminate the worker pool (idempotent)."""
        with self._lock:
            for attachment in self._attachments.values():
                attachment.ring.close()
            self._attachments.clear()
            self._terminate_pool()

    def __enter__(self) -> "EvaluatorPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _terminate_pool(self) -> None:
        """Tear down the fork pool; caller holds the lock."""
        if self._pool is not None:
            _teardown_pool(self._pool, self._procs)
            self._pool = None
        self._procs = ()
        self._stale = False

    def _ensure_pool(self):
        """Fork (or re-fork) the shared pool with the full current registry."""
        if self._pool is not None and not self._stale:
            return self._pool
        if self._pool is not None:
            self._terminate_pool()
            self.reforks += 1
        global _FORK_ENGINES, _FORK_RING_MAP
        context = multiprocessing.get_context("fork")
        self.workers = self._policy.resolved_workers()
        for attachment in self._attachments.values():
            # Workers inherit each engine's current posterior and channel;
            # reset the generation baselines the headers diff against.  The
            # kernel warmup runs pre-fork for the same copy-on-write reason:
            # compiled tiers JIT once in the parent, never per worker.
            attachment.engine.warmup_kernels()
            attachment.published_reweights = attachment.engine.reweights
            attachment.published_slot = -1
            attachment.fork_channel_swaps = attachment.engine.channel_swaps
        # The module lock makes publish → fork → clear atomic across pools:
        # engine ids are per-pool counters, so a concurrent fork inheriting
        # another pool's registry would cross-wire tenants (see the lock's
        # docstring).
        with _FORK_PUBLISH_LOCK:
            _FORK_ENGINES = {
                engine_id: attachment.engine
                for engine_id, attachment in self._attachments.items()
            }
            _FORK_RING_MAP = {
                engine_id: attachment.ring
                for engine_id, attachment in self._attachments.items()
            }
            try:
                self._pool = context.Pool(processes=self.workers)
            finally:
                _FORK_ENGINES = None
                _FORK_RING_MAP = None
        # Supervisor snapshot — must be taken before the maintenance thread
        # has any chance to swap a dead worker for an engine-less respawn.
        self._procs = tuple(self._pool._pool)
        self._stale = False
        return self._pool

    def _header(self, engine_id: int, attachment: _Attachment) -> _MuxHeader:
        """Publish any pending snapshot; return the dispatch header."""
        engine = attachment.engine
        if engine.reweights != attachment.published_reweights:
            attachment.published_slot = attachment.ring.publish(
                engine.reweights, engine.probabilities
            )
            attachment.published_reweights = engine.reweights
        channel = (
            engine.crowd
            if engine.channel_swaps != attachment.fork_channel_swaps
            else None
        )
        return (
            engine_id,
            engine.reweights,
            attachment.published_slot,
            engine.channel_swaps,
            channel,
        )

    def evaluate(
        self, engine_id: int, state: SelectionState, candidates: Sequence[str]
    ) -> "Tuple[Optional[List[float]], int]":
        """Score ``candidates`` for one attached engine, in candidate order.

        Returns ``(entropies, chunk_size)``; entropies are ``None`` when the
        policy elects the serial path for this scan (the caller then runs its
        ordinary in-process loop, exactly as with a dedicated evaluator) and
        when the shared pool's circuit breaker has tripped.

        Dispatches are supervised exactly as on a dedicated evaluator: a
        crash rebuilds the whole shared pool (every attachment's generation
        baselines reset to its engine's current state, so every tenant's
        recovered scans stay bit-identical to serial), and repeated failures
        degrade the pool to serial for all tenants rather than erroring any
        of them.
        """
        with self._lock:
            try:
                attachment = self._attachments[engine_id]
            except KeyError:
                raise SelectionError(
                    f"engine {engine_id} is not attached to this evaluator pool "
                    "(was the session already evicted?)"
                ) from None
            support_size = attachment.engine.support_masks.shape[0]
            if not self._policy.should_parallelise(len(candidates), support_size):
                return None, 0
            if self._broken:
                return None, 0
            chunk_size = self._policy.resolved_chunk_size(len(candidates))
            chunks = [
                list(candidates[start:start + chunk_size])
                for start in range(0, len(candidates), chunk_size)
            ]
            crashes = 0
            while True:
                pool = self._ensure_pool()
                directive = faults.fire("pool_dispatch")
                header = self._header(engine_id, attachment)
                if directive == "corrupt_header":
                    hdr_engine_id, reweights, slot, channel_swaps, _channel = header
                    header = (hdr_engine_id, reweights, slot, channel_swaps + 1, None)
                worker = partial(_evaluate_chunk_multiplexed, header, state.task_ids)
                try:
                    scored = _supervised_map(
                        pool, self._procs, worker, chunks, self._policy
                    )
                except WorkerCrashError as crash:
                    crashes += 1
                    self.worker_crashes += 1
                    self._terminate_pool()
                    if crashes > self._policy.max_rebuilds:
                        self._broken = True
                        self.breaker_trips += 1
                        _LOGGER.warning(
                            "shared pool circuit breaker tripped after %d "
                            "crashed dispatches; all %d attached engines "
                            "degrade to serial evaluation (%s)",
                            crashes,
                            len(self._attachments),
                            crash,
                        )
                        return None, 0
                    self.pool_rebuilds += 1
                    _LOGGER.warning(
                        "shared pool dispatch crashed (%s); rebuilding pool "
                        "(attempt %d/%d)",
                        crash,
                        crashes,
                        self._policy.max_rebuilds,
                    )
                    continue
                attachment.served += len(candidates)
                self.dispatches += 1
                break
        return [entropy for part in scored for entropy in part], chunk_size


class PooledEvaluator:
    """One engine's handle on a shared :class:`EvaluatorPool`.

    Satisfies the evaluator interface the session-aware greedy family
    consumes (``evaluate`` / ``would_parallelise`` / ``refresh_batch_size``
    plus the ``workers`` / ``chunk_size`` / ``parallel_evaluations``
    counters), so a :class:`~repro.core.selection.session.RefinementSession`
    can hand it out exactly like a dedicated persistent
    :class:`ParallelEvaluator`.  Closing the facade detaches only this engine.
    """

    def __init__(self, pool: EvaluatorPool, engine_id: int, engine: EntropyEngine):
        self._shared_pool = pool
        self._engine_id = engine_id
        self._engine = engine
        self._closed = False
        self.workers = 0
        self.chunk_size = 0
        self.parallel_evaluations = 0

    @property
    def persistent(self) -> bool:
        """Pooled evaluators always survive reweights (the pool outlives them)."""
        return True

    @property
    def engine_id(self) -> int:
        """The id this engine travels under in the pool's dispatch headers."""
        return self._engine_id

    @property
    def degraded(self) -> bool:
        """Whether the shared pool's breaker has pinned this tenant to serial."""
        return self._shared_pool.degraded

    def would_parallelise(self, num_candidates: int) -> bool:
        """Whether a scan of ``num_candidates`` would engage the shared pool."""
        return self._shared_pool.policy.should_parallelise(
            num_candidates, self._engine.support_masks.shape[0]
        )

    def refresh_batch_size(self) -> int:
        """CELF refresh wave size, mirroring :meth:`ParallelEvaluator.refresh_batch_size`."""
        policy = self._shared_pool.policy
        chunk = policy.chunk_size or _CHUNKS_PER_WORKER
        return max(1, policy.resolved_workers() * chunk)

    def evaluate(
        self, state: SelectionState, candidates: Sequence[str]
    ) -> Optional[List[float]]:
        """Score ``candidates`` through the shared pool (``None`` = go serial)."""
        if self._closed:
            raise SelectionError(
                "this pooled evaluator has been closed; its session no longer "
                "owns a slot on the shared pool"
            )
        entropies, chunk_size = self._shared_pool.evaluate(
            self._engine_id, state, candidates
        )
        if entropies is not None:
            self.parallel_evaluations += len(candidates)
            self.chunk_size = chunk_size
            self.workers = self._shared_pool.workers
        return entropies

    def close(self) -> None:
        """Detach this engine from the shared pool (idempotent)."""
        if not self._closed:
            self._closed = True
            self._shared_pool.detach(self._engine_id)

    def __enter__(self) -> "PooledEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ParallelSelectorMixin:
    """Parallel-scan wiring shared by the greedy selector family.

    A selector mixing this in accepts a :class:`ParallelPolicy` (constructor
    argument and ``parallel`` property) and funnels every scan through
    :meth:`_scan`, which picks the evaluator in priority order:

    1. a *session-owned persistent* evaluator, when the selection runs
       against a :class:`~repro.core.selection.session.RefinementSession`
       configured with a parallel policy (fork cost amortised over the whole
       run; the selector does not close it);
    2. the selector's own policy, wrapped in a per-call evaluator whose
       context manager guarantees the pool is reclaimed even when the scan
       raises;
    3. the plain serial path when neither is configured.

    Either way the per-selection ``SelectionStats`` report only what *this*
    selection used: worker counts are zeroed when every scan of the call
    stayed under the auto-serial threshold, and a persistent evaluator's
    cumulative counters are differenced around the call.
    """

    _parallel: Optional[ParallelPolicy] = None

    def __init__(self, parallel: Optional[ParallelPolicy] = None):
        self._parallel = parallel

    @property
    def parallel(self) -> Optional[ParallelPolicy]:
        """The configured parallel-scan policy (``None`` means always serial)."""
        return self._parallel

    @parallel.setter
    def parallel(self, policy: Optional[ParallelPolicy]) -> None:
        self._parallel = policy

    def _scan(
        self,
        engine: EntropyEngine,
        k: int,
        candidates: Sequence[str],
        runner,
        shared_evaluator: Optional[ParallelEvaluator] = None,
    ) -> SelectionResult:
        """Run ``runner(engine, k, candidates, evaluator)`` with the right evaluator."""
        if shared_evaluator is not None:
            return self._instrumented(shared_evaluator, runner, engine, k, candidates)
        if self._parallel is None:
            return runner(engine, k, candidates, None)
        with ParallelEvaluator(engine, self._parallel) as evaluator:
            return self._instrumented(evaluator, runner, engine, k, candidates)

    @staticmethod
    def _instrumented(
        evaluator: ParallelEvaluator,
        runner,
        engine: EntropyEngine,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        before = evaluator.parallel_evaluations
        result = runner(engine, k, candidates, evaluator)
        # The evaluator is the single source of truth for the execution-mode
        # bookkeeping: it alone knows what its pool actually served.  For a
        # persistent evaluator the counters span many selections, so report
        # the delta — and a call whose scans all stayed auto-serial reports
        # zero workers even though the long-lived pool exists.
        served = evaluator.parallel_evaluations - before
        result.stats.parallel_evaluations = served
        result.stats.workers = evaluator.workers if served else 0
        result.stats.chunk_size = evaluator.chunk_size if served else 0
        return result
