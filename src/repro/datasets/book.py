"""Synthetic Book corpus generator.

The paper's evaluation uses the Book dataset (author lists for ~100 books
claimed by many online bookstores, ~50 % of raw claims correct, gold labels
assigned manually with order-insensitive matching).  That corpus cannot be
redistributed, so this module generates a synthetic corpus with the same
schema and the same statistical character:

* each book has a true author list of one to four names;
* sources have per-domain reliability (some are trustworthy for textbooks and
  useless for non-textbooks, mirroring the eCampus.com anecdote);
* correct statements may be re-orderings of the true list (gold-true, but
  confusing for workers); incorrect statements are misspellings, appended
  affiliations or swapped authors (gold-false, with varying difficulty);
* the overall raw correctness is tuned to about one half.

The generator is fully deterministic given the config's seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.corruption import (
    add_organization,
    format_author_list,
    misspell_name,
    reorder_authors,
    same_author_list,
    swap_author,
)
from repro.exceptions import DatasetError
from repro.fusion.claims import ClaimDatabase

_FIRST_NAMES = (
    "Ada", "Alan", "Barbara", "Catherine", "David", "Donald", "Edsger", "Frances",
    "Grace", "John", "Judea", "Kathy", "Leslie", "Margaret", "Michael", "Peter",
    "Radia", "Rudy", "Sharon", "Shafi", "Tim", "Tyrone", "Barbara", "Whitfield",
)
_LAST_NAMES = (
    "Adams", "Baxter", "Courage", "Dijkstra", "Diffie", "Goldwasser", "Hamilton",
    "Hopper", "Knuth", "Lamport", "Liskov", "Loshin", "Lovelace", "McCarthy",
    "Pearl", "Perlman", "Rivest", "Rucker", "Scollard", "Shannon", "Turing",
    "Ullman", "Widom", "Zhang",
)
_TITLE_WORDS = (
    "Introduction", "Principles", "Foundations", "Advanced", "Practical", "Modern",
    "Essentials", "Handbook", "Guide", "Theory", "Systems", "Networks", "Databases",
    "Algorithms", "Crowdsourcing", "Fusion", "Mining", "Learning", "Queries", "Web",
)

#: Crowd difficulty attached to each statement kind (Section V-D error taxonomy).
_DIFFICULTY_BY_KIND = {
    "canonical": 0.02,
    "reordered": 0.25,
    "misspelled": 0.30,
    "organization": 0.25,
    "swapped": 0.05,
}


@dataclass(frozen=True)
class Book:
    """One book with its gold author list."""

    isbn: str
    title: str
    true_authors: Tuple[str, ...]
    domain: str

    def __post_init__(self) -> None:
        if not self.true_authors:
            raise DatasetError(f"book {self.isbn} must have at least one author")
        if self.domain not in ("textbook", "non-textbook"):
            raise DatasetError(f"unknown book domain {self.domain!r}")


@dataclass(frozen=True)
class BookCorpusConfig:
    """Parameters controlling corpus generation.

    Attributes mirror the evaluation setup of the paper: 100 books, many
    sources, roughly half of the raw statements correct.
    """

    num_books: int = 100
    num_sources: int = 20
    min_sources_per_book: int = 4
    max_sources_per_book: int = 12
    textbook_fraction: float = 0.4
    #: Probability that a reliable observation is emitted as a re-ordered
    #: (still correct) variant rather than the canonical author list.
    reorder_probability: float = 0.3
    #: Mix of the incorrect-statement kinds (misspelled, organization, swapped).
    error_mix: Tuple[float, float, float] = (0.35, 0.25, 0.40)
    #: Source reliability ranges per domain: (low, high) probability that one
    #: of its statements is correct.
    textbook_reliability: Tuple[float, float] = (0.45, 0.85)
    nontextbook_reliability: Tuple[float, float] = (0.25, 0.70)
    #: Fraction of sources that are "domain specialists": reliable on
    #: textbooks, unreliable on non-textbooks (the eCampus.com pattern).
    specialist_fraction: float = 0.25
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_books <= 0 or self.num_sources <= 0:
            raise DatasetError("num_books and num_sources must be positive")
        if not 0 < self.min_sources_per_book <= self.max_sources_per_book:
            raise DatasetError("invalid per-book source coverage range")
        if self.max_sources_per_book > self.num_sources:
            raise DatasetError("max_sources_per_book cannot exceed num_sources")
        if abs(sum(self.error_mix) - 1.0) > 1e-9:
            raise DatasetError("error_mix must sum to 1")
        if not 0.0 <= self.textbook_fraction <= 1.0:
            raise DatasetError("textbook_fraction must be in [0, 1]")


@dataclass
class BookCorpus:
    """The generated corpus: books, claims, gold labels and difficulties."""

    config: BookCorpusConfig
    books: List[Book]
    database: ClaimDatabase
    gold: Dict[str, bool] = field(default_factory=dict)
    difficulties: Dict[str, float] = field(default_factory=dict)
    statement_kinds: Dict[str, str] = field(default_factory=dict)

    @property
    def domain_of(self) -> Dict[str, str]:
        """Mapping from book ISBN (entity) to its domain."""
        return {book.isbn: book.domain for book in self.books}

    def book(self, isbn: str) -> Book:
        """Look up one book by ISBN."""
        for book in self.books:
            if book.isbn == isbn:
                return book
        raise DatasetError(f"unknown ISBN {isbn!r}")

    def claims_for_book(self, isbn: str):
        """All distinct claims about one book's author list."""
        return self.database.claims_for(isbn, "author_list")

    def raw_correctness(self) -> float:
        """Fraction of *observations* (source statements) that are gold-true.

        The paper reports this is roughly 50 % for the real Book dataset.
        """
        correct = 0
        total = 0
        for claim in self.database.claims():
            label = self.gold[claim.claim_id]
            correct += claim.support if label else 0
            total += claim.support
        if total == 0:
            raise DatasetError("corpus has no observations")
        return correct / total

    def books_with_min_claims(self, minimum: int) -> List[str]:
        """ISBNs of books with at least ``minimum`` distinct claims (Table V uses > 20)."""
        return [
            book.isbn
            for book in self.books
            if len(self.claims_for_book(book.isbn)) >= minimum
        ]


def _generate_books(config: BookCorpusConfig, rng: np.random.Generator) -> List[Book]:
    books: List[Book] = []
    for index in range(config.num_books):
        num_authors = int(rng.integers(1, 5))
        authors = []
        seen = set()
        while len(authors) < num_authors:
            name = (
                f"{_FIRST_NAMES[int(rng.integers(0, len(_FIRST_NAMES)))]} "
                f"{_LAST_NAMES[int(rng.integers(0, len(_LAST_NAMES)))]}"
            )
            if name not in seen:
                seen.add(name)
                authors.append(name)
        title = " ".join(
            _TITLE_WORDS[int(rng.integers(0, len(_TITLE_WORDS)))] for _ in range(3)
        )
        domain = "textbook" if rng.random() < config.textbook_fraction else "non-textbook"
        isbn = f"978{index:010d}"
        books.append(Book(isbn=isbn, title=title, true_authors=tuple(authors), domain=domain))
    return books


def _source_reliabilities(
    config: BookCorpusConfig, rng: np.random.Generator
) -> Dict[str, Dict[str, float]]:
    """Per-source, per-domain probability of emitting a correct statement."""
    reliabilities: Dict[str, Dict[str, float]] = {}
    for index in range(config.num_sources):
        source_id = f"s{index}"
        if rng.random() < config.specialist_fraction:
            # Textbook specialist: trustworthy for textbooks, unreliable otherwise.
            textbook = rng.uniform(*config.textbook_reliability)
            nontextbook = rng.uniform(0.0, 0.25)
        else:
            textbook = rng.uniform(*config.textbook_reliability)
            nontextbook = rng.uniform(*config.nontextbook_reliability)
        reliabilities[source_id] = {
            "textbook": float(textbook),
            "non-textbook": float(nontextbook),
        }
    return reliabilities


def _wrong_statement(
    book: Book,
    config: BookCorpusConfig,
    rng: np.random.Generator,
    author_pool: Sequence[str],
) -> Tuple[List[str], str]:
    """Produce a gold-false author list and its corruption kind."""
    roll = rng.random()
    misspelled, organization, _swapped = config.error_mix
    if roll < misspelled:
        names = list(book.true_authors)
        index = int(rng.integers(0, len(names)))
        names[index] = misspell_name(names[index], rng)
        # A misspelling might accidentally produce the original name; force a change.
        if same_author_list(names, book.true_authors):
            names[index] = names[index] + "x"
        return names, "misspelled"
    if roll < misspelled + organization:
        return add_organization(book.true_authors, rng), "organization"
    return swap_author(book.true_authors, author_pool, rng), "swapped"


def generate_book_corpus(config: Optional[BookCorpusConfig] = None) -> BookCorpus:
    """Generate a deterministic synthetic Book corpus from ``config``."""
    cfg = config if config is not None else BookCorpusConfig()
    rng = np.random.default_rng(cfg.seed)
    books = _generate_books(cfg, rng)
    reliabilities = _source_reliabilities(cfg, rng)
    author_pool = [f"{first} {last}" for first in _FIRST_NAMES[:8] for last in _LAST_NAMES[:8]]

    database = ClaimDatabase()
    gold_by_value: Dict[Tuple[str, str], bool] = {}
    difficulty_by_value: Dict[Tuple[str, str], float] = {}
    kind_by_value: Dict[Tuple[str, str], str] = {}

    source_ids = list(reliabilities)
    for book in books:
        coverage = int(rng.integers(cfg.min_sources_per_book, cfg.max_sources_per_book + 1))
        chosen = rng.choice(len(source_ids), size=coverage, replace=False)
        for source_index in chosen:
            source_id = source_ids[int(source_index)]
            reliability = reliabilities[source_id][book.domain]
            if rng.random() < reliability:
                if len(book.true_authors) > 1 and rng.random() < cfg.reorder_probability:
                    authors = reorder_authors(book.true_authors, rng)
                    kind = "reordered"
                else:
                    authors = list(book.true_authors)
                    kind = "canonical"
                label = True
            else:
                authors, kind = _wrong_statement(book, cfg, rng, author_pool)
                label = same_author_list(authors, book.true_authors)
            value = format_author_list(authors)
            database.add_observation(source_id, book.isbn, "author_list", value)
            key = (book.isbn, value)
            if key not in gold_by_value:
                gold_by_value[key] = label
                difficulty_by_value[key] = _DIFFICULTY_BY_KIND[kind]
                kind_by_value[key] = kind

    gold: Dict[str, bool] = {}
    difficulties: Dict[str, float] = {}
    kinds: Dict[str, str] = {}
    for claim in database.claims():
        key = (claim.entity, claim.value)
        gold[claim.claim_id] = gold_by_value[key]
        difficulties[claim.claim_id] = difficulty_by_value[key]
        kinds[claim.claim_id] = kind_by_value[key]

    return BookCorpus(
        config=cfg,
        books=books,
        database=database,
        gold=gold,
        difficulties=difficulties,
        statement_kinds=kinds,
    )
