"""Unit tests for Fact and FactSet."""

import pytest

from repro.core.facts import Fact, FactSet
from repro.exceptions import InvalidFactError


def make_facts():
    return [
        Fact("f1", "Hong Kong", "Continent", "Asia", prior=0.5),
        Fact("f2", "Hong Kong", "Population", ">=500k", prior=0.63),
        Fact("f3", "Hong Kong", "Major Ethnic Group", "Chinese"),
    ]


class TestFact:
    def test_triple_property(self):
        fact = Fact("f1", "Everest", "Height", "29029ft")
        assert fact.triple == ("Everest", "Height", "29029ft")

    def test_describe_contains_all_parts(self):
        fact = Fact("f1", "Everest", "Height", "29029ft")
        description = fact.describe()
        assert "Everest" in description
        assert "Height" in description
        assert "29029ft" in description

    def test_empty_id_rejected(self):
        with pytest.raises(InvalidFactError):
            Fact("", "a", "b", "c")

    def test_prior_out_of_range_rejected(self):
        with pytest.raises(InvalidFactError):
            Fact("f1", "a", "b", "c", prior=1.5)
        with pytest.raises(InvalidFactError):
            Fact("f1", "a", "b", "c", prior=-0.1)

    def test_prior_none_allowed(self):
        assert Fact("f1", "a", "b", "c").prior is None

    def test_frozen(self):
        fact = Fact("f1", "a", "b", "c")
        with pytest.raises(AttributeError):
            fact.subject = "other"


class TestFactSet:
    def test_len_and_iteration_order(self):
        facts = FactSet(make_facts())
        assert len(facts) == 3
        assert [f.fact_id for f in facts] == ["f1", "f2", "f3"]

    def test_fact_ids_order(self):
        facts = FactSet(make_facts())
        assert facts.fact_ids == ("f1", "f2", "f3")

    def test_getitem_and_contains(self):
        facts = FactSet(make_facts())
        assert facts["f2"].predicate == "Population"
        assert "f2" in facts
        assert "missing" not in facts

    def test_unknown_id_raises(self):
        facts = FactSet(make_facts())
        with pytest.raises(InvalidFactError):
            facts["nope"]

    def test_position_lookup(self):
        facts = FactSet(make_facts())
        assert facts.position("f1") == 0
        assert facts.position("f3") == 2
        assert facts.positions(["f3", "f1"]) == (2, 0)

    def test_position_unknown_raises(self):
        facts = FactSet(make_facts())
        with pytest.raises(InvalidFactError):
            facts.position("zzz")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidFactError):
            FactSet([Fact("f1", "a", "b", "c"), Fact("f1", "x", "y", "z")])

    def test_empty_rejected(self):
        with pytest.raises(InvalidFactError):
            FactSet([])

    def test_priors_map(self):
        facts = FactSet(make_facts())
        priors = facts.priors()
        assert priors["f1"] == 0.5
        assert priors["f3"] is None

    def test_subset_preserves_given_order(self):
        facts = FactSet(make_facts())
        subset = facts.subset(["f3", "f1"])
        assert subset.fact_ids == ("f3", "f1")

    def test_with_priors_overrides_and_keeps(self):
        facts = FactSet(make_facts())
        updated = facts.with_priors({"f3": 0.9})
        assert updated["f3"].prior == 0.9
        assert updated["f1"].prior == 0.5

    def test_from_triples_generates_ids(self):
        facts = FactSet.from_triples(
            [("a", "b", "c"), ("d", "e", "f")], priors=[0.2, 0.7]
        )
        assert facts.fact_ids == ("f1", "f2")
        assert facts["f2"].prior == 0.7

    def test_from_triples_misaligned_priors_rejected(self):
        with pytest.raises(InvalidFactError):
            FactSet.from_triples([("a", "b", "c")], priors=[0.2, 0.7])

    def test_equality(self):
        assert FactSet(make_facts()) == FactSet(make_facts())
        assert FactSet(make_facts()) != FactSet(make_facts()[:2])
