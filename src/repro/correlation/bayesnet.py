"""A small discrete Bayesian network over binary facts.

The paper argues that correlations between facts ("married at 31" and
"married in 1992" are linked through "born in 1961") should be expressed as a
joint distribution rather than domain-specific heuristics.  A Bayesian
network is a compact, familiar way to author such joint distributions for
synthetic experiments; :meth:`BayesianNetwork.to_joint_distribution`
materialises the exact joint that CrowdFusion consumes, and
:meth:`BayesianNetwork.sample_assignment` draws gold truth assignments for
simulation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.distribution import JointDistribution
from repro.exceptions import InvalidDistributionError


@dataclass(frozen=True)
class BinaryNode:
    """One binary variable (fact) with a conditional probability table.

    Parameters
    ----------
    fact_id:
        The fact this node represents.
    parents:
        Ids of the parent facts, in the order the CPT keys are written.
    cpt:
        Mapping from a tuple of parent truth values to ``P(fact is true |
        parents)``.  Root nodes use the empty tuple ``()`` as the only key.
    """

    fact_id: str
    parents: Tuple[str, ...] = ()
    cpt: Mapping[Tuple[bool, ...], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.fact_id:
            raise InvalidDistributionError("node fact_id must be non-empty")
        expected = 1 << len(self.parents)
        if len(self.cpt) != expected:
            raise InvalidDistributionError(
                f"node {self.fact_id!r} needs {expected} CPT rows "
                f"for {len(self.parents)} parents, got {len(self.cpt)}"
            )
        for key, probability in self.cpt.items():
            if len(key) != len(self.parents):
                raise InvalidDistributionError(
                    f"CPT key {key!r} of node {self.fact_id!r} does not match its parents"
                )
            if not 0.0 <= probability <= 1.0:
                raise InvalidDistributionError(
                    f"CPT entry for {self.fact_id!r} must be in [0, 1], got {probability}"
                )

    @classmethod
    def root(cls, fact_id: str, p_true: float) -> "BinaryNode":
        """Convenience constructor for a parentless node."""
        return cls(fact_id=fact_id, parents=(), cpt={(): p_true})


class BayesianNetwork:
    """A directed acyclic network of :class:`BinaryNode` variables."""

    def __init__(self, nodes: Iterable[BinaryNode]):
        self._nodes: Dict[str, BinaryNode] = {}
        for node in nodes:
            if node.fact_id in self._nodes:
                raise InvalidDistributionError(f"duplicate node {node.fact_id!r}")
            self._nodes[node.fact_id] = node
        if not self._nodes:
            raise InvalidDistributionError("a Bayesian network needs at least one node")

        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(self._nodes)
        for node in self._nodes.values():
            for parent in node.parents:
                if parent not in self._nodes:
                    raise InvalidDistributionError(
                        f"node {node.fact_id!r} references unknown parent {parent!r}"
                    )
                self._graph.add_edge(parent, node.fact_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise InvalidDistributionError("the network contains a cycle")
        self._order: List[str] = list(nx.topological_sort(self._graph))

    # -- accessors ---------------------------------------------------------------------

    @property
    def fact_ids(self) -> Tuple[str, ...]:
        """Fact ids in insertion order (the order of the resulting distribution)."""
        return tuple(self._nodes)

    @property
    def topological_order(self) -> Tuple[str, ...]:
        """A topological ordering of the nodes."""
        return tuple(self._order)

    def node(self, fact_id: str) -> BinaryNode:
        """Return one node by fact id."""
        try:
            return self._nodes[fact_id]
        except KeyError:
            raise InvalidDistributionError(f"unknown node {fact_id!r}") from None

    # -- joint distribution ---------------------------------------------------------------

    def assignment_probability(self, assignment: Mapping[str, bool]) -> float:
        """Probability of a complete truth assignment under the network."""
        probability = 1.0
        for fact_id in self._order:
            node = self._nodes[fact_id]
            parent_values = tuple(assignment[parent] for parent in node.parents)
            p_true = node.cpt[parent_values]
            probability *= p_true if assignment[fact_id] else (1.0 - p_true)
        return probability

    def to_joint_distribution(self) -> JointDistribution:
        """Materialise the exact joint distribution (exponential in node count)."""
        fact_ids = self.fact_ids
        n = len(fact_ids)
        if n > 20:
            raise InvalidDistributionError(
                f"refusing to materialise a {n}-node network exhaustively; "
                "use sampling for larger networks"
            )
        probs: Dict[int, float] = {}
        for mask in range(1 << n):
            assignment = {
                fact_id: bool(mask >> position & 1)
                for position, fact_id in enumerate(fact_ids)
            }
            probability = self.assignment_probability(assignment)
            if probability > 0.0:
                probs[mask] = probability
        return JointDistribution(fact_ids, probs, normalise=True)

    def sample_assignment(
        self, rng: Optional[np.random.Generator] = None
    ) -> Dict[str, bool]:
        """Draw one truth assignment by ancestral sampling."""
        generator = rng if rng is not None else np.random.default_rng()
        assignment: Dict[str, bool] = {}
        for fact_id in self._order:
            node = self._nodes[fact_id]
            parent_values = tuple(assignment[parent] for parent in node.parents)
            assignment[fact_id] = bool(generator.random() < node.cpt[parent_values])
        return assignment

    def sample_assignments(
        self, count: int, seed: Optional[int] = None
    ) -> List[Dict[str, bool]]:
        """Draw ``count`` independent truth assignments."""
        if count <= 0:
            raise InvalidDistributionError(f"count must be positive, got {count}")
        rng = np.random.default_rng(seed)
        return [self.sample_assignment(rng) for _ in range(count)]
