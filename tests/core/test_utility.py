"""Unit tests for utility / entropy helpers."""

import math

import pytest

from repro.core.distribution import JointDistribution
from repro.core.utility import (
    crowd_entropy,
    expected_posterior_entropy,
    expected_utility_gain,
    pws_quality,
    utility_gain,
)
from repro.exceptions import InvalidCrowdModelError


class TestPwsQuality:
    def test_quality_is_negative_entropy(self):
        dist = JointDistribution.independent({"a": 0.5, "b": 0.5})
        assert pws_quality(dist) == pytest.approx(-2.0)

    def test_certain_distribution_has_zero_quality(self):
        dist = JointDistribution.independent({"a": 1.0})
        assert pws_quality(dist) == pytest.approx(0.0)

    def test_quality_is_never_positive(self):
        dist = JointDistribution.independent({"a": 0.3, "b": 0.9})
        assert pws_quality(dist) <= 0.0


class TestCrowdEntropy:
    def test_perfect_crowd_has_zero_entropy(self):
        assert crowd_entropy(1.0) == pytest.approx(0.0)

    def test_useless_crowd_has_one_bit(self):
        assert crowd_entropy(0.5) == pytest.approx(1.0)

    def test_formula_matches_definition(self):
        pc = 0.8
        expected = -pc * math.log2(pc) - 0.2 * math.log2(0.2)
        assert crowd_entropy(pc) == pytest.approx(expected)

    def test_entropy_decreases_with_accuracy(self):
        assert crowd_entropy(0.9) < crowd_entropy(0.7) < crowd_entropy(0.55)

    @pytest.mark.parametrize("bad", [0.4, -0.1, 1.01])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(InvalidCrowdModelError):
            crowd_entropy(bad)


class TestGains:
    def test_utility_gain_positive_when_entropy_drops(self):
        prior = JointDistribution.independent({"a": 0.5})
        posterior = JointDistribution.independent({"a": 0.9})
        assert utility_gain(prior, posterior) > 0.0

    def test_utility_gain_zero_for_identical_distributions(self):
        dist = JointDistribution.independent({"a": 0.4})
        assert utility_gain(dist, dist) == pytest.approx(0.0)

    def test_expected_utility_gain_identity(self):
        # ΔQ = H(T) − k·H(Crowd)
        assert expected_utility_gain(1.8, 2, 0.8) == pytest.approx(
            1.8 - 2 * crowd_entropy(0.8)
        )

    def test_expected_posterior_entropy_identity(self):
        prior_entropy = 3.0
        task_entropy = 1.9
        value = expected_posterior_entropy(task_entropy, 2, 0.8, prior_entropy)
        assert value == pytest.approx(prior_entropy - (task_entropy - 2 * crowd_entropy(0.8)))

    def test_perfect_crowd_gain_equals_task_entropy(self):
        assert expected_utility_gain(1.5, 3, 1.0) == pytest.approx(1.5)
