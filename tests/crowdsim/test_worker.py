"""Unit tests for simulated workers and worker pools."""

import numpy as np
import pytest

from repro.crowdsim.task import Task
from repro.crowdsim.worker import Worker, WorkerPool
from repro.exceptions import InvalidCrowdModelError, PlatformError


class TestWorker:
    def test_invalid_accuracy_rejected(self):
        with pytest.raises(InvalidCrowdModelError):
            Worker("w1", 0.4)
        with pytest.raises(InvalidCrowdModelError):
            Worker("w1", 1.2)

    def test_invalid_domain_skill_rejected(self):
        with pytest.raises(InvalidCrowdModelError):
            Worker("w1", 0.8, domain_skills={"textbook": 0.3})

    def test_effective_accuracy_applies_difficulty(self):
        worker = Worker("w1", 0.9)
        easy = Task("f1", "q", difficulty=0.0)
        hard = Task("f2", "q", difficulty=0.3)
        assert worker.effective_accuracy(easy) == pytest.approx(0.9)
        assert worker.effective_accuracy(hard) == pytest.approx(0.6)

    def test_effective_accuracy_never_below_half(self):
        worker = Worker("w1", 0.6)
        hard = Task("f1", "q", difficulty=0.5)
        assert worker.effective_accuracy(hard) == pytest.approx(0.5)

    def test_domain_skill_overrides_base_accuracy(self):
        worker = Worker("w1", 0.6, domain_skills={"textbook": 0.95})
        task = Task("f1", "q")
        assert worker.effective_accuracy(task, domain="textbook") == pytest.approx(0.95)
        assert worker.effective_accuracy(task, domain="other") == pytest.approx(0.6)

    def test_perfect_worker_always_correct(self):
        worker = Worker("w1", 1.0)
        rng = np.random.default_rng(0)
        task = Task("f1", "q")
        assert all(worker.answer(task, True, rng) for _ in range(50))

    def test_answer_accuracy_statistics(self):
        worker = Worker("w1", 0.8)
        rng = np.random.default_rng(1)
        task = Task("f1", "q")
        correct = sum(worker.answer(task, True, rng) for _ in range(4000))
        assert correct / 4000 == pytest.approx(0.8, abs=0.03)


class TestWorkerPool:
    def test_empty_pool_rejected(self):
        with pytest.raises(PlatformError):
            WorkerPool([])

    def test_duplicate_worker_ids_rejected(self):
        with pytest.raises(PlatformError):
            WorkerPool([Worker("w1", 0.8), Worker("w1", 0.9)])

    def test_homogeneous_pool(self):
        pool = WorkerPool.homogeneous(5, 0.85, seed=0)
        assert len(pool) == 5
        assert pool.mean_accuracy() == pytest.approx(0.85)

    def test_homogeneous_invalid_size(self):
        with pytest.raises(PlatformError):
            WorkerPool.homogeneous(0, 0.8)

    def test_heterogeneous_pool_respects_bounds(self):
        pool = WorkerPool.heterogeneous(50, mean_accuracy=0.85, spread=0.2, seed=3)
        for worker in pool:
            assert 0.5 <= worker.accuracy <= 1.0

    def test_heterogeneous_mean_near_target(self):
        pool = WorkerPool.heterogeneous(200, mean_accuracy=0.8, spread=0.05, seed=5)
        assert pool.mean_accuracy() == pytest.approx(0.8, abs=0.02)

    def test_heterogeneous_invalid_spread(self):
        with pytest.raises(PlatformError):
            WorkerPool.heterogeneous(5, 0.8, spread=-0.1)

    def test_draw_returns_pool_member(self):
        pool = WorkerPool.homogeneous(3, 0.8, seed=1)
        ids = {worker.worker_id for worker in pool}
        assert pool.draw().worker_id in ids

    def test_answer_task_reports_worker_and_judgment(self):
        pool = WorkerPool.homogeneous(3, 1.0, seed=2)
        worker_id, judgment = pool.answer_task(Task("f1", "q"), ground_truth=True)
        assert worker_id.startswith("w")
        assert judgment is True

    def test_pool_answers_follow_accuracy(self):
        pool = WorkerPool.homogeneous(10, 0.7, seed=4)
        task = Task("f1", "q")
        correct = sum(pool.answer_task(task, True)[1] for _ in range(3000))
        assert correct / 3000 == pytest.approx(0.7, abs=0.03)
