"""Building correlated joint distributions over facts.

The paper's input is a joint distribution over all facts, which encodes the
correlations the task-selection algorithms exploit (the "Obama married at 31 /
married in 1992 / born in 1961" example).  This subpackage builds such
distributions from per-fact marginals plus declarative correlation rules, or
from a small discrete Bayesian network.
"""

from repro.correlation.bayesnet import BayesianNetwork, BinaryNode
from repro.correlation.builder import JointDistributionBuilder
from repro.correlation.rules import (
    CorrelationRule,
    ImplicationRule,
    MutualExclusionRule,
    PositiveCorrelationRule,
)

__all__ = [
    "BayesianNetwork",
    "BinaryNode",
    "CorrelationRule",
    "ImplicationRule",
    "JointDistributionBuilder",
    "MutualExclusionRule",
    "PositiveCorrelationRule",
]
