"""Book-corpus scenario: refine a machine-only fusion result with a noisy crowd.

Mirrors the paper's main evaluation pipeline on a scaled-down synthetic Book
corpus: generate the corpus, initialise with the modified CRH framework,
compare the machine-only quality with the crowd-refined quality, and print
the quality-vs-cost curve for the greedy selector against the random baseline.

Run with:  python examples/book_refinement.py
"""

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import (
    ExperimentConfig,
    build_problems,
    classification_scores,
    format_series,
    format_table,
    run_quality_experiment,
)
from repro.fusion import ModifiedCRH
from repro.fusion.pipeline import accuracy_against_gold


def main() -> None:
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=40, num_sources=18, seed=11)
    )
    print(
        f"Generated {len(corpus.books)} books, {len(corpus.database)} distinct "
        f"author-list claims from {corpus.database.num_sources} sources "
        f"(raw correctness {corpus.raw_correctness():.2f})."
    )

    # --- machine-only initialisation (modified CRH, Section V-A) ---------------
    crh = ModifiedCRH()
    fusion_result = crh.run(corpus.database)
    machine_accuracy = accuracy_against_gold(fusion_result, corpus.gold)
    machine_scores = classification_scores(fusion_result.labels(), corpus.gold)
    print(
        f"\nModified CRH alone: accuracy {machine_accuracy:.3f}, "
        f"F1 {machine_scores.f1:.3f} ({fusion_result.iterations} iterations)"
    )

    problems = build_problems(
        corpus.database,
        corpus.gold,
        crh,
        difficulties=corpus.difficulties,
        max_facts_per_entity=10,
    )

    # --- crowd refinement: greedy vs random, same budget ------------------------
    budget = 20
    results = {}
    for selector in ("greedy_prune_pre", "random"):
        config = ExperimentConfig(
            selector=selector,
            k=2,
            budget_per_entity=budget,
            worker_accuracy=0.85,
            use_difficulties=True,
            seed=23,
        )
        results[selector] = run_quality_experiment(problems, config)

    print(f"\nQuality after spending {budget} tasks per book (Pc = 0.85):")
    rows = []
    for selector, result in results.items():
        rows.append(
            [
                selector,
                result.initial_point.f1,
                result.final_point.f1,
                result.initial_point.utility,
                result.final_point.utility,
            ]
        )
    print(
        format_table(
            ["selector", "F1 before", "F1 after", "utility before", "utility after"],
            rows,
            float_format="{:.3f}",
        )
    )

    print("\nF1 vs cumulative cost:")
    for selector, result in results.items():
        points = list(zip(result.costs(), result.f1_series()))
        print(" ", format_series(selector, points, precision=3))


if __name__ == "__main__":
    main()
