"""Synthetic flight-departure corpus — a second, single-truth fusion domain.

Flight schedules are a classic truth-discovery benchmark (one true departure
time per flight, many noisy aggregator sites copying each other's errors).
This corpus exercises the mutual-exclusion correlation rules and the
query-based extension: a traveller usually cares about one or two flights,
not the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.fusion.claims import ClaimDatabase

_AIRLINES = ("CX", "UA", "BA", "SQ", "QF", "LH", "AF", "NH")
_AIRPORTS = ("HKG", "SFO", "LHR", "SIN", "SYD", "FRA", "CDG", "NRT", "JFK", "PEK")


@dataclass(frozen=True)
class Flight:
    """One flight with its true scheduled departure time (minutes from midnight)."""

    flight_id: str
    origin: str
    destination: str
    true_departure_minutes: int

    def __post_init__(self) -> None:
        if not 0 <= self.true_departure_minutes < 24 * 60:
            raise DatasetError("departure time must be within one day")

    @property
    def true_departure(self) -> str:
        """The true departure time formatted as ``HH:MM``."""
        return _format_minutes(self.true_departure_minutes)


def _format_minutes(minutes: int) -> str:
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


@dataclass(frozen=True)
class FlightCorpusConfig:
    """Parameters for the synthetic flight corpus."""

    num_flights: int = 50
    num_sources: int = 12
    min_sources_per_flight: int = 3
    max_sources_per_flight: int = 8
    #: Range of per-source probabilities of reporting the correct time.
    source_reliability: Tuple[float, float] = (0.4, 0.9)
    #: Probability that an incorrect report copies another source's wrong time
    #: instead of inventing a new one (error propagation between sources).
    copy_probability: float = 0.5
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_flights <= 0 or self.num_sources <= 0:
            raise DatasetError("num_flights and num_sources must be positive")
        if not 0 < self.min_sources_per_flight <= self.max_sources_per_flight:
            raise DatasetError("invalid per-flight source coverage range")
        if self.max_sources_per_flight > self.num_sources:
            raise DatasetError("max_sources_per_flight cannot exceed num_sources")
        if not 0.0 <= self.copy_probability <= 1.0:
            raise DatasetError("copy_probability must be in [0, 1]")


@dataclass
class FlightCorpus:
    """The generated corpus: flights, claim database and gold labels."""

    config: FlightCorpusConfig
    flights: List[Flight]
    database: ClaimDatabase
    gold: Dict[str, bool] = field(default_factory=dict)

    def flight(self, flight_id: str) -> Flight:
        """Look up one flight by id."""
        for flight in self.flights:
            if flight.flight_id == flight_id:
                return flight
        raise DatasetError(f"unknown flight {flight_id!r}")

    def claims_for_flight(self, flight_id: str):
        """All distinct departure-time claims for one flight."""
        return self.database.claims_for(flight_id, "departure_time")

    def raw_correctness(self) -> float:
        """Fraction of source observations that report the true departure time."""
        correct = 0
        total = 0
        for claim in self.database.claims():
            label = self.gold[claim.claim_id]
            correct += claim.support if label else 0
            total += claim.support
        if total == 0:
            raise DatasetError("corpus has no observations")
        return correct / total


def generate_flight_corpus(config: Optional[FlightCorpusConfig] = None) -> FlightCorpus:
    """Generate a deterministic synthetic flight corpus."""
    cfg = config if config is not None else FlightCorpusConfig()
    rng = np.random.default_rng(cfg.seed)

    flights: List[Flight] = []
    for index in range(cfg.num_flights):
        airline = _AIRLINES[int(rng.integers(0, len(_AIRLINES)))]
        number = int(rng.integers(100, 999))
        origin, destination = rng.choice(len(_AIRPORTS), size=2, replace=False)
        minutes = int(rng.integers(0, 24 * 12)) * 5
        flights.append(
            Flight(
                flight_id=f"{airline}{number}-{index}",
                origin=_AIRPORTS[int(origin)],
                destination=_AIRPORTS[int(destination)],
                true_departure_minutes=minutes,
            )
        )

    reliabilities = {
        f"s{i}": float(rng.uniform(*cfg.source_reliability)) for i in range(cfg.num_sources)
    }
    database = ClaimDatabase()
    gold_by_value: Dict[Tuple[str, str], bool] = {}

    source_ids = list(reliabilities)
    for flight in flights:
        coverage = int(
            rng.integers(cfg.min_sources_per_flight, cfg.max_sources_per_flight + 1)
        )
        chosen = rng.choice(len(source_ids), size=coverage, replace=False)
        wrong_times: List[int] = []
        for source_index in chosen:
            source_id = source_ids[int(source_index)]
            if rng.random() < reliabilities[source_id]:
                minutes = flight.true_departure_minutes
            elif wrong_times and rng.random() < cfg.copy_probability:
                # Copy an existing wrong value — the error-propagation pattern
                # that makes naive majority voting fail.
                minutes = wrong_times[int(rng.integers(0, len(wrong_times)))]
            else:
                offset = int(rng.choice([-60, -30, -15, 15, 30, 60, 120]))
                minutes = (flight.true_departure_minutes + offset) % (24 * 60)
                wrong_times.append(minutes)
            value = _format_minutes(minutes)
            database.add_observation(source_id, flight.flight_id, "departure_time", value)
            gold_by_value[(flight.flight_id, value)] = (
                minutes == flight.true_departure_minutes
            )

    gold: Dict[str, bool] = {}
    for claim in database.claims():
        gold[claim.claim_id] = gold_by_value[(claim.entity, claim.value)]

    return FlightCorpus(config=cfg, flights=flights, database=database, gold=gold)
