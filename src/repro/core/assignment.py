"""Truth assignments ("outputs" in the paper) and bitmask helpers.

The paper represents an *output* ``o_i`` as a complete true/false judgment
over all facts (Table II).  We encode an assignment compactly as an integer
bitmask: bit ``j`` is set iff the fact at position ``j`` is judged true.
:class:`Assignment` is a thin value object wrapping a bitmask together with
the number of facts, and provides conversions to and from tuples and
per-fact dictionaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.exceptions import InvalidFactError

if hasattr(int, "bit_count"):  # Python >= 3.10
    def popcount(mask: int) -> int:
        """Number of set bits in ``mask`` (native ``int.bit_count``)."""
        return mask.bit_count()
else:  # pragma: no cover - exercised only on very old interpreters
    _POPCOUNT16 = tuple(bin(value).count("1") for value in range(1 << 16))

    def popcount(mask: int) -> int:
        """Number of set bits in ``mask`` (16-bit lookup-table fallback)."""
        count = 0
        while mask:
            count += _POPCOUNT16[mask & 0xFFFF]
            mask >>= 16
        return count


def mask_from_bools(values: Sequence[bool]) -> int:
    """Pack a sequence of booleans (position 0 = least significant bit) into a bitmask."""
    mask = 0
    for position, value in enumerate(values):
        if value:
            mask |= 1 << position
    return mask


def bools_from_mask(mask: int, width: int) -> Tuple[bool, ...]:
    """Unpack a bitmask into a tuple of ``width`` booleans."""
    return tuple(bool(mask >> position & 1) for position in range(width))


def hamming_agreement(mask_a: int, mask_b: int, positions: Iterable[int]) -> Tuple[int, int]:
    """Count agreeing and disagreeing bits between two masks over ``positions``.

    Returns ``(num_same, num_diff)`` — the ``#Same`` and ``#Diff`` quantities
    of Equation 2 in the paper, restricted to the selected task positions.
    Each element of ``positions`` is counted once, so duplicated positions
    contribute twice and ``num_same + num_diff == len(positions)`` always.
    """
    xor = mask_a ^ mask_b
    same = 0
    diff = 0
    for position in positions:
        if xor >> position & 1:
            diff += 1
        else:
            same += 1
    return same, diff


def project_mask(mask: int, positions: Sequence[int]) -> int:
    """Project ``mask`` onto ``positions``, producing a compact sub-mask.

    Bit ``i`` of the result is the value of ``mask`` at ``positions[i]``.  This
    is how a full output is restricted to a task set or a facts-of-interest set.
    """
    sub = 0
    for i, position in enumerate(positions):
        if mask >> position & 1:
            sub |= 1 << i
    return sub


@dataclass(frozen=True)
class Assignment:
    """A complete truth assignment over an ordered fact set.

    Parameters
    ----------
    mask:
        Bitmask encoding; bit ``j`` corresponds to the fact at position ``j``.
    width:
        Number of facts covered by this assignment.
    """

    mask: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise InvalidFactError("assignment width must be positive")
        if not 0 <= self.mask < (1 << self.width):
            raise InvalidFactError(
                f"mask {self.mask} out of range for width {self.width}"
            )

    @classmethod
    def from_bools(cls, values: Sequence[bool]) -> "Assignment":
        """Build an assignment from an ordered sequence of truth values."""
        return cls(mask=mask_from_bools(values), width=len(values))

    @classmethod
    def from_dict(cls, values: Dict[str, bool], fact_ids: Sequence[str]) -> "Assignment":
        """Build an assignment from a ``fact_id -> bool`` mapping.

        ``fact_ids`` supplies the positional order; every fact id must be present
        in ``values``.
        """
        try:
            ordered = [values[fact_id] for fact_id in fact_ids]
        except KeyError as exc:
            raise InvalidFactError(f"missing judgment for fact {exc.args[0]!r}") from None
        return cls.from_bools(ordered)

    def value(self, position: int) -> bool:
        """Return the truth value at ``position``."""
        if not 0 <= position < self.width:
            raise InvalidFactError(f"position {position} out of range")
        return bool(self.mask >> position & 1)

    def to_bools(self) -> Tuple[bool, ...]:
        """Return the assignment as a tuple of booleans in positional order."""
        return bools_from_mask(self.mask, self.width)

    def to_dict(self, fact_ids: Sequence[str]) -> Dict[str, bool]:
        """Return the assignment as a ``fact_id -> bool`` mapping."""
        if len(fact_ids) != self.width:
            raise InvalidFactError(
                f"expected {self.width} fact ids, got {len(fact_ids)}"
            )
        return dict(zip(fact_ids, self.to_bools()))

    def project(self, positions: Sequence[int]) -> "Assignment":
        """Restrict the assignment to a subset of positions."""
        return Assignment(mask=project_mask(self.mask, positions), width=len(positions))

    def agreement(self, other: "Assignment", positions: Iterable[int]) -> Tuple[int, int]:
        """Return ``(#Same, #Diff)`` against another assignment over ``positions``."""
        return hamming_agreement(self.mask, other.mask, positions)

    def __str__(self) -> str:
        return "".join("T" if bit else "F" for bit in self.to_bools())
