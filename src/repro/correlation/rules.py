"""Declarative correlation rules between binary facts.

A rule contributes a multiplicative *compatibility factor* in ``(0, 1]`` to
every truth assignment: assignments that satisfy the rule keep factor 1.0,
assignments that violate it are down-weighted by the rule's strength.  The
:class:`repro.correlation.builder.JointDistributionBuilder` multiplies these
factors into the independent product of the marginals and renormalises,
yielding a correlated joint distribution.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence, Tuple

from repro.exceptions import InvalidFactError


class CorrelationRule(abc.ABC):
    """Base class: a soft constraint over a small set of facts."""

    def __init__(self, fact_ids: Sequence[str], strength: float):
        if not fact_ids:
            raise InvalidFactError("a correlation rule must reference at least one fact")
        if len(set(fact_ids)) != len(fact_ids):
            raise InvalidFactError("a correlation rule cannot repeat a fact id")
        if not 0.0 <= strength <= 1.0:
            raise InvalidFactError(
                f"rule strength must be in [0, 1], got {strength}"
            )
        self._fact_ids: Tuple[str, ...] = tuple(fact_ids)
        self._strength = strength

    @property
    def fact_ids(self) -> Tuple[str, ...]:
        """The facts this rule constrains."""
        return self._fact_ids

    @property
    def strength(self) -> float:
        """How strongly violations are penalised (1.0 = hard constraint)."""
        return self._strength

    @property
    def violation_factor(self) -> float:
        """Multiplier applied to violating assignments: ``1 − strength``.

        A strength of 1.0 makes the rule hard (violations get zero mass);
        strength 0.0 makes it a no-op.
        """
        return 1.0 - self._strength

    def factor(self, assignment: Mapping[str, bool]) -> float:
        """Compatibility factor of one truth assignment (restricted to the rule's facts)."""
        missing = [fact_id for fact_id in self._fact_ids if fact_id not in assignment]
        if missing:
            raise InvalidFactError(f"assignment is missing facts {missing} required by the rule")
        return 1.0 if self._satisfied(assignment) else self.violation_factor

    @abc.abstractmethod
    def _satisfied(self, assignment: Mapping[str, bool]) -> bool:
        """Whether the assignment satisfies the rule."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self._fact_ids)!r}, strength={self._strength})"


class MutualExclusionRule(CorrelationRule):
    """At most ``max_true`` of the referenced facts may be true.

    This models conflicting claims about the same single-valued attribute —
    e.g. "Hong Kong is in Asia" vs "Hong Kong is in Europe" in the running
    example, or two different author lists that cannot both be exactly right
    when the attribute admits a single truth.
    """

    def __init__(self, fact_ids: Sequence[str], strength: float = 0.95, max_true: int = 1):
        super().__init__(fact_ids, strength)
        if max_true < 0:
            raise InvalidFactError(f"max_true must be non-negative, got {max_true}")
        self._max_true = max_true

    @property
    def max_true(self) -> int:
        """Maximum number of facts allowed to be simultaneously true."""
        return self._max_true

    def _satisfied(self, assignment: Mapping[str, bool]) -> bool:
        return sum(1 for fact_id in self.fact_ids if assignment[fact_id]) <= self._max_true


class ImplicationRule(CorrelationRule):
    """If the antecedent fact is true then the consequent fact should be true.

    Captures inference relationships such as "married at 31" ∧ "born in 1961"
    ⇒ "married in 1992".
    """

    def __init__(self, antecedent: str, consequent: str, strength: float = 0.9):
        super().__init__((antecedent, consequent), strength)
        self._antecedent = antecedent
        self._consequent = consequent

    @property
    def antecedent(self) -> str:
        """The implying fact."""
        return self._antecedent

    @property
    def consequent(self) -> str:
        """The implied fact."""
        return self._consequent

    def _satisfied(self, assignment: Mapping[str, bool]) -> bool:
        return (not assignment[self._antecedent]) or assignment[self._consequent]


class PositiveCorrelationRule(CorrelationRule):
    """The referenced facts tend to share the same truth value.

    Useful for statements that are reformattings of one another (different
    orderings of the same author list): either all are correct or none is.
    """

    def __init__(self, fact_ids: Sequence[str], strength: float = 0.8):
        if len(fact_ids) < 2:
            raise InvalidFactError("a positive correlation needs at least two facts")
        super().__init__(fact_ids, strength)

    def _satisfied(self, assignment: Mapping[str, bool]) -> bool:
        values = {assignment[fact_id] for fact_id in self.fact_ids}
        return len(values) == 1
