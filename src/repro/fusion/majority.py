"""Majority voting — the simplest fusion baseline.

Each claim's confidence is the fraction of the sources *voting on its data
item* that assert exactly this value.  Multiple claims per data item can be
"winners" when support is tied, which suits the Book dataset where several
formattings of the same author list are all correct.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.fusion.claims import ClaimDatabase
from repro.fusion.pipeline import FusionResult
from repro.exceptions import FusionError


class MajorityVote:
    """Confidence = per-data-item support fraction."""

    name = "majority"

    def run(self, database: ClaimDatabase) -> FusionResult:
        """Score every claim in ``database``."""
        claims = database.claims()
        if not claims:
            raise FusionError("cannot fuse an empty claim database")

        votes_per_item: Dict[Tuple[str, str], int] = {}
        for claim in claims:
            item = claim.data_item
            votes_per_item[item] = votes_per_item.get(item, 0) + claim.support

        confidences = {}
        for claim in claims:
            total_votes = votes_per_item[claim.data_item]
            confidences[claim.claim_id] = claim.support / total_votes if total_votes else 0.0
        source_weights = {source.source_id: 1.0 for source in database.sources()}
        return FusionResult(
            method=self.name, confidences=confidences, source_weights=source_weights
        )
