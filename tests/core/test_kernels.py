"""The kernel registry: tier resolution, graceful degradation, equivalence.

Two contracts matter here.  Resolution: ``auto``/env/explicit requests land on
the right tier for the host, and a ``compiled`` request on a numba-less host
degrades to ``numpy`` with one log line — never an ImportError.  Numerics: the
reference tier (the compiled tier's loop bodies run as plain Python) matches
the numpy primitives within 1e-9, which is what validates the compiled
algorithm on hosts that cannot JIT.
"""

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels_module
from repro.core.entropy import (
    bsc_transform_rows,
    channel_transform_rows,
    popcount_array,
)
from repro.core.kernels import (
    KERNEL_CHOICES,
    KERNEL_ENV_VAR,
    KERNEL_TIERS,
    _reset_for_tests,
    default_tier,
    jit_disabled,
    numba_available,
    resolve_kernels,
    warmup,
)
from repro.core.runtime import RuntimeOptions
from repro.exceptions import CrowdFusionError


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Isolate every test from cached tiers and the one-time fallback flag."""
    monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
    monkeypatch.delenv("NUMBA_DISABLE_JIT", raising=False)
    _reset_for_tests()
    yield
    _reset_for_tests()


def _force_no_numba(monkeypatch):
    def missing():
        raise ModuleNotFoundError("No module named 'numba'")

    monkeypatch.setattr(kernels_module, "_import_numba", missing)


class TestResolution:
    def test_explicit_tiers_resolve_to_themselves(self, monkeypatch):
        _force_no_numba(monkeypatch)
        assert resolve_kernels("numpy").tier == "numpy"
        assert resolve_kernels("reference").tier == "reference"

    def test_auto_without_numba_is_numpy(self, monkeypatch):
        _force_no_numba(monkeypatch)
        assert resolve_kernels("auto").tier == "numpy"
        assert default_tier() == "numpy"

    def test_auto_with_numba_is_compiled(self, monkeypatch):
        # Simulate a host with the extra installed without requiring it: the
        # availability probe succeeds, and the builder receives a stand-in
        # "numba" whose njit(...)(fn) returns fn unchanged.
        class FakeNumba:
            @staticmethod
            def njit(**_kwargs):
                return lambda fn: fn

        monkeypatch.setattr(kernels_module, "_import_numba", lambda: FakeNumba)
        resolved = resolve_kernels("auto")
        assert resolved.tier == "compiled"
        assert resolved.extension_scan is not None

    def test_invalid_tier_raises(self):
        with pytest.raises(CrowdFusionError, match="kernel must be one of"):
            resolve_kernels("vectorised")

    def test_env_override_of_auto(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert resolve_kernels("auto").tier == "reference"

    def test_env_override_validated(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(CrowdFusionError, match=KERNEL_ENV_VAR):
            resolve_kernels("auto")

    def test_env_does_not_override_explicit_request(self, monkeypatch):
        _force_no_numba(monkeypatch)
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert resolve_kernels("numpy").tier == "numpy"

    def test_runtime_options_validate_kernel(self):
        assert RuntimeOptions(kernel="reference").kernel == "reference"
        with pytest.raises(CrowdFusionError, match="kernel must be one of"):
            RuntimeOptions(kernel="fast")
        assert "auto" in KERNEL_CHOICES
        assert set(KERNEL_TIERS) == {"compiled", "numpy", "reference"}


class TestGracefulDegradation:
    def test_compiled_without_numba_degrades_to_numpy(self, monkeypatch, caplog):
        _force_no_numba(monkeypatch)
        with caplog.at_level(logging.WARNING, logger=kernels_module.__name__):
            resolved = resolve_kernels("compiled")
        assert resolved.tier == "numpy"
        fallback_lines = [
            record for record in caplog.records
            if "falling back to the numpy tier" in record.getMessage()
        ]
        assert len(fallback_lines) == 1
        assert "numba is not importable" in fallback_lines[0].getMessage()

    def test_fallback_logs_exactly_once(self, monkeypatch, caplog):
        _force_no_numba(monkeypatch)
        with caplog.at_level(logging.WARNING, logger=kernels_module.__name__):
            resolve_kernels("compiled")
            resolve_kernels("compiled")
            resolve_kernels("auto")
        fallback_lines = [
            record for record in caplog.records
            if "falling back to the numpy tier" in record.getMessage()
        ]
        assert len(fallback_lines) == 1

    def test_jit_disabled_counts_as_unavailable(self, monkeypatch, caplog):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        assert jit_disabled()
        assert not numba_available()
        with caplog.at_level(logging.WARNING, logger=kernels_module.__name__):
            resolved = resolve_kernels("compiled")
        assert resolved.tier == "numpy"
        assert any(
            "NUMBA_DISABLE_JIT" in record.getMessage() for record in caplog.records
        )

    def test_jit_disabled_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "0")
        assert not jit_disabled()

    def test_engine_construction_never_raises_without_numba(self, monkeypatch):
        _force_no_numba(monkeypatch)
        from repro.core.crowd import CrowdModel
        from repro.core.distribution import JointDistribution
        from repro.core.selection.engine import EntropyEngine

        distribution = JointDistribution(("f0", "f1"), {0: 0.25, 1: 0.5, 3: 0.25})
        engine = EntropyEngine(distribution, CrowdModel(0.8), kernel="compiled")
        assert engine.kernel_tier == "numpy"


class TestWarmup:
    def test_warmup_is_idempotent(self):
        for tier in ("numpy", "reference"):
            kernels = resolve_kernels(tier)
            warmup(kernels)
            warmup(kernels)

    def test_engine_warmup_reports_tier(self):
        from repro.core.crowd import CrowdModel
        from repro.core.distribution import JointDistribution
        from repro.core.selection.engine import EntropyEngine

        distribution = JointDistribution(("f0", "f1"), {0: 0.25, 1: 0.5, 3: 0.25})
        engine = EntropyEngine(distribution, CrowdModel(0.8), kernel="reference")
        engine.warmup_kernels()
        assert engine.kernel_tier == "reference"


@st.composite
def probability_matrices(draw):
    """Row tables like the engine's grouped state: (groups, 2^bits) masses."""
    num_bits = draw(st.integers(min_value=0, max_value=4))
    groups = draw(st.integers(min_value=1, max_value=5))
    stride = 1 << num_bits
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=groups * stride,
            max_size=groups * stride,
        )
    )
    matrix = np.array(values, dtype=np.float64).reshape(groups, stride)
    return num_bits, matrix


class TestReferenceKernelEquivalence:
    """The compiled tier's loop bodies vs. the numpy primitives."""

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 62) - 1),
                    min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_popcount(self, values):
        array = np.array(values, dtype=np.int64)
        reference = resolve_kernels("reference")
        assert reference.popcount(array).tolist() == popcount_array(array).tolist()

    @given(probability_matrices(),
           st.floats(min_value=0.5, max_value=1.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_bsc_transform_rows(self, case, accuracy):
        num_bits, matrix = case
        reference = resolve_kernels("reference")
        expected = bsc_transform_rows(matrix, num_bits, accuracy)
        actual = reference.bsc_transform_rows(matrix, num_bits, accuracy)
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    @given(probability_matrices(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_channel_transform_rows(self, case, data):
        num_bits, matrix = case
        accuracies = np.array(
            data.draw(
                st.lists(
                    st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
                    min_size=num_bits,
                    max_size=num_bits,
                )
            ),
            dtype=np.float64,
        )
        reference = resolve_kernels("reference")
        expected = channel_transform_rows(matrix, accuracies)
        actual = reference.channel_transform_rows(matrix, accuracies)
        np.testing.assert_allclose(actual, expected, atol=1e-12)

    def test_refine_partition_matches_vectorized(self):
        rng = np.random.default_rng(0)
        projection = rng.integers(0, 8, size=64, dtype=np.int64)
        bits = rng.integers(0, 2, size=64).astype(np.int8)
        cell_index = rng.integers(0, 3, size=64, dtype=np.int64)
        width = 3
        reference = resolve_kernels("reference")
        refined, combined = reference.refine_partition(
            projection, bits, cell_index, width + 1
        )
        expected_refined = (projection << 1) | bits.astype(np.int64)
        expected_combined = (cell_index << np.int64(width + 1)) | expected_refined
        assert refined.tolist() == expected_refined.tolist()
        assert combined.tolist() == expected_combined.tolist()
