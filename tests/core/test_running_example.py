"""Pin the implementation to the paper's running example (Tables I–IV).

The multiset of entropies in Table III is reproduced exactly; the best
size-2 task set is {f1, f4} with H(T) ≈ 1.997 as the paper states.
"""

import itertools

import pytest

from repro.core.crowd import CrowdModel
from repro.core.selection import get_selector
from repro.datasets.running_example import (
    running_example_answer_table,
    running_example_distribution,
    running_example_facts,
)


@pytest.fixture(scope="module")
def dist():
    return running_example_distribution()


@pytest.fixture(scope="module")
def crowd():
    return CrowdModel(0.8)


class TestTableI:
    def test_four_facts(self):
        facts = running_example_facts()
        assert len(facts) == 4
        assert facts.fact_ids == ("f1", "f2", "f3", "f4")

    def test_marginals_match_table_one(self, dist):
        marginals = dist.marginals()
        assert marginals["f1"] == pytest.approx(0.50, abs=1e-9)
        assert marginals["f2"] == pytest.approx(0.63, abs=1e-9)
        assert marginals["f3"] == pytest.approx(0.58, abs=1e-9)
        assert marginals["f4"] == pytest.approx(0.49, abs=1e-9)

    def test_fact_priors_match_marginals(self, dist):
        facts = running_example_facts()
        for fact_id, marginal in dist.marginals().items():
            assert facts[fact_id].prior == pytest.approx(marginal, abs=1e-2)


class TestTableII:
    def test_sixteen_outputs(self, dist):
        assert dist.support_size == 16

    def test_probabilities_sum_to_one(self, dist):
        assert sum(p for _, p in dist.items()) == pytest.approx(1.0)

    def test_specific_cells(self, dist):
        assert dist.probability((False, False, False, False)) == pytest.approx(0.03)
        assert dist.probability((True, True, True, True)) == pytest.approx(0.11)
        assert dist.probability((False, True, True, False)) == pytest.approx(0.11)


class TestTableIII:
    """Entropies of all size-2 task sets (Pc = 0.8)."""

    PAPER_TASK_ENTROPIES = sorted([1.993, 1.982, 1.997, 1.975, 1.993, 1.982])
    PAPER_FACT_ENTROPIES = sorted([1.981, 1.949, 1.976, 1.929, 1.977, 1.948])

    def test_task_entropy_multiset_matches_paper(self, dist, crowd):
        values = sorted(
            crowd.task_entropy(dist, pair)
            for pair in itertools.combinations(dist.fact_ids, 2)
        )
        for ours, paper in zip(values, self.PAPER_TASK_ENTROPIES):
            assert ours == pytest.approx(paper, abs=2e-3)

    def test_fact_entropy_multiset_matches_paper(self, dist):
        values = sorted(
            dist.marginalize(pair).entropy()
            for pair in itertools.combinations(dist.fact_ids, 2)
        )
        for ours, paper in zip(values, self.PAPER_FACT_ENTROPIES):
            assert ours == pytest.approx(paper, abs=2e-3)

    def test_best_pair_is_f1_f4(self, dist, crowd):
        best = max(
            itertools.combinations(dist.fact_ids, 2),
            key=lambda pair: crowd.task_entropy(dist, pair),
        )
        assert set(best) == {"f1", "f4"}
        assert crowd.task_entropy(dist, best) == pytest.approx(1.997, abs=2e-3)

    def test_highest_task_entropy_differs_from_highest_fact_entropy(self, dist, crowd):
        """The paper's point: maximising H({f_i}) is not maximising H(T)."""
        best_by_tasks = max(
            itertools.combinations(dist.fact_ids, 2),
            key=lambda pair: crowd.task_entropy(dist, pair),
        )
        best_by_facts = max(
            itertools.combinations(dist.fact_ids, 2),
            key=lambda pair: dist.marginalize(pair).entropy(),
        )
        assert set(best_by_tasks) != set(best_by_facts)


class TestTableIV:
    def test_answer_table_has_sixteen_rows(self):
        table = running_example_answer_table(0.8)
        assert table.support_size == 16

    def test_answer_table_cells_match_paper(self):
        table = running_example_answer_table(0.8)
        expected = {
            (False, False, False, False): 0.049,
            (False, False, False, True): 0.050,
            (False, True, True, False): 0.087,
            (True, True, True, True): 0.085,
            (True, False, False, False): 0.047,
        }
        for assignment, probability in expected.items():
            assert table.probability(assignment) == pytest.approx(probability, abs=1.5e-3)

    def test_answer_table_sums_to_one(self):
        table = running_example_answer_table(0.8)
        assert sum(p for _, p in table.items()) == pytest.approx(1.0)


class TestSelectionOnRunningExample:
    def test_greedy_selects_f1_then_f4(self, dist, crowd):
        result = get_selector("greedy").select(dist, crowd, 2)
        assert result.task_ids == ("f1", "f4")
        assert result.objective == pytest.approx(1.997, abs=2e-3)

    def test_all_greedy_variants_agree(self, dist, crowd):
        expected = get_selector("greedy").select(dist, crowd, 2)
        for name in ("greedy_prune", "greedy_pre", "greedy_prune_pre"):
            result = get_selector(name).select(dist, crowd, 2)
            assert set(result.task_ids) == set(expected.task_ids)
            assert result.objective == pytest.approx(expected.objective, abs=1e-9)

    def test_opt_matches_greedy_here(self, dist, crowd):
        opt = get_selector("opt").select(dist, crowd, 2)
        greedy = get_selector("greedy").select(dist, crowd, 2)
        assert set(opt.task_ids) == set(greedy.task_ids)
