"""Durable orchestrator overhead: checkpointing cost and resume latency.

Two scenarios, recorded into the shared ``BENCH_selection.json`` artifact:

* ``orchestration/checkpoint_overhead_*`` — the same sweep through the
  in-memory entity fan-out (``parallel_entities=2``, PR 5) and through the
  durable orchestrator (2 shards, fsync'd journal + atomic checkpoints).
  The curves must be identical; the durability tax on wall-clock must stay
  within ~10%% of the fan-out.
* ``orchestration/resume_latency_*`` — resuming an already-complete run
  directory (journal replay only, zero recomputation) against the cost of
  the full sweep, the "how fast does a crashed sweep come back" number.
"""

import itertools
import os

import pytest

from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.evaluation.experiment import (
    ExperimentConfig,
    RuntimeOptions,
    build_problems,
    run_quality_experiment,
)
from repro.fusion.crh import ModifiedCRH
from repro.orchestration import OrchestratorConfig, run_checkpointed_experiment

from bench_selection_hotpath import _record_scenarios, best_of

from dataclasses import replace

SEED = 0
SHARDS = 2
#: The durable run may cost at most this factor over the in-memory fan-out
#: (fsync'd journal appends + one atomic checkpoint per entity).
MAX_CHECKPOINT_OVERHEAD = 1.10

pytestmark = pytest.mark.parallel


def _problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=8, num_sources=12, max_sources_per_book=10, seed=SEED + 4)
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=10,
    )


def test_checkpoint_overhead_vs_entity_fanout(tmp_path):
    """Durable sweep vs in-memory fan-out: identical curves, bounded overhead."""
    problems = _problems()
    config = ExperimentConfig(
        selector="greedy_prune_pre", k=2, budget_per_entity=12, seed=SEED
    )
    fanned_config = replace(
        config, runtime=RuntimeOptions(parallel_entities=SHARDS)
    )
    cpus = os.cpu_count() or 1
    run_dirs = (str(tmp_path / f"run{i}") for i in itertools.count())

    fanned_result = run_quality_experiment(problems, fanned_config)
    durable_report = run_checkpointed_experiment(
        problems, config, OrchestratorConfig(run_dir=next(run_dirs), shards=SHARDS)
    )
    assert durable_report.result.points == fanned_result.points

    fanned_seconds = best_of(
        lambda: run_quality_experiment(problems, fanned_config), repeats=2
    )
    durable_seconds = best_of(
        lambda: run_checkpointed_experiment(
            problems,
            config,
            OrchestratorConfig(run_dir=next(run_dirs), shards=SHARDS),
        ),
        repeats=2,
    )
    overhead = durable_seconds / fanned_seconds

    entry = {
        "suite": "orchestration",
        "description": (
            f"Budget-{config.budget_per_entity} sweep over {len(problems)} "
            f"books: durable orchestrator ({SHARDS} shards, fsync'd journal "
            "+ per-entity atomic checkpoints) vs the in-memory entity "
            "fan-out on the same shard count.  Curves are asserted "
            "identical; 'overhead' is the durability tax on wall-clock."
        ),
        "entities": len(problems),
        "budget_per_entity": config.budget_per_entity,
        "k": config.k,
        "shards": SHARDS,
        "cpus": cpus,
        "curve_points": len(fanned_result.points),
        "fanout_seconds": fanned_seconds,
        "durable_seconds": durable_seconds,
        "checkpoint_overhead": overhead,
        "identical_curves": True,
    }
    _record_scenarios(
        {f"orchestration/checkpoint_overhead_books{len(problems)}"
         f"_b{config.budget_per_entity}_w{SHARDS}": entry}
    )

    if cpus >= SHARDS:
        assert overhead <= MAX_CHECKPOINT_OVERHEAD, entry


def test_resume_latency_of_a_complete_run(tmp_path):
    """Resuming a finished sweep replays the journal instead of recomputing."""
    problems = _problems()
    config = ExperimentConfig(
        selector="greedy_prune_pre", k=2, budget_per_entity=12, seed=SEED
    )
    run_dir = str(tmp_path / "run")

    full = best_of(
        lambda: run_checkpointed_experiment(
            problems,
            config,
            OrchestratorConfig(run_dir=run_dir, shards=SHARDS, resume=True),
        ),
        repeats=1,
    )
    # Every subsequent call only replays the journal and re-assembles the
    # curve — that replay cost is the resume latency.
    resume = best_of(
        lambda: run_checkpointed_experiment(
            problems,
            config,
            OrchestratorConfig(run_dir=run_dir, shards=SHARDS, resume=True),
        ),
        repeats=3,
    )
    report = run_checkpointed_experiment(
        problems,
        config,
        OrchestratorConfig(run_dir=run_dir, shards=SHARDS, resume=True),
    )
    assert report.resumed == len(problems)

    entry = {
        "suite": "orchestration",
        "description": (
            f"Resume of a complete {len(problems)}-entity run directory: "
            "journal replay + curve assembly only, no trajectories re-run.  "
            "'speedup_vs_full' is how much faster the crashed sweep comes "
            "back compared to computing it from scratch."
        ),
        "entities": len(problems),
        "budget_per_entity": config.budget_per_entity,
        "shards": SHARDS,
        "full_seconds": full,
        "resume_seconds": resume,
        "speedup_vs_full": full / resume,
    }
    _record_scenarios(
        {f"orchestration/resume_latency_books{len(problems)}"
         f"_b{config.budget_per_entity}": entry}
    )

    assert resume < full, entry
