"""The crash-safe work-queue orchestrator for entity-trajectory sweeps.

:func:`run_checkpointed_experiment` shards entity trajectories across a
supervised pool of fork-context worker processes and journals every
completed entity — curve-relevant floats, RNG-seed provenance, attempt
counts — to a per-run directory before moving on.  The journal is the
source of truth: resuming replays it, keeps every completed entity verbatim
(JSON floats round-trip exactly), re-enqueues entities that were in flight
when the process died, and hands the merged trajectory set to the same
:func:`~repro.evaluation.experiment.assemble_curve` the in-memory fan-out
uses — so a resumed sweep's curve is bit-identical to an undisturbed one.

Failure policy: a shard that dies or reports an error costs the entity one
attempt; the entity is re-enqueued with linear backoff until
``max_attempts``, after which it is quarantined (recorded with its error,
excluded from the curve, never blocking the sweep).  Dead shards are
replaced immediately.  The shard pool registers with the process-wide
shutdown guard (:func:`repro.core.selection.parallel.register_shutdown_reaper`),
so an orchestrator SIGTERM reaps its shard processes along with any
shared-memory rings instead of leaking them.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

import multiprocessing
from multiprocessing.connection import wait as _wait_connections

from repro.core.selection.parallel import (
    fork_available,
    register_shutdown_reaper,
    unregister_shutdown_reaper,
)
from repro.evaluation.experiment import (
    EntityProblem,
    EntityTrajectory,
    ExperimentConfig,
    ExperimentResult,
    assemble_curve,
)
from repro.evaluation.reporting import CurveStream
from repro.exceptions import OrchestrationError
from repro.orchestration import worker as _worker_module
from repro.orchestration.journal import (
    JournalWriter,
    RunLock,
    atomic_write_json,
    read_json,
    read_records,
)

#: Run-directory file names.
MANIFEST_NAME = "run.json"
JOURNAL_NAME = "journal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"
CURVE_NAME = "curve.jsonl"
LOCK_NAME = "lock"

#: Journal schema version (bumped on incompatible record changes).
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class OrchestratorConfig:
    """Durability and supervision knobs of one checkpointed sweep.

    Attributes
    ----------
    run_dir:
        Per-run directory holding manifest, journal, checkpoints and curve.
    shards:
        Worker processes running entity trajectories (clamped to the number
        of pending entities).
    max_attempts:
        Attempts per entity before it is quarantined.
    retry_backoff_s:
        Linear backoff: attempt ``n`` waits ``retry_backoff_s * (n - 1)``
        seconds before re-dispatch.
    resume:
        Allow continuing a run directory that already holds a manifest;
        without it a populated run directory is refused (guarding against
        accidentally mixing two different sweeps).
    """

    run_dir: str
    shards: int = 2
    max_attempts: int = 3
    retry_backoff_s: float = 0.0
    resume: bool = False

    def __post_init__(self) -> None:
        if not self.run_dir:
            raise OrchestrationError("run_dir must be a non-empty path")
        if self.shards < 1:
            raise OrchestrationError(f"shards must be >= 1, got {self.shards}")
        if self.max_attempts < 1:
            raise OrchestrationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.retry_backoff_s < 0:
            raise OrchestrationError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )


@dataclass
class OrchestratorReport:
    """Outcome of one :func:`run_checkpointed_experiment` invocation."""

    result: ExperimentResult
    run_dir: str
    completed: int
    resumed: int
    quarantined: Tuple[Tuple[str, str], ...] = ()

    @property
    def quarantined_entities(self) -> List[str]:
        return [entity for entity, _ in self.quarantined]


def _fingerprint(
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    budget_overrides: Mapping[str, int],
) -> Dict[str, Any]:
    """Everything that determines the sweep's trajectories, JSON-ready.

    Two invocations with equal fingerprints produce bit-identical
    trajectories, so resume refuses a mismatch rather than silently mixing
    two different sweeps in one journal.
    """
    runtime = config.runtime_options
    return {
        "journal_version": JOURNAL_VERSION,
        "entities": [problem.entity for problem in problems],
        "budget_overrides": {k: int(v) for k, v in sorted(budget_overrides.items())},
        "selector": config.selector,
        "k": config.k,
        "budget_per_entity": config.budget_per_entity,
        "worker_accuracy": config.worker_accuracy,
        "assumed_accuracy": config.assumed_accuracy,
        "answers_per_task": config.answers_per_task,
        "use_difficulties": config.use_difficulties,
        "seed": config.seed,
        "crowd_model": config.crowd_model,
        "calibration_facts": config.calibration_facts,
        "calibration_repetitions": config.calibration_repetitions,
        "recalibrate": runtime.recalibrate,
        "kernel": str(runtime.kernel),
    }


def check_manifest(
    run_dir: str, fingerprint: Dict[str, Any], resume: bool
) -> None:
    """Verify (or create) the run manifest; refuse mixing two sweeps.

    Shared by the single-host orchestrator and the cluster coordinator —
    both must refuse to resume a directory created for a different sweep.
    """
    manifest_path = os.path.join(run_dir, MANIFEST_NAME)
    existing = read_json(manifest_path)
    if existing is not None:
        if not resume:
            raise OrchestrationError(
                f"run directory {run_dir} already holds a run; pass "
                "resume=True (--resume) to continue it"
            )
        if existing != fingerprint:
            raise OrchestrationError(
                f"run directory {run_dir} was created for a different "
                "sweep (manifest fingerprint mismatch); refusing to mix"
            )
    else:
        atomic_write_json(manifest_path, fingerprint)


def entity_done_record(
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    index: int,
    attempt: int,
    payload: Dict[str, Any],
) -> Dict[str, Any]:
    """The journal record of one completed entity, RNG provenance included."""
    return {
        "type": "entity_done",
        "index": index,
        "entity": problems[index].entity,
        "attempt": attempt,
        "seeds": {
            "worker_seed": config.seed * 7919 + index,
            "selector_seed": (
                config.seed * 104729 + index
                if config.selector in ("random", "Random")
                else None
            ),
        },
        "trajectory": payload,
    }


def assemble_result(
    state: "_RunState",
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    run_dir: str,
    stream: Optional[CurveStream],
) -> Tuple[ExperimentResult, Tuple[Tuple[str, str], ...]]:
    """Assemble the curve from every completed entity and stream it to disk.

    The single code path that turns a set of journalled trajectories into
    ``curve.jsonl`` — single-host sweeps, resumed sweeps and merged
    multi-host sweeps all converge here, which is what makes the
    bit-identity guarantee assertable on the curve file.
    """
    trajectories: List[EntityTrajectory] = []
    gold: Dict[str, bool] = {}
    for index in sorted(state.completed):
        record = state.completed[index]
        trajectories.append(
            _worker_module.trajectory_from_payload(record["trajectory"])
        )
        gold.update(problems[index].gold)
    if not trajectories:
        raise OrchestrationError(
            "every entity was quarantined; no curve can be assembled "
            f"(see {os.path.join(run_dir, JOURNAL_NAME)})"
        )
    result = ExperimentResult(config=config)
    curve_path = os.path.join(run_dir, CURVE_NAME)
    if os.path.exists(curve_path):
        os.unlink(curve_path)
    with JournalWriter(curve_path) as curve_journal:
        for position, point in enumerate(assemble_curve(trajectories, gold)):
            result.points.append(point)
            curve_journal.append(
                {
                    "point": position,
                    "cost": point.cost,
                    "utility": point.utility,
                    "f1": point.f1,
                    "precision": point.precision,
                    "recall": point.recall,
                    "accuracy": point.accuracy,
                }
            )
            if stream is not None:
                stream.emit(point)
    quarantined = tuple(
        (record["entity"], record["error"])
        for _, record in sorted(state.quarantined.items())
    )
    return result, quarantined


@dataclass
class _Shard:
    """One supervised worker process and its command pipe."""

    process: multiprocessing.process.BaseProcess
    connection: Any
    current: Optional[Tuple[int, int]] = None  # (entity index, attempt)

    @property
    def busy(self) -> bool:
        return self.current is not None


class _ShardPool:
    """Forks, supervises and reaps the shard processes of one sweep."""

    def __init__(self, size: int) -> None:
        self._context = multiprocessing.get_context("fork")
        self.shards: List[_Shard] = [self._fork() for _ in range(size)]

    def _fork(self) -> _Shard:
        parent_end, child_end = self._context.Pipe()
        process = self._context.Process(
            target=_worker_module.shard_main, args=(child_end,), daemon=True
        )
        process.start()
        child_end.close()
        return _Shard(process=process, connection=parent_end)

    def replace(self, shard: _Shard) -> _Shard:
        """Reap a dead shard and fork its replacement in place."""
        try:
            shard.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        shard.process.join(timeout=1.0)
        replacement = self._fork()
        self.shards[self.shards.index(shard)] = replacement
        return replacement

    def idle(self) -> List[_Shard]:
        return [shard for shard in self.shards if not shard.busy]

    def busy(self) -> List[_Shard]:
        return [shard for shard in self.shards if shard.busy]

    def shutdown(self) -> None:
        """Graceful stop: send the stop token, join, escalate if needed."""
        for shard in self.shards:
            try:
                shard.connection.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for shard in self.shards:
            shard.process.join(timeout=2.0)
        self.reap_on_shutdown()

    def reap_on_shutdown(self) -> None:
        """Hard stop, safe to call from atexit/SIGTERM: terminate then kill."""
        for shard in self.shards:
            if shard.process.is_alive():
                shard.process.terminate()
        for shard in self.shards:
            if shard.process.is_alive():
                shard.process.join(timeout=1.0)
            if shard.process.is_alive():  # pragma: no cover - stuck in syscall
                shard.process.kill()
                shard.process.join(timeout=1.0)
            try:
                shard.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass


class _RunState:
    """Journal-backed progress of one sweep (replayed on resume)."""

    def __init__(self, problems: Sequence[EntityProblem]) -> None:
        self.problems = problems
        self.completed: Dict[int, Dict[str, Any]] = {}
        self.quarantined: Dict[int, Dict[str, Any]] = {}
        self.attempts: Dict[int, int] = {}

    def replay(self, records: Sequence[Dict[str, Any]]) -> None:
        for record in records:
            kind = record.get("type")
            index = record.get("index")
            if kind == "entity_done":
                self.completed[index] = record
            elif kind == "entity_failed":
                self.attempts[index] = max(
                    self.attempts.get(index, 0), int(record.get("attempt", 1))
                )
            elif kind == "quarantined":
                self.quarantined[index] = record
            # "started" records mark in-flight work; an orchestrator crash
            # mid-entity is not the entity's fault, so they do not count
            # against max_attempts — the entity is simply pending again.

    def pending_indices(self) -> List[int]:
        return [
            index
            for index in range(len(self.problems))
            if index not in self.completed and index not in self.quarantined
        ]

    def checkpoint_payload(self, status: str) -> Dict[str, Any]:
        return {
            "status": status,
            "total": len(self.problems),
            "completed": sorted(self.completed),
            "quarantined": sorted(self.quarantined),
            "pending": self.pending_indices(),
        }


def run_checkpointed_experiment(
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    orchestrator: OrchestratorConfig,
    budgets: Optional[Mapping[str, int]] = None,
    stream: Optional[CurveStream] = None,
) -> OrchestratorReport:
    """Run (or resume) a durable sharded sweep and return its curve.

    The sweep is driven as a work queue: every pending entity index is
    dispatched to the first idle shard, a ``started`` journal record lands
    before the dispatch, and an ``entity_done`` record (with the trajectory
    and its RNG-seed provenance) plus an atomic checkpoint land before the
    next dispatch from the queue.  Killing this process at *any* point and
    calling again with ``resume=True`` therefore loses at most the entities
    that were mid-flight — which are re-run from their per-entity seeds,
    producing the exact floats the lost run would have.
    """
    if not problems:
        raise OrchestrationError("cannot orchestrate an empty problem list")
    if not fork_available():
        raise OrchestrationError(
            "the durable orchestrator shards work via the 'fork' start "
            "method, which this platform does not provide"
        )
    budget_overrides = dict(budgets or {})
    run_dir = orchestrator.run_dir
    os.makedirs(run_dir, exist_ok=True)

    with RunLock(os.path.join(run_dir, LOCK_NAME)):
        fingerprint = _fingerprint(problems, config, budget_overrides)
        check_manifest(run_dir, fingerprint, orchestrator.resume)

        state = _RunState(problems)
        state.replay(read_records(os.path.join(run_dir, JOURNAL_NAME)))
        resumed = len(state.completed)
        pending = state.pending_indices()

        with JournalWriter(os.path.join(run_dir, JOURNAL_NAME)) as journal:
            checkpoint_path = os.path.join(run_dir, CHECKPOINT_NAME)
            if pending:
                _run_pending(
                    pending, problems, config, budget_overrides,
                    orchestrator, state, journal, checkpoint_path,
                )
            atomic_write_json(checkpoint_path, state.checkpoint_payload("complete"))

        # Assemble the curve from every completed entity, in index order —
        # the same code path as the in-memory fan-out.  Quarantined entities
        # are excluded (their gold too, so scores stay comparable).
        result, quarantined = assemble_result(
            state, problems, config, run_dir, stream
        )
        return OrchestratorReport(
            result=result,
            run_dir=run_dir,
            completed=len(state.completed),
            resumed=resumed,
            quarantined=quarantined,
        )


def _run_pending(
    pending: Sequence[int],
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    budget_overrides: Dict[str, int],
    orchestrator: OrchestratorConfig,
    state: _RunState,
    journal: JournalWriter,
    checkpoint_path: str,
) -> None:
    """Drive the shard pool until every pending entity is done or quarantined."""
    #: Work items: (entity index, attempt number, earliest dispatch time).
    queue: Deque[Tuple[int, int, float]] = deque(
        (index, state.attempts.get(index, 0) + 1, 0.0) for index in pending
    )

    def handle_failure(index: int, attempt: int, message: str) -> None:
        entity = problems[index].entity
        journal.append(
            {
                "type": "entity_failed",
                "index": index,
                "entity": entity,
                "attempt": attempt,
                "error": message,
            }
        )
        state.attempts[index] = max(state.attempts.get(index, 0), attempt)
        if attempt >= orchestrator.max_attempts:
            record = {
                "type": "quarantined",
                "index": index,
                "entity": entity,
                "attempts": attempt,
                "error": message,
            }
            journal.append(record)
            state.quarantined[index] = record
            atomic_write_json(checkpoint_path, state.checkpoint_payload("running"))
        else:
            not_before = time.monotonic() + orchestrator.retry_backoff_s * attempt
            queue.append((index, attempt + 1, not_before))

    def handle_done(index: int, attempt: int, payload: Dict[str, Any]) -> None:
        record = entity_done_record(problems, config, index, attempt, payload)
        journal.append(record)
        state.completed[index] = record
        atomic_write_json(checkpoint_path, state.checkpoint_payload("running"))

    pool_size = max(1, min(orchestrator.shards, len(pending)))
    _worker_module._SHARD_CONTEXT = (list(problems), config, budget_overrides)
    pool = _ShardPool(pool_size)
    register_shutdown_reaper(pool)
    try:
        atomic_write_json(checkpoint_path, state.checkpoint_payload("running"))
        while queue or pool.busy():
            now = time.monotonic()
            # Dispatch eligible work to idle shards.
            for shard in pool.idle():
                item = _pop_eligible(queue, now)
                if item is None:
                    break
                index, attempt, _ = item
                journal.append(
                    {
                        "type": "started",
                        "index": index,
                        "entity": problems[index].entity,
                        "attempt": attempt,
                    }
                )
                shard.connection.send(index)
                shard.current = (index, attempt)

            busy = pool.busy()
            if not busy:
                if queue:
                    # Everything eligible is in retry backoff: sleep to the
                    # earliest dispatch time.
                    wake = min(not_before for _, _, not_before in queue)
                    time.sleep(max(0.0, min(wake - time.monotonic(), 0.5)))
                continue

            ready = _wait_connections(
                [shard.connection for shard in busy], timeout=0.2
            )
            for connection in ready:
                shard = next(s for s in busy if s.connection is connection)
                index, attempt = shard.current
                try:
                    reply = connection.recv()
                except (EOFError, OSError):
                    # The shard died mid-entity (SIGKILL, fault injection):
                    # charge the attempt and fork a replacement.  Reap it
                    # first so the reported exitcode is the real one, not
                    # the None of a not-yet-waited-on corpse.
                    shard.process.join(timeout=1.0)
                    handle_failure(
                        index,
                        attempt,
                        f"shard died (exitcode {shard.process.exitcode})",
                    )
                    pool.replace(shard)
                    continue
                shard.current = None
                kind, reply_index, body = reply
                if kind == "ok":
                    handle_done(reply_index, attempt, body)
                else:
                    handle_failure(reply_index, attempt, str(body))

            # A shard can die without its pipe ever becoming ready (e.g.
            # killed before the handshake): sweep for silent deaths too.
            for shard in pool.busy():
                if not shard.process.is_alive():
                    index, attempt = shard.current
                    shard.process.join(timeout=1.0)
                    handle_failure(
                        index,
                        attempt,
                        f"shard died (exitcode {shard.process.exitcode})",
                    )
                    pool.replace(shard)
    finally:
        unregister_shutdown_reaper(pool)
        pool.shutdown()
        _worker_module._SHARD_CONTEXT = None


def _pop_eligible(
    queue: "Deque[Tuple[int, int, float]]", now: float
) -> Optional[Tuple[int, int, float]]:
    """Pop the first queue item whose backoff deadline has passed."""
    for _ in range(len(queue)):
        item = queue.popleft()
        if item[2] <= now:
            return item
        queue.append(item)
    return None
