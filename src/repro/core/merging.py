"""Bayesian merging of crowd answers into the joint output distribution.

Section III-A of the paper: after receiving an answer set ``Ans`` for the
selected tasks, every output ``o`` is rescored as

``P(o | Ans) = P(o) · P(Ans | o) / P(Ans)``

with ``P(Ans | o) = Pc^#Same · (1 − Pc)^#Diff`` counted over the selected
facts only (Equation 3).  Under a heterogeneous channel model the likelihood
factorises per task instead: ``P(Ans | o) = Π_i (acc_i if Ans_i = o_i else
1 − acc_i)`` — the same channels the selection engine scores with, so what
selection expected is exactly what merging applies.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.entropy import bit_column, popcount_array, project_columns
from repro.exceptions import SelectionError


def answer_likelihood_array(
    distribution: JointDistribution, answers: AnswerSet, crowd: ChannelModel
) -> np.ndarray:
    """Likelihood ``P(Ans | o)`` per support row, aligned to ``support_arrays``.

    This is the primitive both :func:`merge_answers` and the persistent
    refinement sessions reweight with; the alignment contract is that row
    ``i`` of the result multiplies the mass of ``support_arrays()[0][i]``.
    """
    judgments = answers.judgments()
    if not judgments:
        raise SelectionError("cannot merge an empty answer set")
    if distribution.num_facts > 63:
        # Wide-fact supports merge on the packed uint64 bit planes so the
        # per-round Bayesian update stays vectorized (the object-dtype mask
        # column is never materialised on this path).
        masks = distribution.support_planes()
    else:
        masks, _ = distribution.support_arrays()

    uniform = crowd.uniform_accuracy
    if uniform is not None:
        positions = []
        answer_mask = 0
        for index, (fact_id, judgment) in enumerate(judgments.items()):
            positions.append(distribution.position(fact_id))
            if judgment:
                answer_mask |= 1 << index
        projected = project_columns(masks, tuple(positions))
        diff = popcount_array(projected ^ answer_mask)
        same = len(positions) - diff
        return (uniform ** same) * ((1.0 - uniform) ** diff)

    values = np.ones(masks.shape[0], dtype=np.float64)
    for fact_id, judgment in judgments.items():
        position = distribution.position(fact_id)
        accuracy = crowd.accuracy_for(fact_id)
        agrees = bit_column(masks, position).astype(bool)
        if not judgment:
            agrees = ~agrees
        values *= np.where(agrees, accuracy, 1.0 - accuracy)
    return values


def answer_likelihoods(
    distribution: JointDistribution, answers: AnswerSet, crowd: ChannelModel
) -> Dict[int, float]:
    """Per-output likelihood ``P(Ans | o)`` for every output in the support.

    The returned mapping is keyed by assignment bitmask and can be fed to
    :meth:`JointDistribution.reweight`.
    """
    masks, _ = distribution.support_arrays()
    values = answer_likelihood_array(distribution, answers, crowd)
    return dict(zip(masks.tolist(), values.tolist()))


def answer_probability(
    distribution: JointDistribution, answers: AnswerSet, crowd: ChannelModel
) -> float:
    """Marginal probability ``P(Ans)`` of receiving this exact answer set (Equation 2)."""
    likelihoods = answer_likelihoods(distribution, answers, crowd)
    return sum(
        probability * likelihoods[mask] for mask, probability in distribution.items()
    )


def merge_answers(
    distribution: JointDistribution, answers: AnswerSet, crowd: ChannelModel
) -> JointDistribution:
    """Posterior joint distribution after observing ``answers`` (Equation 3).

    The update multiplies every output's probability by its answer likelihood
    and renormalises; outputs that conflict with the crowd lose mass, outputs
    that agree gain mass — exactly the running-example update in Section III-A.
    """
    return distribution.reweight_array(
        answer_likelihood_array(distribution, answers, crowd)
    )


def merge_answer_sequence(
    distribution: JointDistribution,
    answer_sets: "list[AnswerSet]",
    crowd: ChannelModel,
) -> JointDistribution:
    """Fold a sequence of answer sets into the distribution, one Bayes step each.

    Because worker errors are independent across tasks and across rounds, the
    sequential update equals the joint update; this helper mirrors how the
    multi-round engine applies one round's answers at a time.
    """
    current = distribution
    for answers in answer_sets:
        current = merge_answers(current, answers, crowd)
    return current
