"""SessionPool.remove: evicting one session without touching its siblings."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection import SessionPool
from repro.exceptions import SelectionError


def distribution():
    return JointDistribution.independent({"f1": 0.7, "f2": 0.4, "f3": 0.55})


def test_remove_returns_the_closed_session():
    with SessionPool() as pool:
        session = pool.add("book", distribution(), CrowdModel(0.8))
        removed = pool.remove("book")
        assert removed is session
        assert "book" not in pool
        assert len(pool) == 0


def test_removed_key_can_be_added_again():
    with SessionPool() as pool:
        pool.add("book", distribution(), CrowdModel(0.8))
        pool.remove("book")
        replacement = pool.add("book", distribution(), CrowdModel(0.9))
        assert pool["book"] is replacement


def test_remove_unknown_key_raises():
    with SessionPool() as pool:
        with pytest.raises(SelectionError, match="no key 'ghost'"):
            pool.remove("ghost")


def test_remove_leaves_other_sessions_usable():
    with SessionPool() as pool:
        pool.add("a", distribution(), CrowdModel(0.8))
        keeper = pool.add("b", distribution(), CrowdModel(0.8))
        pool.remove("a")
        marginals = keeper.marginals()
        assert set(marginals) == {"f1", "f2", "f3"}
