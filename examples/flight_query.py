"""Query-based CrowdFusion (Section IV) on the flight-departure corpus.

A traveller cares about a couple of specific flights, not the whole schedule
table.  This example builds a correlated prior over one flight's conflicting
departure-time claims (mutual exclusion: only one time can be right), then
compares standard task selection with query-based selection that targets only
the facts of interest.

Run with:  python examples/flight_query.py
"""

from repro.core import CrowdFusionEngine, CrowdModel, Query
from repro.core.selection import QueryGreedySelector, get_selector
from repro.correlation import JointDistributionBuilder, MutualExclusionRule
from repro.crowdsim import SimulatedPlatform, WorkerPool
from repro.datasets import FlightCorpusConfig, generate_flight_corpus
from repro.evaluation import format_table
from repro.fusion import MajorityVote


def main() -> None:
    corpus = generate_flight_corpus(
        FlightCorpusConfig(num_flights=30, num_sources=12, seed=29)
    )
    fusion = MajorityVote().run(corpus.database)

    # Pick the flight with the most conflicting claims: the hardest case.
    flight = max(corpus.flights, key=lambda f: len(corpus.claims_for_flight(f.flight_id)))
    claims = corpus.claims_for_flight(flight.flight_id)
    print(
        f"Flight {flight.flight_id} ({flight.origin} -> {flight.destination}); "
        f"true departure {flight.true_departure}; {len(claims)} conflicting claims."
    )

    # Correlated prior: at most one departure-time claim can be true.
    marginals = {
        claim.claim_id: min(0.9, max(0.1, fusion.confidence(claim.claim_id)))
        for claim in claims
    }
    prior = JointDistributionBuilder(
        marginals,
        [MutualExclusionRule([claim.claim_id for claim in claims], strength=0.98)],
    ).build()

    rows = [
        [claim.claim_id, claim.value, prior.marginal(claim.claim_id),
         str(corpus.gold[claim.claim_id])]
        for claim in claims
    ]
    print(format_table(["claim", "departure", "prior P(true)", "gold"], rows,
                       float_format="{:.3f}"))

    # The traveller only cares about the claim reporting the earliest time.
    interest_claim = min(claims, key=lambda claim: claim.value)
    query = Query.of([interest_claim.claim_id], name="is-the-earliest-time-right")
    print(f"\nFacts of interest: {query.fact_ids} "
          f"(claimed departure {interest_claim.value})")

    gold = {claim.claim_id: corpus.gold[claim.claim_id] for claim in claims}
    crowd = CrowdModel(0.85)

    def run(selector, label):
        platform = SimulatedPlatform(
            ground_truth=gold, workers=WorkerPool.homogeneous(15, 0.85, seed=41)
        )
        engine = CrowdFusionEngine(selector, crowd, budget=4, tasks_per_round=1)
        result = engine.run(prior, platform)
        interest_entropy = result.final_distribution.marginalize(query.fact_ids).entropy()
        asked = [fact for record in result.rounds for fact in record.task_ids]
        print(
            f"  {label}: asked {asked}; "
            f"query utility {query.utility(prior):.3f} -> {-interest_entropy:.3f}; "
            f"P({query.fact_ids[0]}) = "
            f"{result.final_distribution.marginal(query.fact_ids[0]):.3f}"
        )

    print("\nSpending a budget of 4 tasks:")
    run(get_selector("greedy_prune_pre"), "standard CrowdFusion  ")
    run(QueryGreedySelector(query), "query-based CrowdFusion")


if __name__ == "__main__":
    main()
