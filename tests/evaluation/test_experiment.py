"""Unit tests for the experiment runner (build_problems + run_quality_experiment)."""

import pytest

from repro.correlation.rules import MutualExclusionRule
from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.evaluation.experiment import (
    EntityProblem,
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.exceptions import CrowdFusionError, DatasetError
from repro.fusion.crh import ModifiedCRH
from repro.fusion.majority import MajorityVote
from repro.core.distribution import JointDistribution
from repro.core.facts import Fact, FactSet


@pytest.fixture(scope="module")
def corpus():
    return generate_book_corpus(
        BookCorpusConfig(num_books=8, num_sources=12, seed=21)
    )


@pytest.fixture(scope="module")
def problems(corpus):
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


class TestEntityProblem:
    def test_missing_gold_label_rejected(self):
        facts = FactSet([Fact("c1", "e", "a", "v")])
        prior = JointDistribution.independent({"c1": 0.5})
        with pytest.raises(DatasetError):
            EntityProblem(entity="e", facts=facts, prior=prior, gold={})


class TestBuildProblems:
    def test_one_problem_per_entity(self, corpus, problems):
        assert len(problems) == len(corpus.database.entities())

    def test_fact_cap_respected(self, problems):
        assert all(len(problem.facts) <= 8 for problem in problems)

    def test_prior_and_facts_aligned(self, problems):
        for problem in problems:
            assert problem.prior.fact_ids == problem.facts.fact_ids

    def test_gold_labels_cover_all_facts(self, problems):
        for problem in problems:
            assert set(problem.gold) == set(problem.prior.fact_ids)

    def test_entity_filter(self, corpus):
        wanted = list(corpus.database.entities())[:3]
        problems = build_problems(
            corpus.database, corpus.gold, MajorityVote(), entities=wanted
        )
        assert [problem.entity for problem in problems] == wanted

    def test_rule_factory_changes_prior(self, corpus):
        def exclusive(entity, fact_ids):
            if len(fact_ids) < 2:
                return []
            return [MutualExclusionRule(fact_ids, strength=0.8, max_true=2)]

        independent = build_problems(corpus.database, corpus.gold, MajorityVote())
        correlated = build_problems(
            corpus.database, corpus.gold, MajorityVote(), rule_factory=exclusive
        )
        changed = any(
            not a.prior.allclose(b.prior)
            for a, b in zip(independent, correlated)
            if a.prior.num_facts >= 2
        )
        assert changed

    def test_empty_result_rejected(self, corpus):
        with pytest.raises(DatasetError):
            build_problems(
                corpus.database, corpus.gold, MajorityVote(), entities=["no-such-entity"]
            )


class TestRunQualityExperiment:
    def test_requires_problems(self):
        with pytest.raises(CrowdFusionError):
            run_quality_experiment([], ExperimentConfig())

    def test_curve_starts_at_zero_cost(self, problems):
        config = ExperimentConfig(k=2, budget_per_entity=4, worker_accuracy=0.9, seed=3)
        result = run_quality_experiment(problems, config)
        assert result.points[0].cost == 0
        assert result.initial_point is result.points[0]
        assert result.final_point is result.points[-1]

    def test_costs_strictly_increase(self, problems):
        config = ExperimentConfig(k=2, budget_per_entity=4, worker_accuracy=0.9, seed=3)
        result = run_quality_experiment(problems, config)
        costs = result.costs()
        assert costs == sorted(costs)
        assert len(set(costs)) == len(costs)

    def test_total_cost_bounded_by_budget(self, problems):
        config = ExperimentConfig(k=3, budget_per_entity=6, worker_accuracy=0.8, seed=1)
        result = run_quality_experiment(problems, config)
        assert result.final_point.cost <= 6 * len(problems)

    def test_accurate_crowd_improves_f1_and_utility(self, problems):
        config = ExperimentConfig(
            selector="greedy_prune_pre", k=2, budget_per_entity=10,
            worker_accuracy=0.95, seed=5,
        )
        result = run_quality_experiment(problems, config)
        assert result.final_point.f1 >= result.initial_point.f1
        assert result.final_point.utility > result.initial_point.utility

    def test_deterministic_given_seed(self, problems):
        config = ExperimentConfig(k=2, budget_per_entity=4, worker_accuracy=0.8, seed=11)
        first = run_quality_experiment(problems, config)
        second = run_quality_experiment(problems, config)
        assert first.f1_series() == second.f1_series()
        assert first.utility_series() == second.utility_series()

    def test_assumed_accuracy_defaults_to_worker_accuracy(self):
        config = ExperimentConfig(worker_accuracy=0.77)
        assert config.model_accuracy == 0.77
        override = ExperimentConfig(worker_accuracy=0.77, assumed_accuracy=0.9)
        assert override.model_accuracy == 0.9

    def test_random_selector_runs(self, problems):
        config = ExperimentConfig(
            selector="random", k=2, budget_per_entity=4, worker_accuracy=0.8, seed=2
        )
        result = run_quality_experiment(problems, config)
        assert result.final_point.cost > 0

    def test_series_accessors_aligned(self, problems):
        config = ExperimentConfig(k=2, budget_per_entity=4, worker_accuracy=0.8, seed=4)
        result = run_quality_experiment(problems, config)
        assert len(result.costs()) == len(result.f1_series()) == len(result.utility_series())


class TestCrowdModelFidelities:
    def test_every_crowd_model_kind_runs(self, problems):
        for kind in ("uniform", "difficulty", "calibrated"):
            config = ExperimentConfig(
                k=2, budget_per_entity=4, worker_accuracy=0.85,
                use_difficulties=True, seed=6, crowd_model=kind,
            )
            result = run_quality_experiment(problems, config)
            assert result.final_point.cost > 0

    def test_calibration_spend_is_on_the_books(self, problems):
        config = ExperimentConfig(
            k=2, budget_per_entity=4, worker_accuracy=0.85, seed=6,
            crowd_model="calibrated", calibration_facts=3, calibration_repetitions=2,
        )
        result = run_quality_experiment(problems, config)
        # Each entity's pre-test asked 3 facts x 2 repetitions before round 1.
        assert result.initial_point.cost == 6 * len(problems)

    def test_unknown_crowd_model_rejected(self, problems):
        config = ExperimentConfig(crowd_model="psychic", budget_per_entity=2)
        with pytest.raises(CrowdFusionError):
            run_quality_experiment(problems, config)

    def test_difficulty_model_without_difficulties_matches_uniform(self, problems):
        base = ExperimentConfig(
            k=2, budget_per_entity=4, worker_accuracy=0.85,
            use_difficulties=False, seed=9, crowd_model="uniform",
        )
        adjusted = ExperimentConfig(
            k=2, budget_per_entity=4, worker_accuracy=0.85,
            use_difficulties=False, seed=9, crowd_model="difficulty",
        )
        # With difficulties disabled the per-fact channels collapse to the
        # shared Pc, so the two fidelities are the same experiment.
        assert run_quality_experiment(problems, base).f1_series() == (
            run_quality_experiment(problems, adjusted).f1_series()
        )

    def test_crowd_models_deterministic_given_seed(self, problems):
        for kind in ("difficulty", "calibrated"):
            config = ExperimentConfig(
                k=2, budget_per_entity=4, worker_accuracy=0.85,
                use_difficulties=True, seed=13, crowd_model=kind,
            )
            first = run_quality_experiment(problems, config)
            second = run_quality_experiment(problems, config)
            assert first.utility_series() == second.utility_series()
