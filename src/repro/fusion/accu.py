"""Bayesian source-accuracy fusion (ACCU-style, Dong et al. VLDB 2009).

Each source is modelled as answering correctly with some accuracy; claims
are scored by the posterior probability that they are the true value of
their data item, assuming a uniform prior over the distinct claimed values
plus an "unknown other value" pseudo-claim.  Source accuracies and claim
posteriors are refined by EM-style alternation.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.fusion.claims import ClaimDatabase
from repro.fusion.pipeline import FusionResult
from repro.exceptions import FusionError


class BayesianVote:
    """ACCU-style Bayesian fusion with iterated source-accuracy estimation.

    Parameters
    ----------
    initial_accuracy:
        Starting accuracy of every source.
    false_values:
        Assumed number of incorrect values a wrong source could have produced
        (the ``n`` of the ACCU model); spreads the error mass.
    max_iterations, tolerance:
        Convergence controls on the source-accuracy updates.
    """

    name = "bayesian_vote"

    def __init__(
        self,
        initial_accuracy: float = 0.7,
        false_values: int = 10,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
    ):
        if not 0.0 < initial_accuracy < 1.0:
            raise FusionError(
                f"initial_accuracy must be in (0, 1), got {initial_accuracy}"
            )
        if false_values <= 0:
            raise FusionError(f"false_values must be positive, got {false_values}")
        if max_iterations <= 0:
            raise FusionError(f"max_iterations must be positive, got {max_iterations}")
        self._initial_accuracy = initial_accuracy
        self._false_values = false_values
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def run(self, database: ClaimDatabase) -> FusionResult:
        """Alternate claim-posterior computation and source-accuracy estimation."""
        claims = database.claims()
        if not claims:
            raise FusionError("cannot fuse an empty claim database")
        sources = [source.source_id for source in database.sources()]

        accuracy: Dict[str, float] = {
            source_id: self._initial_accuracy for source_id in sources
        }
        posteriors: Dict[str, float] = {}
        iterations_run = 0

        for iteration in range(1, self._max_iterations + 1):
            iterations_run = iteration
            posteriors = self._claim_posteriors(database, accuracy)
            new_accuracy = self._source_accuracy(database, posteriors)
            drift = sum(
                abs(new_accuracy[source_id] - accuracy[source_id]) for source_id in sources
            )
            accuracy = new_accuracy
            if drift < self._tolerance:
                break

        return FusionResult(
            method=self.name,
            confidences=posteriors,
            source_weights=dict(accuracy),
            iterations=iterations_run,
        )

    def _vote_score(self, source_accuracy: float) -> float:
        """ACCU vote count of one source: ``ln(n·A / (1 − A))``."""
        clipped = min(0.99, max(0.01, source_accuracy))
        return math.log(self._false_values * clipped / (1.0 - clipped))

    def _claim_posteriors(
        self, database: ClaimDatabase, accuracy: Dict[str, float]
    ) -> Dict[str, float]:
        """Softmax of per-claim vote counts within each data item."""
        claims = database.claims()
        votes = {
            claim.claim_id: sum(
                self._vote_score(accuracy.get(source_id, self._initial_accuracy))
                for source_id in claim.sources
            )
            for claim in claims
        }
        grouped: Dict[Tuple[str, str], list] = {}
        for claim in claims:
            grouped.setdefault(claim.data_item, []).append(claim.claim_id)

        posteriors: Dict[str, float] = {}
        for _item, claim_ids in grouped.items():
            # Include a pseudo-claim with zero votes representing "some other
            # value none of the sources mentioned", so even a unanimously
            # supported claim keeps probability < 1.
            scores = [votes[claim_id] for claim_id in claim_ids] + [0.0]
            peak = max(scores)
            exponentials = [math.exp(score - peak) for score in scores]
            normaliser = sum(exponentials)
            for claim_id, value in zip(claim_ids, exponentials[:-1]):
                posteriors[claim_id] = value / normaliser
        return posteriors

    def _source_accuracy(
        self, database: ClaimDatabase, posteriors: Dict[str, float]
    ) -> Dict[str, float]:
        """Source accuracy = mean posterior of the claims it asserts."""
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for claim in database.claims():
            for source_id in claim.sources:
                totals[source_id] = totals.get(source_id, 0.0) + posteriors[claim.claim_id]
                counts[source_id] = counts.get(source_id, 0) + 1
        accuracy = {}
        for source in database.sources():
            count = counts.get(source.source_id, 0)
            if count == 0:
                accuracy[source.source_id] = self._initial_accuracy
            else:
                accuracy[source.source_id] = min(
                    0.99, max(0.01, totals[source.source_id] / count)
                )
        return accuracy
