"""Typed requests, responses, errors and wire codecs of the refinement service.

Everything that crosses the service boundary is declared here, so the server,
the transport and the client share one vocabulary:

* the **error hierarchy** — every service failure is a
  :class:`ServiceError` with a stable machine-readable ``code`` and an
  HTTP-flavoured ``status`` (429 for backpressure, 404 for unknown sessions,
  402 for an exhausted budget, 400 for malformed input), so transports can
  map failures without string matching;
* the **response dataclasses** — immutable views the server hands back
  (:class:`SessionCreated`, :class:`MergeReport`, :class:`PosteriorView`,
  :class:`SelectionReply`, :class:`SessionClosed`), each with a
  ``to_payload`` / ``from_payload`` pair for the JSON transport;
* the **wire codecs** for the core value types — joint distributions travel
  as ``(support mask, probability)`` pairs (the session's native
  representation, so a posterior round-trips bit-for-bit), channel models as
  their uniform accuracy or per-fact override table, answers as a plain
  ``fact id → bool`` mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Type

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel, CrowdModel, PerFactChannelModel
from repro.core.distribution import JointDistribution
from repro.exceptions import CrowdFusionError

#: Safety bound on one request *or response* line (a 20-fact support is
#: ~100 KB of JSON).  Both transport endpoints must size their stream
#: buffers from it: asyncio's default 64 KiB StreamReader limit would make
#: ``readline()`` raise on any realistic posterior payload.
MAX_LINE_BYTES = 8 * 1024 * 1024


# -- errors ----------------------------------------------------------------------------


class ServiceError(CrowdFusionError):
    """Base class of every refinement-service failure.

    ``code`` is the stable wire identifier; ``status`` the HTTP-flavoured
    class of the failure.  Both are class attributes so a transport can
    serialise any service error without knowing the concrete type.

    ``retry_safe`` is the server's explicit promise that the failed request
    performed **no state change** — a client may resend it without risking a
    double merge or double charge.  It travels on the wire, so the client's
    retry policy follows the server's verdict rather than guessing from
    status codes.  The conservative default is ``False``.
    """

    code = "service_error"
    status = 500
    retry_safe = False


class UnknownSessionError(ServiceError):
    """The addressed session id does not exist (never created, or closed)."""

    code = "unknown_session"
    status = 404


class SessionOverloadedError(ServiceError):
    """The session's bounded request queue is full — fail fast, retry later.

    The 429 of the service: per-tenant backpressure rejects new work
    *immediately* instead of letting one chatty tenant grow an unbounded
    backlog that starves every other tenant of the shared worker pools.
    Retry-safe by construction — the rejected request was never queued.
    """

    code = "session_overloaded"
    status = 429
    retry_safe = True


class BudgetExhaustedError(ServiceError):
    """The session's task budget ``B`` cannot cover the requested work."""

    code = "budget_exhausted"
    status = 402


class ValidationFailedError(ServiceError):
    """The request payload is structurally or semantically malformed."""

    code = "validation_failed"
    status = 400


class DeadlineExceededError(ServiceError):
    """The request's ``deadline_ms`` elapsed before the work started/finished.

    Retry-safe by contract: a deadline is only ever enforced at points where
    no session state has changed — before a queued job begins, before a merge
    is charged, or around a *read-only* selection/posterior computation whose
    abandoned result is discarded without touching the caches.  Merges that
    have started are never deadline-aborted (at-most-once would be lost).
    """

    code = "deadline_exceeded"
    status = 504
    retry_safe = True


class MergeAbortedError(ServiceError):
    """A queued merge never ran because an earlier merge in its batch failed.

    Its budget charge has been refunded and the posterior is exactly as if
    the request had never been sent — the retry-safe sibling of the
    *failed* merge (which stays a plain non-retry-safe ``service_error``:
    its session state is indeterminate).
    """

    code = "merge_aborted"
    status = 503
    retry_safe = True


#: ``code → exception class`` — how the client re-raises a wire error.
ERROR_TYPES: Dict[str, Type[ServiceError]] = {
    cls.code: cls
    for cls in (
        ServiceError,
        UnknownSessionError,
        SessionOverloadedError,
        BudgetExhaustedError,
        ValidationFailedError,
        DeadlineExceededError,
        MergeAbortedError,
    )
}


def error_payload(error: ServiceError) -> Dict[str, Any]:
    """The wire form of a service error."""
    return {
        "code": error.code,
        "status": error.status,
        "message": str(error),
        "retry_safe": bool(error.retry_safe),
    }


def raise_from_payload(payload: Mapping[str, Any]) -> None:
    """Re-raise a wire error as its typed :class:`ServiceError` subclass.

    The wire ``retry_safe`` flag wins over the class default (an instance
    attribute shadows it), so a newer server's verdict survives a client
    that does not know the concrete error code.
    """
    error_type = ERROR_TYPES.get(str(payload.get("code")), ServiceError)
    error = error_type(str(payload.get("message", "service call failed")))
    if "retry_safe" in payload:
        error.retry_safe = bool(payload["retry_safe"])
    raise error


# -- core value codecs -----------------------------------------------------------------


def encode_distribution(distribution: JointDistribution) -> Dict[str, Any]:
    """A joint distribution as fact ids plus ``(mask, probability)`` pairs."""
    return {
        "fact_ids": list(distribution.fact_ids),
        "entries": [[mask, probability] for mask, probability in distribution.items()],
    }


def decode_distribution(payload: Mapping[str, Any]) -> JointDistribution:
    try:
        fact_ids = [str(fact_id) for fact_id in payload["fact_ids"]]
        entries = {int(mask): float(probability) for mask, probability in payload["entries"]}
    except (KeyError, TypeError, ValueError) as error:
        raise ValidationFailedError(f"malformed distribution payload: {error}") from None
    try:
        return JointDistribution(fact_ids, entries)
    except CrowdFusionError as error:
        raise ValidationFailedError(f"invalid distribution: {error}") from None


def encode_channel(channel: ChannelModel) -> Dict[str, Any]:
    """A channel model as its uniform accuracy or per-fact override table.

    Every heterogeneous model the service accepts reduces to a default
    accuracy plus overrides (:class:`PerFactChannelModel` is the concrete
    representation difficulty-adjusted and calibrated models are built on),
    so the wire form is behaviourally complete even though the concrete
    subclass name is not preserved.
    """
    if isinstance(channel, CrowdModel):
        return {"kind": "uniform", "accuracy": channel.accuracy}
    if isinstance(channel, PerFactChannelModel):
        return {
            "kind": "per_fact",
            "default_accuracy": channel.default_accuracy,
            "fact_accuracies": dict(channel.fact_accuracies),
        }
    raise ValidationFailedError(
        f"channel model {type(channel).__name__} has no wire representation; "
        "use CrowdModel or a PerFactChannelModel subclass"
    )


def decode_channel(payload: Mapping[str, Any]) -> ChannelModel:
    kind = payload.get("kind")
    try:
        if kind == "uniform":
            return CrowdModel(float(payload["accuracy"]))
        if kind == "per_fact":
            return PerFactChannelModel(
                float(payload["default_accuracy"]),
                {
                    str(fact_id): float(accuracy)
                    for fact_id, accuracy in payload.get("fact_accuracies", {}).items()
                },
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ValidationFailedError(f"malformed channel payload: {error}") from None
    except CrowdFusionError as error:
        raise ValidationFailedError(f"invalid channel: {error}") from None
    raise ValidationFailedError(f"unknown channel kind {kind!r}")


def encode_answers(answers: AnswerSet) -> Dict[str, bool]:
    return answers.judgments()


def decode_answers(payload: Mapping[str, Any]) -> AnswerSet:
    if not payload:
        raise ValidationFailedError("an answer payload cannot be empty")
    try:
        return AnswerSet.from_mapping(
            {str(fact_id): bool(value) for fact_id, value in payload.items()}
        )
    except (TypeError, ValueError, CrowdFusionError) as error:
        raise ValidationFailedError(f"malformed answers payload: {error}") from None


# -- responses -------------------------------------------------------------------------


@dataclass(frozen=True)
class SessionCreated:
    """Receipt for a freshly created refinement session."""

    session_id: str
    num_facts: int
    support_size: int
    budget: int
    selector: str

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "num_facts": self.num_facts,
            "support_size": self.support_size,
            "budget": self.budget,
            "selector": self.selector,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SessionCreated":
        return cls(
            session_id=str(payload["session_id"]),
            num_facts=int(payload["num_facts"]),
            support_size=int(payload["support_size"]),
            budget=int(payload["budget"]),
            selector=str(payload["selector"]),
        )


@dataclass(frozen=True)
class MergeReport:
    """Outcome of one Bayesian merge (``post_answers``)."""

    session_id: str
    rounds_merged: int
    answers_merged: int
    budget_remaining: int
    utility: float

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "rounds_merged": self.rounds_merged,
            "answers_merged": self.answers_merged,
            "budget_remaining": self.budget_remaining,
            "utility": self.utility,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MergeReport":
        return cls(
            session_id=str(payload["session_id"]),
            rounds_merged=int(payload["rounds_merged"]),
            answers_merged=int(payload["answers_merged"]),
            budget_remaining=int(payload["budget_remaining"]),
            utility=float(payload["utility"]),
        )


@dataclass(frozen=True)
class PosteriorView:
    """The session's current posterior (``get_posterior``).

    ``support`` is the native ``(mask, probability)`` representation — the
    same pairs a :class:`JointDistribution` is built from, so
    :meth:`distribution` reconstructs the posterior exactly.
    """

    session_id: str
    fact_ids: Tuple[str, ...]
    support: Tuple[Tuple[int, float], ...]
    marginals: Dict[str, float]
    utility: float
    rounds_merged: int

    def distribution(self) -> JointDistribution:
        """Materialise the posterior as a :class:`JointDistribution`."""
        return JointDistribution(list(self.fact_ids), dict(self.support))

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "fact_ids": list(self.fact_ids),
            "support": [[mask, probability] for mask, probability in self.support],
            "marginals": dict(self.marginals),
            "utility": self.utility,
            "rounds_merged": self.rounds_merged,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PosteriorView":
        return cls(
            session_id=str(payload["session_id"]),
            fact_ids=tuple(str(fact_id) for fact_id in payload["fact_ids"]),
            support=tuple(
                (int(mask), float(probability)) for mask, probability in payload["support"]
            ),
            marginals={
                str(fact_id): float(value)
                for fact_id, value in payload["marginals"].items()
            },
            utility=float(payload["utility"]),
            rounds_merged=int(payload["rounds_merged"]),
        )


@dataclass(frozen=True)
class SelectionReply:
    """The next task set the session recommends (``select_next``)."""

    session_id: str
    task_ids: Tuple[str, ...]
    objective: float
    budget_remaining: int
    cached: bool

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "task_ids": list(self.task_ids),
            "objective": self.objective,
            "budget_remaining": self.budget_remaining,
            "cached": self.cached,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SelectionReply":
        return cls(
            session_id=str(payload["session_id"]),
            task_ids=tuple(str(task_id) for task_id in payload["task_ids"]),
            objective=float(payload["objective"]),
            budget_remaining=int(payload["budget_remaining"]),
            cached=bool(payload["cached"]),
        )


@dataclass(frozen=True)
class SessionClosed:
    """Receipt for an evicted session."""

    session_id: str
    rounds_merged: int
    budget_spent: int

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "rounds_merged": self.rounds_merged,
            "budget_spent": self.budget_spent,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "SessionClosed":
        return cls(
            session_id=str(payload["session_id"]),
            rounds_merged=int(payload["rounds_merged"]),
            budget_spent=int(payload["budget_spent"]),
        )
