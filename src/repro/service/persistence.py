"""Durable session snapshots for the refinement service.

:class:`SessionSnapshotStore` persists one JSON file per session — the
posterior support (via the wire codec, so floats round-trip exactly), the
channel state, the selector name and the budget ledger — using the same
atomic tmp-write-then-rename substrate the experiment orchestrator
checkpoints with (:func:`repro.orchestration.journal.atomic_write_json`).
The registry writes snapshots after merges (debounced) and on eviction, and
rebuilds sessions from them on server restart or when an evicted tenant
comes back: the stored posterior becomes the revived session's prior, which
reproduces every marginal to within float-serialisation exactness.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.crowd import ChannelModel
from repro.core.selection.session import RefinementSession
from repro.orchestration.journal import atomic_write_json, read_json
from repro.service.api import (
    ValidationFailedError,
    decode_channel,
    decode_distribution,
    encode_channel,
    encode_distribution,
)

#: Snapshot schema version (bumped on incompatible payload changes).
SNAPSHOT_VERSION = 1


class SessionSnapshotStore:
    """One JSON snapshot file per session, written atomically."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, session_id: str) -> str:
        return os.path.join(self.directory, f"{session_id}.json")

    def save(
        self,
        session_id: str,
        session: RefinementSession,
        selector_name: str,
        budget: int,
        spent: int,
    ) -> None:
        """Snapshot one session's durable state (posterior, channel, ledger)."""
        atomic_write_json(
            self._path(session_id),
            {
                "version": SNAPSHOT_VERSION,
                "session_id": session_id,
                "selector": selector_name,
                "budget": budget,
                "spent": spent,
                "rounds_merged": session.rounds_merged,
                "channel": encode_channel(session.channel),
                "posterior": encode_distribution(session.distribution),
            },
        )

    def load(self, session_id: str) -> Optional[Dict[str, Any]]:
        """The raw snapshot payload, or ``None`` when none exists."""
        payload = read_json(self._path(session_id))
        if payload is None:
            return None
        if payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationFailedError(
                f"session snapshot {session_id} has version "
                f"{payload.get('version')!r}; this build reads version "
                f"{SNAPSHOT_VERSION}"
            )
        return payload

    def delete(self, session_id: str) -> None:
        """Remove a session's snapshot (deliberate close, not eviction)."""
        try:
            os.unlink(self._path(session_id))
        except FileNotFoundError:
            pass

    def stored_ids(self) -> List[str]:
        """Session ids with a snapshot on disk, sorted."""
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.directory)
            if name.endswith(".json")
        )


def decode_snapshot(payload: Dict[str, Any]) -> "tuple[Any, ChannelModel]":
    """The (distribution, channel) pair a snapshot rebuilds a session from."""
    return (
        decode_distribution(payload["posterior"]),
        decode_channel(payload["channel"]),
    )
