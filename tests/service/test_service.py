"""In-process suite for the multi-tenant refinement service.

Runs :class:`RefinementService` directly (no sockets, serial runtime) and
pins the whole request contract: typed responses, budget accounting,
generation-keyed caching, fail-fast backpressure, typed errors, the metrics
payload — and the headline property that any interleaving of async tenants
yields per-session trajectories identical to serial replay through a fresh
:class:`RefinementSession`.
"""

import asyncio
import threading

import pytest

from repro.core.answers import AnswerSet
from repro.core.crowd import CrowdModel, PerFactChannelModel
from repro.core.runtime import RuntimeOptions
from repro.core.selection import RefinementSession, get_selector
from repro.core.selection.parallel import fork_available
from repro.service import RefinementService
from repro.service.api import (
    BudgetExhaustedError,
    ServiceError,
    SessionOverloadedError,
    UnknownSessionError,
    ValidationFailedError,
)
from repro.service.server import _Job

from tests.core.selection.test_persistent_pool import (
    dense_distribution,
    scripted_answers,
)


def run(coroutine):
    return asyncio.run(coroutine)


def make_prior(seed=0):
    return dense_distribution(5, 24, seed=seed)


class TestRoundTrip:
    def test_create_select_post_posterior_close(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=6
                )
                assert created.num_facts == 5 and created.budget == 6
                assert service.sessions_live == 1

                reply = await service.select_next(created.session_id, batch=2)
                assert len(reply.task_ids) == 2 and not reply.cached
                assert reply.budget_remaining == 6

                report = await service.post_answers(
                    created.session_id, {t: True for t in reply.task_ids}
                )
                assert report.rounds_merged == 1
                assert report.answers_merged == 2
                assert report.budget_remaining == 4

                view = await service.get_posterior(created.session_id)
                assert set(view.marginals) == set(view.fact_ids)
                assert abs(sum(p for _, p in view.support) - 1.0) < 1e-9
                assert view.distribution().fact_ids == view.fact_ids

                closed = await service.close_session(created.session_id)
                assert closed.rounds_merged == 1 and closed.budget_spent == 2
                assert service.sessions_live == 0

        run(scenario())

    def test_answers_accept_answer_sets_and_mappings(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=6
                )
                fact = created.session_id and make_prior().fact_ids[0]
                by_mapping = await service.post_answers(created.session_id, {fact: True})
                by_set = await service.post_answers(
                    created.session_id, AnswerSet.from_mapping({fact: False})
                )
                assert by_mapping.rounds_merged == 1 and by_set.rounds_merged == 2

        run(scenario())


class TestBudget:
    def test_posting_over_the_remaining_budget_rejects_the_whole_batch(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=1
                )
                fact_ids = make_prior().fact_ids
                with pytest.raises(BudgetExhaustedError):
                    await service.post_answers(
                        created.session_id, {f: True for f in fact_ids[:2]}
                    )
                # The rejected batch must not have merged or charged anything.
                view = await service.get_posterior(created.session_id)
                assert view.rounds_merged == 0

        run(scenario())

    def test_selection_clamps_to_remaining_then_exhausts(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=3
                )
                first = await service.select_next(created.session_id, batch=5)
                assert len(first.task_ids) == 3  # clamped to the budget
                await service.post_answers(
                    created.session_id, {t: True for t in first.task_ids}
                )
                with pytest.raises(BudgetExhaustedError):
                    await service.select_next(created.session_id, batch=1)

        run(scenario())


class TestCaching:
    def test_selection_is_cached_until_a_merge_invalidates(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=10
                )
                first = await service.select_next(created.session_id, batch=2)
                second = await service.select_next(created.session_id, batch=2)
                assert not first.cached and second.cached
                assert second.task_ids == first.task_ids

                await service.post_answers(
                    created.session_id, {t: True for t in first.task_ids}
                )
                third = await service.select_next(created.session_id, batch=2)
                assert not third.cached

                metrics = service.metrics()
                assert metrics["selections"]["count"] == 3
                assert metrics["selections"]["cache_hits"] == 1

        run(scenario())

    def test_posterior_cache_counts_hits(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=10
                )
                first = await service.get_posterior(created.session_id)
                second = await service.get_posterior(created.session_id)
                assert second is first  # same generation, cached object
                assert service.metrics()["posterior_cache_hits"] == 1

        run(scenario())


class TestErrors:
    def test_unknown_session_raises_404(self):
        async def scenario():
            async with RefinementService() as service:
                with pytest.raises(UnknownSessionError) as excinfo:
                    await service.select_next("s-999999")
                assert excinfo.value.status == 404

        run(scenario())

    def test_unknown_fact_ids_fail_validation(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=6
                )
                with pytest.raises(ValidationFailedError, match="no facts"):
                    await service.post_answers(created.session_id, {"ghost": True})

        run(scenario())

    def test_empty_answers_invalid_batch_and_bad_selector(self):
        async def scenario():
            async with RefinementService() as service:
                with pytest.raises(ValidationFailedError, match="selector"):
                    await service.create_session(
                        make_prior(), CrowdModel(0.8), budget=6, selector="psychic"
                    )
                with pytest.raises(ValidationFailedError, match="budget"):
                    await service.create_session(
                        make_prior(), CrowdModel(0.8), budget=0
                    )
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=6
                )
                with pytest.raises(ValidationFailedError, match="batch"):
                    await service.select_next(created.session_id, batch=0)
                with pytest.raises(ValidationFailedError):
                    await service.post_answers(created.session_id, {})

        run(scenario())

    def test_shutdown_service_refuses_requests(self):
        async def scenario():
            service = RefinementService()
            await service.shutdown()
            with pytest.raises(ServiceError):
                await service.create_session(make_prior(), CrowdModel(0.8), budget=6)

        run(scenario())


class TestFaultIsolation:
    """Runtime failures must fail one request, never a session's drainer."""

    def test_selector_crash_becomes_service_error_and_drain_survives(self):
        class ExplodingSelector:
            name = "exploding"

            def select_with_session(self, session, k):
                raise RuntimeError("pool worker crashed")

        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=6
                )
                record = service._registry.get(created.session_id)
                real_selector = record.selector
                record.selector = ExplodingSelector()
                # A non-ServiceError from the core runtime surfaces as a
                # typed ServiceError on this request's future...
                with pytest.raises(ServiceError, match="select failed"):
                    await service.select_next(created.session_id, batch=2)
                # ...and the drain task survives: the session keeps serving.
                record.selector = real_selector
                reply = await service.select_next(created.session_id, batch=2)
                assert len(reply.task_ids) == 2
                report = await service.post_answers(
                    created.session_id, {t: True for t in reply.task_ids}
                )
                assert report.rounds_merged == 1

        run(scenario())

    def test_merge_batch_partial_failure_refunds_jobs_that_never_ran(self):
        async def scenario():
            async with RefinementService() as service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=10
                )
                record = service._registry.get(created.session_id)
                session = record.session
                fact_ids = session.fact_ids
                real_merge = session.merge
                calls = []

                def flaky_merge(answers):
                    calls.append(answers)
                    if len(calls) == 2:
                        raise OSError("worker pipe broke")
                    return real_merge(answers)

                session.merge = flaky_merge
                loop = asyncio.get_running_loop()
                jobs = [
                    _Job(
                        "merge",
                        AnswerSet.from_mapping({fact_ids[i]: True}),
                        loop.create_future(),
                    )
                    for i in range(3)
                ]
                await service._run_merge_batch(record, jobs)
                session.merge = real_merge

                # The merge before the failure applied: answered normally.
                report = jobs[0].future.result()
                assert report.rounds_merged == 1 and report.answers_merged == 1
                # The failing job gets the failure; its charge stands.
                with pytest.raises(ServiceError, match="merge failed"):
                    jobs[1].future.result()
                # The job behind it never merged: failed retry-safe, refunded.
                with pytest.raises(ServiceError, match="refunded"):
                    jobs[2].future.result()
                assert record.spent == 2
                assert session.rounds_merged == 1
                # The session keeps serving after the partial failure.
                reply = await service.select_next(created.session_id, batch=1)
                assert reply.task_ids

        run(scenario())

    def test_runtime_options_the_service_cannot_honour_are_rejected(self):
        with pytest.raises(ValidationFailedError, match="recalibrate"):
            RefinementService(RuntimeOptions(recalibrate=True))
        if fork_available():
            with pytest.raises(ValidationFailedError, match="parallel_entities"):
                RefinementService(RuntimeOptions(parallel_entities=2))


class TestBackpressure:
    def test_full_queue_fails_fast_with_429(self):
        async def scenario():
            service = RefinementService(max_pending=1, executor_workers=1)
            async with service:
                created = await service.create_session(
                    make_prior(), CrowdModel(0.8), budget=50
                )
                fact = make_prior().fact_ids[0]
                # Pin the sole executor thread so the drainer stalls
                # mid-merge with its queue still bounded at one slot.
                loop = asyncio.get_running_loop()
                gate_entered = loop.create_future()
                release = threading.Event()

                def gate():
                    loop.call_soon_threadsafe(gate_entered.set_result, None)
                    release.wait(timeout=10)

                blocker = loop.run_in_executor(service._executor, gate)
                await gate_entered

                first = asyncio.ensure_future(
                    service.post_answers(created.session_id, {fact: True})
                )
                await asyncio.sleep(0.05)  # drainer dequeues it, stalls on executor
                second = asyncio.ensure_future(
                    service.post_answers(created.session_id, {fact: False})
                )
                await asyncio.sleep(0.05)  # fills the single queue slot
                with pytest.raises(SessionOverloadedError) as excinfo:
                    await service.post_answers(created.session_id, {fact: True})
                assert excinfo.value.status == 429

                release.set()
                await blocker
                reports = await asyncio.gather(first, second)
                assert [r.rounds_merged for r in reports] == [1, 2]
                assert service.metrics()["rejected_overload"] == 1

        run(scenario())


class TestSerialEquivalence:
    """Satellite: interleaved async tenants == serial replay, per session."""

    ROUNDS = 3
    BATCH = 2

    def _tenant_setup(self, tenant):
        prior = dense_distribution(5, 24, seed=20 + tenant)
        channel = (
            CrowdModel(0.8)
            if tenant % 2 == 0
            else PerFactChannelModel(
                0.8, {f: 0.65 + 0.02 * i for i, f in enumerate(prior.fact_ids)}
            )
        )
        return prior, channel

    async def _drive_tenant(self, service, session_id, tenant):
        trajectory = []
        for round_index in range(self.ROUNDS):
            reply = await service.select_next(session_id, batch=self.BATCH)
            answers = scripted_answers(reply.task_ids, round_index + tenant)
            await service.post_answers(session_id, answers)
            trajectory.append((reply.task_ids, reply.objective))
            await asyncio.sleep(0)  # force interleaving points between tenants
        view = await service.get_posterior(session_id)
        return trajectory, view.marginals

    def _replay_serially(self, tenant):
        prior, channel = self._tenant_setup(tenant)
        session = RefinementSession(prior, channel)
        selector = get_selector("greedy_prune_pre")
        trajectory = []
        for round_index in range(self.ROUNDS):
            result = session.select(selector, self.BATCH)
            session.merge(scripted_answers(result.task_ids, round_index + tenant))
            trajectory.append((tuple(result.task_ids), result.objective))
        return trajectory, session.marginals()

    def test_three_interleaved_tenants_match_serial_replay(self):
        tenants = range(3)

        async def scenario():
            async with RefinementService() as service:
                sessions = []
                for tenant in tenants:
                    prior, channel = self._tenant_setup(tenant)
                    created = await service.create_session(
                        prior, channel, budget=self.ROUNDS * self.BATCH
                    )
                    sessions.append(created.session_id)
                return await asyncio.gather(
                    *(
                        self._drive_tenant(service, session_id, tenant)
                        for tenant, session_id in zip(tenants, sessions)
                    )
                )

        service_runs = run(scenario())
        for tenant, (trajectory, marginals) in zip(tenants, service_runs):
            serial_trajectory, serial_marginals = self._replay_serially(tenant)
            assert [ids for ids, _ in trajectory] == [
                ids for ids, _ in serial_trajectory
            ]
            for (_, objective), (_, serial_objective) in zip(
                trajectory, serial_trajectory
            ):
                assert abs(objective - serial_objective) < 1e-9
            for fact_id, marginal in serial_marginals.items():
                assert abs(marginals[fact_id] - marginal) < 1e-12
