"""Query-based task selection (Section IV of the paper).

When the user only cares about a subset ``I ⊆ F`` of facts (the *facts of
interest*, FOI), the utility becomes ``Q(I) = −H(I)`` and the value of asking
a task set ``T`` is ``Q(I | T) = H(T) − H(I, T)``.  That objective is still
monotone and submodular in ``T`` (Equation 7), so the same greedy framework
applies with the per-candidate gain

``ρ_j(T) = Q(I | T ∪ {f_j}) − Q(I | T)``.

Facts outside ``I`` remain perfectly valid tasks: asking a correlated
non-interest fact can reduce the entropy of the interest set, which is the
whole point of the extension.

The scan runs on the shared vectorized engine with the support additionally
partitioned into facts-of-interest cells, so each candidate costs one grouped
sum and one channel pass per cell — both ``H(T ∪ {f})`` and ``H(I, T ∪ {f})``
fall out of the same cached table.  The channels may be heterogeneous (the
conditional-utility objective already absorbs per-task noise, so no ranking
adjustment is needed), and a :class:`~repro.core.selection.session.RefinementSession`
built with the same facts of interest lends its warm engine across rounds.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.query import Query
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.engine import EntropyEngine
from repro.core.selection.greedy import GAIN_TOLERANCE
from repro.exceptions import QueryError


class QueryGreedySelector(TaskSelector):
    """Greedy ``(1 − 1/e)``-approximate selector for query-based CrowdFusion."""

    name = "query_greedy"

    def __init__(self, query: Query):
        self._query = query

    @property
    def query(self) -> Query:
        """The facts-of-interest query driving this selector."""
        return self._query

    def _query_utility(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        task_ids: Sequence[str],
    ) -> float:
        """Compute ``Q(I | T) = H(T) − H(I, T)`` (``−H(I)`` when ``T`` is empty)."""
        interest = self._query.fact_ids
        if not task_ids:
            return -distribution.marginalize(interest).entropy()
        task_entropy = crowd.task_entropy(distribution, task_ids)
        joint_entropy = crowd.joint_fact_answer_entropy(distribution, interest, task_ids)
        return task_entropy - joint_entropy

    def _check_query_facts(self, fact_ids: Sequence[str]) -> None:
        missing = [
            fact_id for fact_id in self._query.fact_ids if fact_id not in fact_ids
        ]
        if missing:
            raise QueryError(f"query references unknown facts: {missing}")

    def _run_on_engine(
        self, engine: EntropyEngine, k: int, candidates: Sequence[str]
    ) -> SelectionResult:
        stats = SelectionStats(kernel=engine.kernel_tier)
        state = engine.initial_state()
        remaining = list(candidates)
        current_utility = state.entropy - state.joint_entropy

        for _iteration in range(k):
            stats.iterations += 1
            best_id = None
            best_utility = float("-inf")
            for fact_id in remaining:
                stats.candidate_evaluations += 1
                if state.width:
                    stats.cache_hits += 1
                task_entropy, joint_entropy = engine.extension_entropies(state, fact_id)
                utility = task_entropy - joint_entropy
                if utility > best_utility + TIE_TOLERANCE:
                    best_utility = utility
                    best_id = fact_id
            if best_id is None:
                break
            gain = best_utility - current_utility
            if gain <= GAIN_TOLERANCE:
                break
            state = engine.extend(state, best_id)
            remaining.remove(best_id)
            current_utility = state.entropy - state.joint_entropy
            if not remaining:
                break

        return SelectionResult(
            task_ids=state.task_ids, objective=current_utility, stats=stats
        )

    def _select(
        self,
        distribution: JointDistribution,
        crowd: ChannelModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        self._check_query_facts(distribution.fact_ids)
        engine = EntropyEngine(distribution, crowd, interest_ids=self._query.fact_ids)
        return self._run_on_engine(engine, k, candidates)

    def _select_with_session(self, session, k, candidates) -> SelectionResult:
        self._check_query_facts(session.fact_ids)
        # A session built for this exact interest set lends its engine
        # directly; any other query runs on an interest *view* — same support
        # arrays, same shared bit-column cache, its own interest cells — so
        # batches of queries against one entity never rebuild per-fact state.
        return self._run_on_engine(
            session.engine_for_interest(self._query.fact_ids), k, candidates
        )
