"""Greedy selection accelerated by preprocessing and partition refinement.

Section III-F of the paper speeds up Algorithm 1 in two ways:

1. **Preprocessing** — materialise, once per round, the data needed to score
   any candidate task set without rescanning the raw output table per
   candidate.  The paper materialises the full answer joint distribution
   (Table IV); that table has ``2^n`` rows, which the authors processed on a
   ten-node cluster.  We materialise the mathematically equivalent compact
   form instead: per-fact truth bit-vectors over the output *support* plus a
   probability vector, from which any task set's answer distribution follows
   by a grouped sum and a noise convolution.  The result of every entropy
   evaluation is identical; only the memory footprint differs (``O(n·|O|)``
   instead of ``O(2^n)``), which is what makes the reproduction laptop-scale.

2. **Partition refinement (Algorithm 2)** — across greedy iterations, keep
   the projection of every output onto the already-selected task set and only
   split those groups by the one candidate fact under evaluation, instead of
   recomputing the projection from scratch.  This is the paper's "store the
   separation result of the last iteration" optimisation that brings one
   iteration down to a linear scan per candidate.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.selection.base import (
    TIE_TOLERANCE,
    SelectionResult,
    SelectionStats,
    TaskSelector,
)
from repro.core.selection.greedy import GAIN_TOLERANCE
from repro.core.utility import crowd_entropy


def _noise_kernel(num_tasks: int, accuracy: float) -> np.ndarray:
    """Binary-symmetric-channel kernel ``M[a, s] = Pc^#Same · (1−Pc)^#Diff``.

    ``a`` ranges over answer vectors and ``s`` over output projections, both
    encoded as ``num_tasks``-bit masks.
    """
    size = 1 << num_tasks
    indices = np.arange(size, dtype=np.uint32)
    xor = indices[:, None] ^ indices[None, :]
    # popcount of the XOR gives #Diff for every (answer, projection) pair.
    diff = np.zeros_like(xor, dtype=np.int64)
    value = xor.copy()
    while value.any():
        diff += value & 1
        value >>= 1
    error = 1.0 - accuracy
    with np.errstate(divide="ignore"):
        kernel = (accuracy ** (num_tasks - diff)) * (error ** diff)
    return kernel


def _entropy_bits(probabilities: np.ndarray) -> float:
    """Shannon entropy (base 2) of a probability vector, ignoring zeros."""
    positive = probabilities[probabilities > 0.0]
    if positive.size == 0:
        return 0.0
    return float(-(positive * np.log2(positive)).sum())


class _AcceleratedGreedy(TaskSelector):
    """Shared implementation of the preprocessed greedy, with optional pruning."""

    use_pruning: bool = False

    def _select(
        self,
        distribution: JointDistribution,
        crowd: CrowdModel,
        k: int,
        candidates: Sequence[str],
    ) -> SelectionResult:
        stats = SelectionStats()

        # ---- preprocessing: vectorise the output support once per round ----
        masks = np.fromiter(
            (mask for mask, _ in distribution.items()), dtype=np.int64,
            count=distribution.support_size,
        )
        probabilities = np.fromiter(
            (p for _, p in distribution.items()), dtype=np.float64,
            count=distribution.support_size,
        )
        fact_bits = {
            fact_id: ((masks >> distribution.position(fact_id)) & 1).astype(np.int64)
            for fact_id in candidates
        }

        selected: List[str] = []
        remaining = list(candidates)
        pruned: Set[str] = set()
        current_entropy = 0.0
        noise_entropy = crowd_entropy(crowd.accuracy)
        # Projection of every output onto the selected task set (Algorithm 2's
        # partition, refined incrementally as tasks are added).
        selected_projection = np.zeros(masks.shape[0], dtype=np.int64)

        for _iteration in range(k):
            stats.iterations += 1
            width = len(selected) + 1
            kernel = _noise_kernel(width, crowd.accuracy)
            slack_bits = float(k - len(selected) - 1)

            best_id = None
            best_entropy = float("-inf")
            best_projection = None
            newly_pruned: Set[str] = set()

            for fact_id in remaining:
                if self.use_pruning and fact_id in pruned:
                    stats.pruned_candidates += 1
                    continue
                stats.candidate_evaluations += 1
                candidate_projection = (selected_projection << 1) | fact_bits[fact_id]
                grouped = np.bincount(
                    candidate_projection, weights=probabilities, minlength=1 << width
                )
                answer_probs = kernel @ grouped
                entropy = _entropy_bits(answer_probs)
                if entropy > best_entropy + TIE_TOLERANCE:
                    best_entropy = entropy
                    best_id = fact_id
                    best_projection = candidate_projection
                if self.use_pruning and entropy + slack_bits < best_entropy:
                    newly_pruned.add(fact_id)

            pruned.update(newly_pruned)
            stats.pruned_facts = len(pruned)
            if best_id is None:
                break
            gain = best_entropy - current_entropy - noise_entropy
            if gain <= GAIN_TOLERANCE:
                break
            selected.append(best_id)
            remaining.remove(best_id)
            current_entropy = best_entropy
            selected_projection = best_projection
            if not remaining:
                break

        return SelectionResult(
            task_ids=tuple(selected), objective=current_entropy, stats=stats
        )


class PreprocessingGreedySelector(_AcceleratedGreedy):
    """Algorithm 1 with preprocessing and incremental partition refinement."""

    name = "greedy_pre"
    use_pruning = False


class PrunedPreprocessingGreedySelector(_AcceleratedGreedy):
    """Algorithm 1 with both the pruning rule and the preprocessing strategy."""

    name = "greedy_prune_pre"
    use_pruning = True
