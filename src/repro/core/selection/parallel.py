"""Parallel shared-memory candidate evaluation for greedy selection.

One greedy iteration of Algorithm 1 scores every remaining candidate against
the same :class:`~repro.core.selection.engine.EntropyEngine` state — a pure
read-only array pass per candidate (one grouped ``np.bincount`` plus one
channel transform), with no shared mutable state.  That makes the candidate
scan embarrassingly parallel, and on scale corpora (supports past ``2^20``,
hundreds of candidate facts) the scan is the system bottleneck the paper's
Table V measures.

This module shards the scan across a ``multiprocessing`` pool:

* **Fork-inherited shared memory** — the pool is created with the ``fork``
  start method *after* the live engine has been published to a module global,
  so every worker inherits the engine's read-only state (support masks,
  probability vector, cached per-fact bit columns, interest cells) via
  copy-on-write pages.  Nothing about the support is ever pickled; the only
  data crossing process boundaries are fact-id chunks going out and float
  entropies coming back.
* **State replay instead of state shipping** — the incremental
  :class:`~repro.core.selection.engine.SelectionState` grows by one task per
  iteration, and shipping its arrays (``O(|O|)`` per iteration) would undo
  the sharing.  Workers instead keep their own state and replay the parent's
  ``extend`` calls from the selected-task prefix — one extension per
  iteration, the cost of a single candidate evaluation.  Because ``extend``
  is deterministic over the shared arrays, the replayed state is bit-for-bit
  the parent's state, so every worker-computed entropy is exactly the float
  the serial scan would have produced.
* **Chunked dispatch with an auto-serial policy** — candidates are dispatched
  in order-preserving chunks (several per worker, for load balance), and a
  :class:`ParallelPolicy` decides per iteration whether parallelism pays at
  all: below a work threshold (candidates × support rows) the evaluator
  reports "serial" and the caller runs the ordinary in-process scan, so
  small Table-V-sized rounds never pay the fork or IPC overhead.

Selection results are **bit-for-bit identical** to the serial path by
construction: the parallel evaluator returns one entropy per candidate in
candidate order, and the caller replays the exact serial ranking loop
(same ``TIE_TOLERANCE`` first-index-wins comparison, same pruning bound)
over those values.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import warnings
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from repro.core.selection.engine import EntropyEngine, SelectionState
from repro.exceptions import SelectionError

#: Default auto-serial threshold, in work units of candidates × support rows.
#: One unit is roughly one support-row visit; forking a pool costs on the
#: order of millions of row visits, so below ~2^22 units the serial scan wins
#: (the Table-V hot path — tens of candidates over a few-thousand-row support
#: — sits orders of magnitude under it and never leaves the serial path).
DEFAULT_PARALLEL_THRESHOLD = 1 << 22

#: Chunks dispatched per worker per iteration when no explicit chunk size is
#: configured: more than one for load balance (candidate costs vary with the
#: cached-partition width), few enough that IPC stays negligible.
_CHUNKS_PER_WORKER = 4

#: Published engine the pool workers inherit at fork time.  Set by
#: :meth:`ParallelEvaluator._ensure_pool` immediately before the fork and
#: cleared right after: the parent never keeps a module-level reference, the
#: children each keep their inherited copy.
_FORK_ENGINE: Optional[EntropyEngine] = None

#: Per-worker replayed selection state (lives only in pool worker processes).
_WORKER_STATE: Optional[SelectionState] = None


def fork_available() -> bool:
    """Whether this platform can share engine state via the ``fork`` method."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass(frozen=True)
class ParallelPolicy:
    """When and how to shard candidate evaluations across processes.

    Attributes
    ----------
    workers:
        Worker processes to use; ``None`` means one per available CPU.
        A resolved count below two always selects the serial path.
    parallel_threshold:
        Minimum work size (candidates × support rows) of one iteration's scan
        before the pool is used; smaller scans run serially so that small
        rounds never regress.  Zero forces parallelism whenever possible.
    chunk_size:
        Candidates per dispatched chunk; ``None`` derives a size giving each
        worker several chunks for load balance.
    """

    workers: Optional[int] = None
    parallel_threshold: int = DEFAULT_PARALLEL_THRESHOLD
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 1:
            raise SelectionError(f"workers must be positive, got {self.workers}")
        if self.parallel_threshold < 0:
            raise SelectionError(
                f"parallel_threshold must be non-negative, got {self.parallel_threshold}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise SelectionError(f"chunk_size must be positive, got {self.chunk_size}")

    def resolved_workers(self) -> int:
        """The worker count this policy resolves to on this machine."""
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    def should_parallelise(self, num_candidates: int, support_size: int) -> bool:
        """Decide serial vs. parallel for one iteration's candidate scan."""
        if self.resolved_workers() < 2 or not fork_available():
            return False
        if num_candidates < 2:
            return False
        return num_candidates * support_size >= self.parallel_threshold

    def resolved_chunk_size(self, num_candidates: int) -> int:
        """Candidates per chunk for a scan of ``num_candidates``."""
        if self.chunk_size is not None:
            return self.chunk_size
        per_worker = self.resolved_workers() * _CHUNKS_PER_WORKER
        return max(1, math.ceil(num_candidates / per_worker))


def _replay_state(engine: EntropyEngine, task_ids: Tuple[str, ...]) -> SelectionState:
    """Rebuild the parent's selection state inside a pool worker.

    The worker keeps the state of the previous iteration; committing the
    parent's newly selected task is one ``extend`` call.  A non-prefix state
    (first call, or a fresh selection on a reused pool) restarts from the
    empty state.
    """
    global _WORKER_STATE
    state = _WORKER_STATE
    if state is None or state.task_ids != task_ids[: state.width]:
        state = engine.initial_state()
    for fact_id in task_ids[state.width:]:
        state = engine.extend(state, fact_id)
    _WORKER_STATE = state
    return state


def _evaluate_chunk(task_ids: Tuple[str, ...], chunk: Sequence[str]) -> List[float]:
    """Worker entry point: ``H(T ∪ {f})`` for every candidate in ``chunk``."""
    engine = _FORK_ENGINE
    if engine is None:  # pragma: no cover - defensive: fork contract broken
        raise SelectionError("parallel worker started without a fork-shared engine")
    state = _replay_state(engine, task_ids)
    return [engine.extension_entropy(state, fact_id) for fact_id in chunk]


class ParallelEvaluator:
    """Shards one engine's candidate evaluations across a fork pool.

    The evaluator is scoped to one selection call: the pool is forked lazily
    on the first iteration whose scan clears the policy threshold (so the
    engine's probability vector is current at fork time) and reused for the
    remaining iterations of that call.  Use as a context manager so the pool
    is always reclaimed.

    Attributes
    ----------
    workers:
        Worker processes actually forked (0 while every scan stayed serial).
    chunk_size:
        Chunk size of the most recent parallel dispatch (0 if none).
    parallel_evaluations:
        Total candidate evaluations served by the pool.
    """

    def __init__(self, engine: EntropyEngine, policy: ParallelPolicy):
        if policy.resolved_workers() >= 2 and not fork_available():
            warnings.warn(
                "this platform has no fork start method, so the configured "
                "parallel policy cannot engage; all candidate scans will run "
                "serially",
                RuntimeWarning,
                stacklevel=2,
            )
        self._engine = engine
        self._policy = policy
        self._pool = None
        self.workers = 0
        self.chunk_size = 0
        self.parallel_evaluations = 0

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Terminate the worker pool (no-op if it was never forked)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            global _FORK_ENGINE
            context = multiprocessing.get_context("fork")
            self.workers = self._policy.resolved_workers()
            # Publish the engine for the duration of the fork only: workers
            # inherit it through copy-on-write memory, the parent keeps no
            # module-level reference.
            _FORK_ENGINE = self._engine
            try:
                self._pool = context.Pool(processes=self.workers)
            finally:
                _FORK_ENGINE = None
        return self._pool

    def evaluate(
        self, state: SelectionState, candidates: Sequence[str]
    ) -> Optional[List[float]]:
        """Score all ``candidates`` against ``state``, in candidate order.

        Returns ``None`` when the policy elects the serial path for this scan
        (too little work, too few workers, or no ``fork`` support); the caller
        then runs its ordinary in-process loop.
        """
        support_size = self._engine.support_masks.shape[0]
        if not self._policy.should_parallelise(len(candidates), support_size):
            return None
        pool = self._ensure_pool()
        chunk_size = self._policy.resolved_chunk_size(len(candidates))
        self.chunk_size = chunk_size
        chunks = [
            list(candidates[start:start + chunk_size])
            for start in range(0, len(candidates), chunk_size)
        ]
        scored = pool.map(partial(_evaluate_chunk, state.task_ids), chunks)
        self.parallel_evaluations += len(candidates)
        return [entropy for part in scored for entropy in part]
