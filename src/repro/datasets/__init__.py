"""Datasets: the paper's running example plus synthetic fusion corpora.

The paper evaluates on the Book dataset (author-list claims collected from
online bookstores) with manually labelled gold truth.  That corpus is not
redistributable, so :mod:`repro.datasets.book` generates a synthetic corpus
with the same schema, the same raw-correctness level (~50 %) and the same
error taxonomy (wrong order, additional information, misspelling);
:mod:`repro.datasets.flights` provides a second, single-truth domain.
:mod:`repro.datasets.running_example` reproduces Tables I–IV exactly.
"""

from repro.datasets.book import Book, BookCorpus, BookCorpusConfig, generate_book_corpus
from repro.datasets.corruption import (
    add_organization,
    misspell_name,
    reorder_authors,
    swap_author,
)
from repro.datasets.flights import FlightCorpus, FlightCorpusConfig, generate_flight_corpus
from repro.datasets.running_example import (
    running_example_answer_table,
    running_example_distribution,
    running_example_facts,
)
from repro.datasets.scale import ScaleCorpusConfig, generate_scale_distribution

__all__ = [
    "Book",
    "BookCorpus",
    "BookCorpusConfig",
    "FlightCorpus",
    "FlightCorpusConfig",
    "ScaleCorpusConfig",
    "add_organization",
    "generate_book_corpus",
    "generate_flight_corpus",
    "generate_scale_distribution",
    "misspell_name",
    "reorder_authors",
    "running_example_answer_table",
    "running_example_distribution",
    "running_example_facts",
    "swap_author",
]
