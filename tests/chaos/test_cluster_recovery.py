"""Chaos suite: the lease-fenced cluster under kills, zombies and resumes.

The acceptance triangle of the multi-host orchestrator, asserted from the
outside:

(a) a shard worker SIGKILLed mid-lease is detected (EOF beats the heartbeat
    timeout), its lease is fenced and the range reassigned, and the final
    curve is bit-identical to an undisturbed single-host run;
(b) a zombie worker — alive and computing but silent past lease expiry —
    submits results that are rejected by the fencing epoch and never reach
    a worker journal, with no duplicated ``entity_done`` anywhere;
(c) a coordinator SIGKILLed mid-sweep resumes via ``--resume`` at a higher
    fencing epoch and completes bit-identically to a single-host CLI run —

all with no leaked worker processes or shared memory.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import build_problems, run_quality_experiment
from repro.evaluation.experiment import ExperimentConfig
from repro.fusion import ModifiedCRH
from repro.orchestration import ClusterConfig, run_cluster_experiment
from repro.orchestration.cluster import LEASES_NAME, worker_journal_paths
from repro.orchestration.journal import read_json, read_records
from repro.orchestration.orchestrator import JOURNAL_NAME
from repro.testing import faults
from repro.testing.faults import FaultPlan

pytestmark = [pytest.mark.chaos, pytest.mark.parallel]

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: CLI flags describing one deterministic sweep (8 books, 3 rounds each) —
#: identical between the single-host baseline and the cluster runs.
SWEEP_FLAGS = [
    "--books", "8", "--sources", "10", "--seed", "3",
    "--budget", "9", "--k", "3", "--max-facts", "8",
]


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=6, num_sources=10, max_sources_per_book=8, seed=3)
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


CONFIG = ExperimentConfig(selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=11)


def assert_identical_curves(expected, actual):
    assert len(expected.points) == len(actual.points)
    for theirs, ours in zip(expected.points, actual.points):
        assert theirs == ours  # exact float equality, field by field


def _journal_types(run_dir):
    return [
        record["type"]
        for record in read_records(str(Path(run_dir) / JOURNAL_NAME))
    ]


def _done_indices(run_dir):
    return sorted(
        record["index"]
        for path in worker_journal_paths(str(run_dir))
        for record in read_records(path)
        if record["type"] == "entity_done"
    )


def _assert_no_active_children(timeout=10.0):
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


class TestWorkerKill:
    def test_sigkill_mid_lease_reassigns_bit_identical(self, problems, tmp_path):
        serial = run_quality_experiment(problems, CONFIG)
        cluster = ClusterConfig(
            run_dir=str(tmp_path / "run"),
            lease_ttl_s=6.0,
            heartbeat_s=0.3,
            lease_entities=3,
            max_attempts=5,
            local_workers=2,
        )
        # Stretch each entity so the kill reliably lands mid-lease.
        faults.install(FaultPlan(delay_entity_seconds=0.3))
        journal_path = Path(cluster.run_dir) / JOURNAL_NAME
        killed = {}

        def assassin():
            # Wait until both workers hold a lease, then SIGKILL either one:
            # whichever dies is mid-lease by construction.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                grants = set()
                if journal_path.exists():
                    grants = {
                        record["worker"]
                        for record in read_records(str(journal_path))
                        if record["type"] == "lease_granted"
                    }
                children = multiprocessing.active_children()
                if len(grants) >= 2 and children:
                    victim = children[0]
                    killed["pid"] = victim.pid
                    killed["at"] = time.time()
                    os.kill(victim.pid, signal.SIGKILL)
                    return
                time.sleep(0.02)

        thread = threading.Thread(target=assassin, daemon=True)
        thread.start()
        report = run_cluster_experiment(problems, CONFIG, cluster)
        thread.join(timeout=5.0)

        assert killed, "the assassin never found a leased worker to kill"
        # The kernel closed the victim's socket: EOF fenced the lease well
        # before the heartbeat timeout would have.
        assert report.stats.leases_expired >= 1
        assert report.stats.disconnects >= 1
        assert report.quarantined == ()
        assert report.completed == len(problems)
        types = _journal_types(cluster.run_dir)
        assert "lease_expired" in types
        assert "entity_failed" in types  # the fenced range charged attempts
        assert _done_indices(cluster.run_dir) == list(range(len(problems)))
        assert_identical_curves(serial, report.result)
        _assert_no_active_children()


class TestZombieFencing:
    def test_expired_lease_results_are_rejected_by_epoch(self, problems, tmp_path):
        serial = run_quality_experiment(problems, CONFIG)
        cluster = ClusterConfig(
            run_dir=str(tmp_path / "run"),
            lease_ttl_s=1.0,
            heartbeat_s=0.25,
            lease_entities=2,
            max_attempts=10,
            local_workers=2,
        )
        # One worker goes zombie: alive and computing, but its heartbeats
        # are suppressed for 3s — longer than the lease TTL — while each
        # entity takes 1.5s, so its lease expires mid-range and every result
        # it then submits quotes a fenced (lease, epoch) pair.  The healthy
        # worker keeps beating through its own slow entities and is never
        # fenced.
        faults.install(
            FaultPlan(
                zombie_hold_lease_s=3.0,
                zombie_limit=1,
                delay_entity_seconds=1.5,
            )
        )
        report = run_cluster_experiment(problems, CONFIG, cluster)

        assert report.stats.leases_expired >= 1
        assert report.stats.results_rejected >= 1
        assert report.stats.epoch > 1
        assert report.quarantined == ()
        assert report.completed == len(problems)
        records = read_records(str(Path(cluster.run_dir) / JOURNAL_NAME))
        rejected = [r for r in records if r["type"] == "result_rejected"]
        assert rejected, "no fenced result was journalled"
        for record in rejected:
            assert record["epoch"] < record["current_epoch"]
        # The fenced results never reached a worker journal: every entity
        # appears exactly once across the merged set.
        assert _done_indices(cluster.run_dir) == list(range(len(problems)))
        assert_identical_curves(serial, report.result)
        _assert_no_active_children()


class TestCoordinatorKill:
    @staticmethod
    def _run_cli(run_dir, *extra, env_extra=None, wait=True):
        env = dict(os.environ, PYTHONPATH=SRC_DIR, **(env_extra or {}))
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "experiment", *SWEEP_FLAGS,
             "--run-dir", str(run_dir), *extra],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        if wait:
            stdout, stderr = process.communicate(timeout=300)
            return process.returncode, stdout, stderr
        return process

    @staticmethod
    def _wait_for_entity_done(run_dir, minimum=1, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            count = len(_done_indices(run_dir)) if Path(run_dir).exists() else 0
            if count >= minimum:
                return count
            time.sleep(0.05)
        raise AssertionError(
            f"worker journals never reached {minimum} entity_done records"
        )

    @staticmethod
    def _processes_mentioning(token):
        pids = []
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/cmdline", "rb") as handle:
                    cmdline = handle.read()
            except OSError:
                continue
            if token.encode() in cmdline:
                pids.append(int(entry))
        return pids

    CLUSTER_FLAGS = [
        "--coordinator", "127.0.0.1:0", "--local-workers", "2",
        "--lease-ttl-s", "5", "--heartbeat-s", "0.5",
    ]

    def test_sigkill_plus_resume_is_bit_identical_to_single_host(self, tmp_path):
        single = tmp_path / "single"
        code, _out, err = self._run_cli(single)
        assert code == 0, err

        clustered = tmp_path / "clustered"
        victim = self._run_cli(
            clustered, *self.CLUSTER_FLAGS, wait=False,
            env_extra={"REPRO_FAULTS": "delay_entity_seconds=0.4"},
        )
        try:
            self._wait_for_entity_done(clustered, minimum=1)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()
        assert victim.returncode == -signal.SIGKILL
        done_before = len(_done_indices(clustered))
        assert done_before < 8, "the kill landed after the sweep finished"
        assert not (clustered / "curve.jsonl").exists()
        epoch_before = read_json(str(clustered / LEASES_NAME))["epoch"]

        # Resume: the dead coordinator's stale lock is taken over, the
        # coordinator re-fences at a strictly higher epoch, the merged
        # journals replay the accepted entities verbatim and fresh local
        # workers recompute only the rest.  The killed run's orphaned
        # workers keep dialling the old port and exit on their own once
        # their reconnect window closes — they never join the new sweep.
        time.sleep(1.0)
        code, _out, err = self._run_cli(clustered, *self.CLUSTER_FLAGS, "--resume")
        assert code == 0, err

        single_curve = (single / "curve.jsonl").read_bytes()
        cluster_curve = (clustered / "curve.jsonl").read_bytes()
        assert cluster_curve == single_curve  # byte-identical, not just close
        assert len(_done_indices(clustered)) == 8
        leases = read_json(str(clustered / LEASES_NAME))
        assert leases["epoch"] > epoch_before  # the resume re-fenced

        # No process — resumed workers or orphans of the killed coordinator
        # — survives past the resume (the orphan reconnect window is 15s).
        token = str(clustered)
        deadline = time.monotonic() + 30.0
        while self._processes_mentioning(token) and time.monotonic() < deadline:
            time.sleep(0.25)
        leaked = self._processes_mentioning(token)
        assert not leaked, f"leaked cluster processes: {leaked}"
        _assert_no_active_children()
