"""Greedy selection accelerated by preprocessing and partition refinement.

Section III-F of the paper speeds up Algorithm 1 in two ways:

1. **Preprocessing** — materialise, once per round, the data needed to score
   any candidate task set without rescanning the raw output table per
   candidate.  The paper materialises the full answer joint distribution
   (Table IV); that table has ``2^n`` rows, which the authors processed on a
   ten-node cluster.  We materialise the mathematically equivalent compact
   form instead: per-fact truth bit-vectors over the output *support* plus a
   probability vector, from which any task set's answer distribution follows
   by a grouped sum and a noise convolution — ``O(n·|O|)`` memory instead of
   ``O(2^n)``, which is what makes the reproduction laptop-scale.

2. **Partition refinement (Algorithm 2)** — across greedy iterations, keep
   the projection of every output onto the already-selected task set and only
   split those groups by the one candidate fact under evaluation, instead of
   recomputing the projection from scratch.

Both accelerations now live in the shared
:class:`~repro.core.selection.engine.EntropyEngine`, which additionally
replaces the ``O(4^k)`` dense noise kernel of the original implementation
with per-bit binary-symmetric-channel convolutions (``O(k·2^k)``) and caches
the selected set's convolved answer distribution between iterations.  Every
greedy variant therefore runs at "preprocessed" speed; these selector classes
are kept as named registry entries so the paper's Table V labels
(``Approx.&Pre.``, ``Approx.&Prune&Pre.``) still resolve, and so older
configurations keep working.

:func:`_noise_kernel` below is the original dense ``2^k × 2^k`` channel
matrix.  It is retained (and unit-tested) as the executable specification the
factorised transform must match.
"""

from __future__ import annotations

import numpy as np

from repro.core.entropy import entropy_bits, popcount_array
from repro.core.selection.greedy import GreedySelector
from repro.core.selection.pruning import PruningGreedySelector


def _noise_kernel(num_tasks: int, accuracy: float) -> np.ndarray:
    """Binary-symmetric-channel kernel ``M[a, s] = Pc^#Same · (1−Pc)^#Diff``.

    ``a`` ranges over answer vectors and ``s`` over output projections, both
    encoded as ``num_tasks``-bit masks.  The selection hot path no longer
    materialises this ``O(4^k)`` matrix — :func:`repro.core.entropy.bsc_transform`
    applies the same channel one bit at a time — but the dense form remains
    the clearest statement of Equation 2 and anchors the equivalence tests.
    """
    size = 1 << num_tasks
    indices = np.arange(size, dtype=np.int64)
    diff = popcount_array(indices[:, None] ^ indices[None, :])
    error = 1.0 - accuracy
    with np.errstate(divide="ignore"):
        kernel = (accuracy ** (num_tasks - diff)) * (error ** diff)
    return kernel


def _entropy_bits(probabilities: np.ndarray) -> float:
    """Shannon entropy (base 2) of a probability vector, ignoring zeros."""
    return entropy_bits(np.asarray(probabilities, dtype=np.float64))


class PreprocessingGreedySelector(GreedySelector):
    """Algorithm 1 with preprocessing and incremental partition refinement."""

    name = "greedy_pre"


class PrunedPreprocessingGreedySelector(PruningGreedySelector):
    """Algorithm 1 with both the pruning rule and the preprocessing strategy."""

    name = "greedy_prune_pre"
