"""Helpers shared by the benchmark modules."""

import sys
from pathlib import Path

#: Make the library importable even when it has not been pip-installed.
_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

#: Where every benchmark writes its human-readable rows/series.
RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist one benchmark's output (a table or series) under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path
