"""CrowdFusion reproduction: crowdsourced refinement of data-fusion results.

This package reproduces "CrowdFusion: A Crowdsourced Approach on Data Fusion
Refinement" (Chen, Chen & Zhang, ICDE 2017).

Everything listed in ``__all__`` is the stable public surface — import it
from ``repro`` directly instead of reaching into ``repro.core.selection.*``
and friends (deep paths may move between releases; these names will not).
The surface covers the full workflow: value types (facts, distributions,
answers), channel models, the multi-round engine, persistent refinement
sessions, the typed :class:`RuntimeOptions` execution configuration, and the
multi-tenant refinement service with its client, and the durable
checkpointed experiment orchestrator.  ``docs/API.md`` documents every
group.
"""

from repro.core import (
    Answer,
    AnswerSet,
    Assignment,
    CalibratedCrowdModel,
    ChannelModel,
    CrowdFusionEngine,
    CrowdModel,
    DifficultyAdjustedCrowdModel,
    PerFactChannelModel,
    EngineResult,
    Fact,
    FactSet,
    JointDistribution,
    Query,
    RoundRecord,
    crowd_entropy,
    merge_answers,
    pws_quality,
    utility_gain,
)
from repro.core.crowd import RecalibratedChannelModel
from repro.core.runtime import RuntimeOptions
from repro.core.selection import (
    RefinementSession,
    SessionPool,
    available_selectors,
    get_selector,
)
from repro.core.selection.parallel import ParallelPolicy
from repro.exceptions import OrchestrationError
from repro.orchestration import (
    ClusterConfig,
    ClusterReport,
    OrchestratorConfig,
    OrchestratorReport,
    run_checkpointed_experiment,
    run_cluster_experiment,
)
from repro.service import (
    NO_RETRY,
    DeadlineExceededError,
    MergeAbortedError,
    RefinementService,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    TransportError,
    serve,
)

__version__ = "1.3.0"

__all__ = [
    # value types
    "Answer",
    "AnswerSet",
    "Assignment",
    "Fact",
    "FactSet",
    "JointDistribution",
    "Query",
    # channel models
    "CalibratedCrowdModel",
    "ChannelModel",
    "CrowdModel",
    "DifficultyAdjustedCrowdModel",
    "PerFactChannelModel",
    "RecalibratedChannelModel",
    # engine and sessions
    "CrowdFusionEngine",
    "EngineResult",
    "RefinementSession",
    "RoundRecord",
    "SessionPool",
    # runtime configuration
    "ParallelPolicy",
    "RuntimeOptions",
    # the refinement service
    "DeadlineExceededError",
    "MergeAbortedError",
    "NO_RETRY",
    "RefinementService",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "TransportError",
    "serve",
    # durable experiment orchestration
    "ClusterConfig",
    "ClusterReport",
    "OrchestrationError",
    "OrchestratorConfig",
    "OrchestratorReport",
    "run_checkpointed_experiment",
    "run_cluster_experiment",
    # selection registry and utilities
    "available_selectors",
    "crowd_entropy",
    "get_selector",
    "merge_answers",
    "pws_quality",
    "utility_gain",
    "__version__",
]
