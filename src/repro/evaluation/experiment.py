"""End-to-end quality experiments (Figures 2, 3 and 4 of the paper).

The experiment runner mirrors the paper's setup: every entity (book) gets its
own fact set, prior distribution (from a machine-only fusion method), a task
budget ``B`` and a per-round task count ``k``; rounds are executed for all
entities in lock-step and after every global pass the summed utility and the
F1-score of the thresholded labels are recorded, producing the
quality-vs-cost curves of the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.facts import FactSet
from repro.core.merging import merge_answers
from repro.core.selection import TaskSelector, get_selector
from repro.correlation.builder import JointDistributionBuilder
from repro.correlation.rules import CorrelationRule
from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.worker import WorkerPool
from repro.evaluation.metrics import classification_scores, total_utility
from repro.exceptions import CrowdFusionError, DatasetError
from repro.fusion.claims import ClaimDatabase
from repro.fusion.pipeline import FusionMethod, claims_to_facts, fusion_prior


@dataclass
class EntityProblem:
    """One independent refinement problem (one book / one flight)."""

    entity: str
    facts: FactSet
    prior: JointDistribution
    gold: Dict[str, bool]
    difficulties: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = [fact_id for fact_id in self.prior.fact_ids if fact_id not in self.gold]
        if missing:
            raise DatasetError(
                f"entity {self.entity!r} is missing gold labels for {missing}"
            )


#: Signature of an optional correlation-rule factory: given the entity id and
#: its fact ids, return the rules coupling them in the prior.
RuleFactory = Callable[[str, Sequence[str]], Sequence[CorrelationRule]]


def build_problems(
    database: ClaimDatabase,
    gold: Mapping[str, bool],
    fusion_method: FusionMethod,
    difficulties: Optional[Mapping[str, float]] = None,
    clip: float = 0.05,
    max_facts_per_entity: Optional[int] = 14,
    rule_factory: Optional[RuleFactory] = None,
    entities: Optional[Sequence[str]] = None,
) -> List[EntityProblem]:
    """Fuse a claim database and split it into per-entity refinement problems.

    Parameters
    ----------
    database, gold:
        The claim observations and gold labels (from a dataset generator).
    fusion_method:
        The machine-only initialiser (e.g. :class:`repro.fusion.ModifiedCRH`).
    difficulties:
        Optional per-claim crowd difficulty used by the simulated platform.
    clip:
        Marginal clipping applied to the fusion confidences.
    max_facts_per_entity:
        Entities with more claims keep only their most-supported claims; this
        bounds the joint-distribution size (``None`` disables the cap).
    rule_factory:
        Optional factory producing correlation rules per entity; when omitted
        the prior is the independent product of the fusion marginals.
    entities:
        Restrict the problems to these entities (default: all entities).
    """
    result = fusion_method.run(database)
    difficulty_map = dict(difficulties or {})
    wanted = list(entities) if entities is not None else list(database.entities())
    problems: List[EntityProblem] = []

    for entity in wanted:
        claims = list(database.claims_for(entity))
        if not claims:
            continue
        claims.sort(key=lambda claim: (-claim.support, claim.claim_id))
        if max_facts_per_entity is not None:
            claims = claims[:max_facts_per_entity]
        facts = claims_to_facts(claims, result)
        fact_ids = facts.fact_ids

        if rule_factory is not None:
            marginals = {
                fact_id: min(1.0 - clip, max(clip, result.confidence(fact_id)))
                for fact_id in fact_ids
            }
            rules = rule_factory(entity, fact_ids)
            prior = JointDistributionBuilder(marginals, rules).build()
        else:
            prior = fusion_prior(result, claims, clip=clip, fact_ids=fact_ids)

        entity_gold = {fact_id: bool(gold[fact_id]) for fact_id in fact_ids}
        entity_difficulties = {
            fact_id: difficulty_map.get(fact_id, 0.0) for fact_id in fact_ids
        }
        problems.append(
            EntityProblem(
                entity=entity,
                facts=facts,
                prior=prior,
                gold=entity_gold,
                difficulties=entity_difficulties,
            )
        )
    if not problems:
        raise DatasetError("no entity problems could be built from the database")
    return problems


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one quality experiment run.

    Attributes
    ----------
    selector:
        Canonical selector name or paper label (see the selection registry).
    k:
        Tasks per round per entity.
    budget_per_entity:
        Task budget ``B`` for every entity (the paper uses 60 per book).
    worker_accuracy:
        The *actual* accuracy of the simulated workers.
    assumed_accuracy:
        The ``Pc`` the system assumes for selection and merging; defaults to
        ``worker_accuracy`` (the paper's Figure 4 varies this).
    answers_per_task:
        Independent worker answers aggregated per task by the platform.
    use_difficulties:
        Whether the per-claim difficulties affect the simulated workers.
    seed:
        Base RNG seed; each entity derives its own stream from it.
    """

    selector: str = "greedy_prune_pre"
    k: int = 3
    budget_per_entity: int = 60
    worker_accuracy: float = 0.8
    assumed_accuracy: Optional[float] = None
    answers_per_task: int = 1
    use_difficulties: bool = False
    seed: int = 0

    @property
    def model_accuracy(self) -> float:
        """The ``Pc`` used by selection and Bayesian merging."""
        return (
            self.assumed_accuracy
            if self.assumed_accuracy is not None
            else self.worker_accuracy
        )


@dataclass(frozen=True)
class QualityPoint:
    """One point of a quality-vs-cost curve."""

    cost: int
    utility: float
    f1: float
    precision: float
    recall: float
    accuracy: float


@dataclass
class ExperimentResult:
    """Quality curve produced by one experiment run."""

    config: ExperimentConfig
    points: List[QualityPoint] = field(default_factory=list)

    @property
    def initial_point(self) -> QualityPoint:
        """Quality before any crowdsourcing (cost 0)."""
        return self.points[0]

    @property
    def final_point(self) -> QualityPoint:
        """Quality after the whole budget has been spent."""
        return self.points[-1]

    def costs(self) -> List[int]:
        """Cumulative cost axis of the curve."""
        return [point.cost for point in self.points]

    def f1_series(self) -> List[float]:
        """F1 values aligned with :meth:`costs`."""
        return [point.f1 for point in self.points]

    def utility_series(self) -> List[float]:
        """Summed-utility values aligned with :meth:`costs`."""
        return [point.utility for point in self.points]


@dataclass
class _EntityState:
    """Mutable per-entity state while an experiment is running."""

    problem: EntityProblem
    distribution: JointDistribution
    platform: SimulatedPlatform
    selector: TaskSelector
    remaining_budget: int


def _measure(
    states: Sequence[_EntityState], cost: int
) -> QualityPoint:
    """Compute one curve point from the current per-entity distributions."""
    predicted: Dict[str, bool] = {}
    gold: Dict[str, bool] = {}
    for state in states:
        predicted.update(state.distribution.predicted_labels())
        gold.update(state.problem.gold)
    scores = classification_scores(predicted, gold)
    utility = total_utility(state.distribution for state in states)
    return QualityPoint(
        cost=cost,
        utility=utility,
        f1=scores.f1,
        precision=scores.precision,
        recall=scores.recall,
        accuracy=scores.accuracy,
    )


def run_quality_experiment(
    problems: Sequence[EntityProblem],
    config: ExperimentConfig,
    budgets: Optional[Mapping[str, int]] = None,
) -> ExperimentResult:
    """Run the budgeted refinement over all entities and record the quality curve.

    Rounds are interleaved across entities (every entity runs its ``r``-th
    round before any entity runs round ``r + 1``), and a curve point is
    recorded after each global pass — matching how the paper accumulates cost
    over the whole book collection.

    ``budgets`` optionally overrides the per-entity budget (keyed by entity
    id); entities not listed fall back to ``config.budget_per_entity``.  This
    is how the budget-allocation extension (``repro.evaluation.allocation``)
    plugs in.
    """
    if not problems:
        raise CrowdFusionError("cannot run an experiment without entity problems")
    crowd = CrowdModel(config.model_accuracy)
    budget_overrides = dict(budgets or {})

    states: List[_EntityState] = []
    for index, problem in enumerate(problems):
        pool = WorkerPool.homogeneous(
            size=25, accuracy=config.worker_accuracy, seed=config.seed * 7919 + index
        )
        platform = SimulatedPlatform(
            ground_truth=problem.gold,
            workers=pool,
            difficulties=problem.difficulties if config.use_difficulties else None,
            answers_per_task=config.answers_per_task,
        )
        selector = get_selector(
            config.selector,
            **({"seed": config.seed * 104729 + index} if config.selector in ("random", "Random") else {}),
        )
        states.append(
            _EntityState(
                problem=problem,
                distribution=problem.prior,
                platform=platform,
                selector=selector,
                remaining_budget=budget_overrides.get(
                    problem.entity, config.budget_per_entity
                ),
            )
        )

    result = ExperimentResult(config=config)
    total_cost = 0
    result.points.append(_measure(states, total_cost))

    while any(state.remaining_budget > 0 for state in states):
        progressed = False
        for state in states:
            if state.remaining_budget <= 0:
                continue
            k = min(config.k, state.remaining_budget, state.distribution.num_facts)
            selection = state.selector.select(state.distribution, crowd, k)
            if not selection.task_ids:
                state.remaining_budget = 0
                continue
            answers = state.platform.collect(selection.task_ids)
            state.distribution = merge_answers(state.distribution, answers, crowd)
            state.remaining_budget -= len(selection.task_ids)
            total_cost += len(selection.task_ids)
            progressed = True
        if not progressed:
            break
        result.points.append(_measure(states, total_cost))

    return result
