"""The modified CRH framework used to initialise CrowdFusion (Section V-A).

CRH (Li et al., SIGMOD 2014) alternates between *truth computation* (given
source weights, pick the value each source-weighted vote favours) and
*source-weight estimation* (weight a source by how often it agrees with the
current truths).  The original framework assumes a single true value per data
item; because the Book dataset has several correct formattings of the same
author list, the paper modifies it:

1. for each entity, mark the top-50 % most supported claims as (provisionally)
   correct by majority voting;
2. run the CRH weight / truth iterations against those provisional labels,
   allowing multiple true claims per data item.

The output confidence of a claim is the normalised weighted vote it receives,
which is what the fusion pipeline converts into CrowdFusion's prior.
"""

from __future__ import annotations

import math
from typing import Dict, Set, Tuple

from repro.fusion.claims import ClaimDatabase
from repro.fusion.pipeline import FusionResult
from repro.exceptions import FusionError


class ModifiedCRH:
    """Multi-truth CRH with top-50 % majority-vote bootstrapping.

    Parameters
    ----------
    max_iterations:
        Upper bound on weight/truth alternations.
    tolerance:
        Convergence threshold on the L1 change of source weights.
    top_fraction:
        Fraction of an entity's claims marked correct during bootstrapping
        (the paper uses 0.5).
    smoothing:
        Small constant keeping source error rates away from 0/1 so weights
        stay finite.
    """

    name = "modified_crh"

    def __init__(
        self,
        max_iterations: int = 50,
        tolerance: float = 1e-6,
        top_fraction: float = 0.5,
        smoothing: float = 0.05,
    ):
        if not 0.0 < top_fraction <= 1.0:
            raise FusionError(f"top_fraction must be in (0, 1], got {top_fraction}")
        if max_iterations <= 0:
            raise FusionError(f"max_iterations must be positive, got {max_iterations}")
        if not 0.0 < smoothing < 0.5:
            raise FusionError(f"smoothing must be in (0, 0.5), got {smoothing}")
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        self._top_fraction = top_fraction
        self._smoothing = smoothing

    # -- bootstrapping -----------------------------------------------------------------

    def _bootstrap_labels(self, database: ClaimDatabase) -> Set[str]:
        """Mark the top-``top_fraction`` supported claims of each entity as correct."""
        correct: Set[str] = set()
        for entity in database.entities():
            claims = sorted(
                database.claims_for(entity), key=lambda claim: (-claim.support, claim.claim_id)
            )
            if not claims:
                continue
            keep = max(1, math.ceil(len(claims) * self._top_fraction))
            correct.update(claim.claim_id for claim in claims[:keep])
        return correct

    # -- CRH iterations ------------------------------------------------------------------

    def run(self, database: ClaimDatabase) -> FusionResult:
        """Fuse the database and return per-claim confidences and source weights."""
        claims = database.claims()
        if not claims:
            raise FusionError("cannot fuse an empty claim database")
        sources = [source.source_id for source in database.sources()]
        claim_by_id = {claim.claim_id: claim for claim in claims}

        current_truths = self._bootstrap_labels(database)
        weights: Dict[str, float] = {source_id: 1.0 for source_id in sources}
        iterations_run = 0

        for iteration in range(1, self._max_iterations + 1):
            iterations_run = iteration
            new_weights = self._estimate_weights(database, current_truths)
            confidences = self._weighted_confidences(database, new_weights)
            new_truths = self._truth_computation(database, confidences)

            drift = sum(
                abs(new_weights[source_id] - weights[source_id]) for source_id in sources
            )
            weights = new_weights
            if new_truths == current_truths and drift < self._tolerance:
                current_truths = new_truths
                break
            current_truths = new_truths

        confidences = self._weighted_confidences(database, weights)
        # Blend the hard truth decision into the confidence so that the
        # "declared true" claims sit above 0.5 and the rest below, while the
        # weighted vote still differentiates within each group.
        blended = {}
        for claim in claims:
            vote = confidences[claim.claim_id]
            if claim.claim_id in current_truths:
                blended[claim.claim_id] = 0.5 + 0.5 * vote
            else:
                blended[claim.claim_id] = 0.5 * vote
        del claim_by_id  # only needed for potential debugging hooks
        return FusionResult(
            method=self.name,
            confidences=blended,
            source_weights=weights,
            iterations=iterations_run,
        )

    def _estimate_weights(
        self, database: ClaimDatabase, truths: Set[str]
    ) -> Dict[str, float]:
        """Weight each source by ``-log`` of its (smoothed, normalised) error rate."""
        errors: Dict[str, Tuple[int, int]] = {}
        for claim in database.claims():
            is_true = claim.claim_id in truths
            for source_id in claim.sources:
                wrong, total = errors.get(source_id, (0, 0))
                errors[source_id] = (wrong + (0 if is_true else 1), total + 1)

        rates: Dict[str, float] = {}
        for source in database.sources():
            wrong, total = errors.get(source.source_id, (0, 0))
            if total == 0:
                rates[source.source_id] = 0.5
            else:
                rates[source.source_id] = min(
                    1.0 - self._smoothing, max(self._smoothing, wrong / total)
                )
        max_rate = max(rates.values())
        weights = {
            source_id: max(1e-6, -math.log(rate / (max_rate + self._smoothing)))
            for source_id, rate in rates.items()
        }
        return weights

    def _weighted_confidences(
        self, database: ClaimDatabase, weights: Dict[str, float]
    ) -> Dict[str, float]:
        """Normalised weighted vote each claim receives within its data item."""
        claims = database.claims()
        votes = {
            claim.claim_id: sum(weights.get(source_id, 0.0) for source_id in claim.sources)
            for claim in claims
        }
        totals: Dict[Tuple[str, str], float] = {}
        for claim in claims:
            totals[claim.data_item] = totals.get(claim.data_item, 0.0) + votes[claim.claim_id]
        confidences = {}
        for claim in claims:
            total = totals[claim.data_item]
            confidences[claim.claim_id] = votes[claim.claim_id] / total if total > 0 else 0.0
        return confidences

    def _truth_computation(
        self, database: ClaimDatabase, confidences: Dict[str, float]
    ) -> Set[str]:
        """Declare the top-``top_fraction`` claims (by weighted vote) of each entity true."""
        truths: Set[str] = set()
        for entity in database.entities():
            claims = sorted(
                database.claims_for(entity),
                key=lambda claim: (-confidences[claim.claim_id], claim.claim_id),
            )
            if not claims:
                continue
            keep = max(1, math.ceil(len(claims) * self._top_fraction))
            truths.update(claim.claim_id for claim in claims[:keep])
        return truths
