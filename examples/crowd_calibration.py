"""Estimating crowd accuracy with a qualification pre-test (Section V-C).

The paper observes that the real crowd's accuracy was about 0.86 and that
mis-estimating ``Pc`` hurts: underestimating slows convergence, overstating it
(``Pc = 1``) freezes early mistakes forever.  This example estimates ``Pc``
from a gold-labelled pre-test on a simulated worker pool, then compares
refinement quality when the system assumes the estimated value, a pessimistic
value and a perfect crowd.

Run with:  python examples/crowd_calibration.py
"""

from repro.crowdsim import QualificationTest, SimulatedPlatform, WorkerPool
from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import (
    ExperimentConfig,
    build_problems,
    format_table,
    run_quality_experiment,
)
from repro.fusion import ModifiedCRH

TRUE_WORKER_ACCURACY = 0.86


def main() -> None:
    corpus = generate_book_corpus(
        BookCorpusConfig(num_books=25, num_sources=16, seed=37)
    )

    # ---- qualification pre-test on 20 gold-labelled statements -----------------
    pool = WorkerPool.heterogeneous(
        40, mean_accuracy=TRUE_WORKER_ACCURACY, spread=0.05, seed=53
    )
    platform = SimulatedPlatform(ground_truth=corpus.gold, workers=pool)
    sample = dict(list(corpus.gold.items())[:20])
    estimate = QualificationTest(sample, repetitions=5).run(platform)
    print(
        f"Pre-test on {estimate.sample_size} tasks: estimated Pc = "
        f"{estimate.estimated_accuracy:.3f} "
        f"(95% interval [{estimate.interval_low:.3f}, {estimate.interval_high:.3f}]; "
        f"true pool mean {pool.mean_accuracy():.3f})"
    )

    # ---- refinement quality under different assumed Pc values -------------------
    problems = build_problems(
        corpus.database, corpus.gold, ModifiedCRH(),
        difficulties=corpus.difficulties, max_facts_per_entity=8,
    )
    assumptions = {
        "estimated Pc": round(estimate.estimated_accuracy, 3),
        "pessimistic Pc=0.6": 0.6,
        "blind trust Pc=1.0": 1.0,
    }
    rows = []
    for label, assumed in assumptions.items():
        config = ExperimentConfig(
            selector="greedy_prune_pre",
            k=2,
            budget_per_entity=14,
            worker_accuracy=TRUE_WORKER_ACCURACY,
            assumed_accuracy=assumed,
            seed=61,
        )
        result = run_quality_experiment(problems, config)
        rows.append(
            [label, assumed, result.final_point.f1, result.final_point.utility]
        )

    print("\nRefinement quality after 14 tasks/book (workers really at Pc=0.86):")
    print(
        format_table(
            ["assumption", "assumed Pc", "final F1", "final utility"],
            rows,
            float_format="{:.3f}",
        )
    )
    print(
        "\nTakeaway (matches Section V-C): a well-estimated Pc dominates both "
        "a pessimistic estimate and blind trust in the crowd."
    )


if __name__ == "__main__":
    main()
