"""Task-selection algorithms for CrowdFusion.

All selectors implement the :class:`repro.core.selection.base.TaskSelector`
interface and maximise the answer-set entropy ``H(T)`` (Equation 4), which is
equivalent to maximising the expected utility gain of one crowdsourcing round.

Available selectors (Section III & IV of the paper):

* :class:`BruteForceSelector` — the exact "OPT" baseline.
* :class:`GreedySelector` — Algorithm 1, the ``(1 − 1/e)`` approximation.
* :class:`PruningGreedySelector` — Algorithm 1 plus the Theorem-3 pruning rule.
* :class:`PreprocessingGreedySelector` — Algorithm 1 plus the answer-joint
  preprocessing and incremental partition refinement (Algorithm 2).
* :class:`PrunedPreprocessingGreedySelector` — both accelerations.
* :class:`RandomSelector` — the random baseline used in the evaluation.
* :class:`QueryGreedySelector` — query-based CrowdFusion (Section IV).
"""

from repro.core.selection.base import SelectionResult, SelectionStats, TaskSelector
from repro.core.selection.brute_force import BruteForceSelector
from repro.core.selection.fact_entropy import FactEntropySelector
from repro.core.selection.greedy import GreedySelector
from repro.core.selection.preprocessing import (
    PreprocessingGreedySelector,
    PrunedPreprocessingGreedySelector,
)
from repro.core.selection.pruning import PruningGreedySelector
from repro.core.selection.query_greedy import QueryGreedySelector
from repro.core.selection.random_selector import RandomSelector
from repro.core.selection.registry import available_selectors, get_selector

__all__ = [
    "BruteForceSelector",
    "FactEntropySelector",
    "GreedySelector",
    "PreprocessingGreedySelector",
    "PrunedPreprocessingGreedySelector",
    "PruningGreedySelector",
    "QueryGreedySelector",
    "RandomSelector",
    "SelectionResult",
    "SelectionStats",
    "TaskSelector",
    "available_selectors",
    "get_selector",
]
