"""Unit tests for Answer and AnswerSet."""

import pytest

from repro.core.answers import Answer, AnswerSet
from repro.exceptions import InvalidFactError


class TestAnswer:
    def test_basic_fields(self):
        answer = Answer("f1", True, worker_id="w3", confidence=0.9)
        assert answer.fact_id == "f1"
        assert answer.judgment is True
        assert answer.worker_id == "w3"

    def test_empty_fact_id_rejected(self):
        with pytest.raises(InvalidFactError):
            Answer("", True)

    def test_confidence_out_of_range_rejected(self):
        with pytest.raises(InvalidFactError):
            Answer("f1", True, confidence=1.2)

    def test_optional_fields_default_to_none(self):
        answer = Answer("f1", False)
        assert answer.worker_id is None
        assert answer.confidence is None


class TestAnswerSet:
    def test_mapping_interface(self):
        answers = AnswerSet([Answer("f1", True), Answer("f2", False)])
        assert len(answers) == 2
        assert answers["f1"] is True
        assert answers["f2"] is False
        assert "f1" in answers
        assert set(iter(answers)) == {"f1", "f2"}

    def test_unknown_fact_lookup_raises(self):
        answers = AnswerSet([Answer("f1", True)])
        with pytest.raises(InvalidFactError):
            answers["zzz"]

    def test_empty_rejected(self):
        with pytest.raises(InvalidFactError):
            AnswerSet([])

    def test_duplicate_fact_rejected(self):
        with pytest.raises(InvalidFactError):
            AnswerSet([Answer("f1", True), Answer("f1", False)])

    def test_from_mapping(self):
        answers = AnswerSet.from_mapping({"a": True, "b": False}, worker_id="crowd")
        assert answers["a"] is True
        assert answers.answers[0].worker_id == "crowd"

    def test_fact_ids_preserve_order(self):
        answers = AnswerSet([Answer("b", True), Answer("a", False)])
        assert answers.fact_ids == ("b", "a")

    def test_judgments_returns_copy(self):
        answers = AnswerSet.from_mapping({"a": True})
        judgments = answers.judgments()
        judgments["a"] = False
        assert answers["a"] is True

    def test_agreement_with_truth(self):
        answers = AnswerSet.from_mapping({"a": True, "b": False, "c": True})
        truth = {"a": True, "b": True, "c": False}
        assert answers.agreement_with(truth) == (1, 2)

    def test_agreement_missing_truth_raises(self):
        answers = AnswerSet.from_mapping({"a": True})
        with pytest.raises(InvalidFactError):
            answers.agreement_with({})

    def test_restricted_to_subset(self):
        answers = AnswerSet.from_mapping({"a": True, "b": False, "c": True})
        restricted = answers.restricted_to(["a", "c"])
        assert set(restricted.fact_ids) == {"a", "c"}

    def test_equality_by_judgments(self):
        assert AnswerSet.from_mapping({"a": True}) == AnswerSet(
            [Answer("a", True, worker_id="w1")]
        )
        assert AnswerSet.from_mapping({"a": True}) != AnswerSet.from_mapping({"a": False})

    def test_repr_mentions_verdicts(self):
        text = repr(AnswerSet.from_mapping({"a": True, "b": False}))
        assert "a=T" in text
        assert "b=F" in text
