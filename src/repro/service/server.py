"""The asyncio multi-tenant refinement service.

:class:`RefinementService` exposes the paper's interactive loop — post crowd
answers, ask "which tasks next?", repeat under a running budget — as
addressable session resources on top of the persistent
:class:`~repro.core.selection.session.RefinementSession` runtime:

* ``create_session(distribution, channel, budget)`` registers a session and
  attaches it to one of a small set of shared persistent worker pools;
* ``post_answers(session_id, answers)`` folds a round of crowd answers into
  the posterior (the existing in-place Bayesian ``reweight``);
* ``get_posterior(session_id)`` / ``select_next(session_id, batch)`` read
  the current state, served from generation-keyed caches whenever nothing
  merged in between;
* ``metrics()`` reports live sessions, merge throughput, selection latency
  percentiles and shared-pool utilisation.

Concurrency model: every session owns a *bounded* job queue drained by one
asyncio task, so one tenant's requests execute strictly in submission order
(the property that makes a service trajectory bit-identical to the same
answer stream replayed through a standalone session) while different
tenants' jobs interleave freely on a small thread pool.  A full queue
rejects new work immediately with a 429-style
:class:`~repro.service.api.SessionOverloadedError` — fail-fast backpressure
instead of unbounded backlog.  Consecutive queued merges for one session are
drained in a single executor hop (request batching), which is what keeps
merge throughput flat as tenants get chattier.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.core.runtime import RuntimeOptions
from repro.service.api import (
    BudgetExhaustedError,
    DeadlineExceededError,
    MergeAbortedError,
    MergeReport,
    PosteriorView,
    SelectionReply,
    ServiceError,
    SessionClosed,
    SessionCreated,
    SessionOverloadedError,
    UnknownSessionError,
    ValidationFailedError,
    decode_answers,
)
from repro.service.batching import EngineGroup
from repro.service.metrics import ServiceMetrics
from repro.service.registry import SessionRecord, SessionRegistry
from repro.testing import faults

#: Default bound of a session's pending-request queue.
DEFAULT_MAX_PENDING = 8


def _deadline_from_ms(deadline_ms: Optional[int]) -> Optional[float]:
    """A request's ``deadline_ms`` as an absolute monotonic instant."""
    if deadline_ms is None:
        return None
    if deadline_ms <= 0:
        raise ValidationFailedError(
            f"deadline_ms must be positive, got {deadline_ms}"
        )
    return time.monotonic() + deadline_ms / 1000.0


@dataclass
class _Job:
    """One queued request: what to do, its input, and where the answer goes."""

    kind: str  # "merge" | "select" | "posterior" | "stop"
    payload: Any
    future: "Optional[asyncio.Future]"
    #: Absolute ``time.monotonic()`` instant after which the job must not
    #: *start* (``None`` = no deadline).  Enforced only at retry-safe points.
    deadline: Optional[float] = None

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unbounded)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())


class _SessionWorker:
    """The per-session drainer: a bounded queue and one consuming task."""

    def __init__(self, service: "RefinementService", record: SessionRecord, bound: int):
        self._service = service
        self.record = record
        self.queue: "asyncio.Queue[_Job]" = asyncio.Queue(maxsize=bound)
        self.closed = False
        self.task = asyncio.get_running_loop().create_task(self._drain())
        self.task.add_done_callback(self._on_drain_done)

    def submit(
        self, kind: str, payload: Any, deadline: Optional[float] = None
    ) -> "asyncio.Future":
        """Enqueue one request, failing fast when the tenant is overloaded."""
        if self.closed:
            raise UnknownSessionError(
                f"session {self.record.session_id} is closing"
            )
        future = asyncio.get_running_loop().create_future()
        try:
            self.queue.put_nowait(_Job(kind, payload, future, deadline))
        except asyncio.QueueFull:
            self._service._metrics.rejected_overload += 1
            raise SessionOverloadedError(
                f"session {self.record.session_id} has "
                f"{self.queue.maxsize} requests pending; retry later"
            ) from None
        return future

    async def stop(self) -> None:
        """Refuse new work, let queued jobs finish, then end the drainer."""
        if self.closed:
            await asyncio.wait([self.task])
            return
        self.closed = True
        # An awaited put: the stop marker queues even when the bound is hit,
        # and lands *behind* every already-accepted job.  asyncio.wait (not a
        # bare await) so a drainer that died on an unexpected error — whose
        # pending futures _on_drain_done already failed — cannot re-raise out
        # of close_session/shutdown.
        await self.queue.put(_Job("stop", None, None))
        await asyncio.wait([self.task])

    def _on_drain_done(self, task: "asyncio.Task") -> None:
        """Safety net: a dying drainer must never leave clients hanging.

        Job execution converts every failure to a per-job ``ServiceError``,
        so the drain task ending with an exception should be unreachable —
        but if it ever happens, fail everything still queued instead of
        letting the submitted futures (and their awaiting clients) hang
        forever.
        """
        if task.cancelled() or task.exception() is None:
            return
        self.closed = True
        error = ServiceError(
            f"session {self.record.session_id} worker died: {task.exception()!r}"
        )
        while True:
            try:
                job = self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if job.future is not None and not job.future.done():
                self._service._metrics.errors += 1
                job.future.set_exception(error)

    async def _drain(self) -> None:
        stopping = False
        while not stopping:
            job = await self.queue.get()
            if job.kind == "stop":
                break
            if job.kind == "merge":
                # Batch every consecutively queued merge into one executor
                # hop; a non-merge job ends the batch and runs right after.
                batch = [job]
                carry: Optional[_Job] = None
                while True:
                    try:
                        pending = self.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if pending.kind == "stop":
                        stopping = True
                        break
                    if pending.kind == "merge":
                        batch.append(pending)
                    else:
                        carry = pending
                        break
                await self._service._run_merge_batch(self.record, batch)
                if carry is not None:
                    await self._service._run_job(self.record, carry)
            else:
                await self._service._run_job(self.record, job)


class RefinementService:
    """Async multi-tenant refinement sessions on shared persistent pools.

    Parameters
    ----------
    runtime:
        :class:`~repro.core.runtime.RuntimeOptions` for the shared scan
        runtime.  When it carries workers, the service builds ``pools``
        shared :class:`~repro.core.selection.parallel.EvaluatorPool`
        instances and multiplexes every session onto them; without workers
        all scans run serially on the executor threads.  (Service pools are
        persistent by construction — the ``persistent_pool`` flag is not
        required.)  ``recalibrate`` and ``parallel_entities`` are rejected
        with :class:`~repro.service.api.ValidationFailedError`: the service
        runtime does not implement them, and silently ignoring them would
        hand a tenant different trajectories than the options promise.
    pools:
        Number of shared evaluator pools (ignored without workers).  Total
        resident worker processes are ``pools × workers`` regardless of the
        session count.
    max_pending:
        Per-session queue bound; the 429 threshold.
    executor_workers:
        Threads for compute offload.  Defaults to ``pools + 4`` so distinct
        tenants' scans and merges overlap without unbounded thread growth.
    state_dir:
        Directory for durable session snapshots.  With it set, every
        session's posterior/channel/budget state is snapshotted (debounced
        after merges, unconditionally on eviction and shutdown) and a
        restarted service transparently revives sessions on their next
        request — ``get_posterior`` after a restart matches the pre-restart
        posterior to within float-serialisation exactness.
    max_sessions:
        LRU cap on resident sessions (requires ``state_dir``): creating or
        reviving past the cap evicts the least-recently-used idle session to
        disk instead of dropping it.
    idle_ttl_s:
        Idle timeout (requires ``state_dir``): a housekeeping task evicts
        sessions untouched for this long to disk; their next request revives
        them.
    """

    def __init__(
        self,
        runtime: Optional[RuntimeOptions] = None,
        *,
        pools: int = 1,
        max_pending: int = DEFAULT_MAX_PENDING,
        executor_workers: Optional[int] = None,
        latency_window: int = 1024,
        state_dir: Optional[str] = None,
        max_sessions: Optional[int] = None,
        idle_ttl_s: Optional[float] = None,
        snapshot_debounce_s: float = 1.0,
    ):
        if max_pending < 1:
            raise ValidationFailedError(
                f"max_pending must be at least 1, got {max_pending}"
            )
        if runtime is not None and runtime.recalibrate:
            raise ValidationFailedError(
                "RuntimeOptions.recalibrate is not supported for service "
                "sessions: the registry creates sessions without "
                "re-calibration, so the flag would be silently ignored"
            )
        if runtime is not None and runtime.parallel_entities is not None:
            raise ValidationFailedError(
                "RuntimeOptions.parallel_entities is experiment-level entity "
                "fan-out and has no meaning for service sessions; configure "
                "workers (and pools) instead"
            )
        policy = runtime.parallel_policy if runtime is not None else None
        self._group = EngineGroup(policy, pools=pools)
        self._registry = SessionRegistry(
            self._group,
            kernel=runtime.kernel if runtime is not None else "auto",
            snapshot_dir=state_dir,
            max_sessions=max_sessions,
            idle_ttl_s=idle_ttl_s,
            snapshot_debounce_s=snapshot_debounce_s,
        )
        self._metrics = ServiceMetrics(latency_window)
        self._max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers
            if executor_workers is not None
            else pools + 4,
            thread_name_prefix="refinement",
        )
        self._workers: Dict[str, _SessionWorker] = {}
        self._housekeeper: "Optional[asyncio.Task]" = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def sessions_live(self) -> int:
        return len(self._registry)

    def session_ids(self) -> "tuple[str, ...]":
        return self._registry.session_ids()

    async def __aenter__(self) -> "RefinementService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.shutdown()

    async def shutdown(self) -> None:
        """Drain every session, release the shared pools, stop the executor."""
        if self._closed:
            return
        self._closed = True
        if self._housekeeper is not None:
            self._housekeeper.cancel()
            try:
                await self._housekeeper
            except asyncio.CancelledError:
                pass
            self._housekeeper = None
        for worker in list(self._workers.values()):
            await worker.stop()
        self._workers.clear()
        # Registry close flushes every dirty session's snapshot first, so a
        # graceful shutdown is always restorable.
        self._registry.close()
        self._executor.shutdown(wait=True)

    # -- eviction housekeeping ---------------------------------------------------------

    def _ensure_housekeeper(self) -> None:
        """Start the idle-TTL sweeper lazily (needs a running loop)."""
        if self._registry.idle_ttl_s is None or self._housekeeper is not None:
            return
        self._housekeeper = asyncio.get_running_loop().create_task(
            self._housekeep()
        )

    async def _housekeep(self) -> None:
        interval = max(0.05, min(self._registry.idle_ttl_s / 2.0, 5.0))
        while not self._closed:
            await asyncio.sleep(interval)
            for session_id in self._registry.idle_candidates():
                await self._evict_session(session_id)

    async def _evict_session(self, session_id: str) -> bool:
        """Evict one idle session to disk; refuses sessions with queued work."""
        worker = self._workers.get(session_id)
        if worker is not None:
            if worker.closed or not worker.queue.empty():
                return False
            await worker.stop()
            # Anything that raced into existence between the emptiness check
            # and the stop was answered by the drainer before it ended.
            self._workers.pop(session_id, None)
        if self._registry.peek(session_id) is None:
            return False
        self._registry.evict(session_id)
        return True

    # -- the session API ---------------------------------------------------------------

    async def create_session(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        budget: int,
        selector: str = "greedy_prune_pre",
    ) -> SessionCreated:
        """Register a session and attach it to a shared evaluator pool."""
        self._ensure_open()
        self._ensure_housekeeper()
        while self._registry.at_capacity():
            victim = self._registry.lru_candidate()
            if victim is None or not await self._evict_session(victim):
                raise SessionOverloadedError(
                    f"the service is at max_sessions="
                    f"{self._registry.max_sessions} and no idle session "
                    "could be evicted; retry later"
                )
        record = self._registry.create(distribution, channel, budget, selector)
        self._workers[record.session_id] = _SessionWorker(
            self, record, self._max_pending
        )
        self._metrics.sessions_created += 1
        return SessionCreated(
            session_id=record.session_id,
            num_facts=record.session.num_facts,
            support_size=distribution.support_size,
            budget=budget,
            selector=selector,
        )

    async def post_answers(
        self,
        session_id: str,
        answers: Union[AnswerSet, Mapping[str, bool]],
        deadline_ms: Optional[int] = None,
    ) -> MergeReport:
        """Fold one round of crowd answers into the session's posterior.

        Charged against the budget (answers are collected work); rejected
        whole when the remaining budget cannot cover the batch.  A
        ``deadline_ms`` is enforced only *before* the merge is charged and
        started — a queued merge whose deadline lapses fails retry-safe with
        :class:`DeadlineExceededError`; a merge that began is never aborted.
        """
        if not isinstance(answers, AnswerSet):
            answers = decode_answers(answers)
        deadline = _deadline_from_ms(deadline_ms)
        worker = self._worker(session_id)
        return await worker.submit("merge", answers, deadline)

    async def select_next(
        self, session_id: str, batch: int = 1, deadline_ms: Optional[int] = None
    ) -> SelectionReply:
        """The next task set to publish, at most ``batch`` tasks.

        Idempotent between merges: repeated calls at one posterior
        generation are served from the selection cache.  ``deadline_ms``
        bounds queue wait plus the scan itself; an over-deadline scan fails
        retry-safe (the selection is read-only and its result is discarded
        without touching the cache).
        """
        if batch < 1:
            raise ValidationFailedError(f"batch must be at least 1, got {batch}")
        deadline = _deadline_from_ms(deadline_ms)
        worker = self._worker(session_id)
        return await worker.submit("select", batch, deadline)

    async def get_posterior(
        self, session_id: str, deadline_ms: Optional[int] = None
    ) -> PosteriorView:
        """The session's current posterior, cached per generation."""
        deadline = _deadline_from_ms(deadline_ms)
        worker = self._worker(session_id)
        return await worker.submit("posterior", None, deadline)

    async def close_session(self, session_id: str) -> SessionClosed:
        """Drain the session's queue, then evict it and free its pool slot."""
        worker = self._worker(session_id)
        await worker.stop()
        self._workers.pop(session_id, None)
        record = self._registry.remove(session_id)
        self._metrics.sessions_closed += 1
        return SessionClosed(
            session_id=session_id,
            rounds_merged=record.session.rounds_merged,
            budget_spent=record.spent,
        )

    def metrics(self) -> Dict[str, Any]:
        """The metrics-endpoint payload, shared-pool utilisation included."""
        durability = None
        if self._registry.durable:
            durability = {
                **self._registry.counters,
                "stored_sessions": len(self._registry.stored_ids()),
                "max_sessions": self._registry.max_sessions,
                "idle_ttl_s": self._registry.idle_ttl_s,
            }
        return self._metrics.snapshot(
            pools=self._group.utilisation(),
            recovery=self._group.recovery_counters(),
            durability=durability,
        )

    # -- request execution -------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise ServiceError("the refinement service is shut down")

    def _worker(self, session_id: str) -> _SessionWorker:
        self._ensure_open()
        # Raises UnknownSessionError for sessions that never existed; revives
        # evicted/restarted sessions from their disk snapshot.
        record = self._registry.get(session_id)
        worker = self._workers.get(session_id)
        if worker is None:
            # No drainer for a live record: the session was just revived from
            # disk (eviction pops the worker with no awaits between the pop
            # and the registry removal, so a *closing* session can never be
            # observed in this state).  Build it a fresh drainer.
            self._ensure_housekeeper()
            worker = _SessionWorker(self, record, self._max_pending)
            self._workers[session_id] = worker
        return worker

    def _validate_answers(self, record: SessionRecord, answers: AnswerSet) -> None:
        known = set(record.session.fact_ids)
        unknown = [fact_id for fact_id in answers.fact_ids if fact_id not in known]
        if unknown:
            raise ValidationFailedError(
                f"session {record.session_id} has no facts {unknown}"
            )

    async def _run_merge_batch(
        self, record: SessionRecord, jobs: List[_Job]
    ) -> None:
        """Validate, charge and merge a batch of queued answer sets.

        Validation and budget charging stay per request (a bad tenant batch
        fails alone); the accepted merges execute back to back in a single
        executor hop, which is the batching that keeps merge throughput flat
        under chatty tenants.
        """
        accepted: List[_Job] = []
        for job in jobs:
            if job.expired():
                # Deadline enforcement in the drain loop: the merge spent its
                # whole budget queued, nothing was validated or charged —
                # retry-safe by construction.
                self._metrics.deadline_hits += 1
                if not job.future.done():
                    job.future.set_exception(
                        DeadlineExceededError(
                            "merge deadline expired while queued; the answers "
                            "were not charged or merged — safe to retry"
                        )
                    )
                continue
            try:
                self._validate_answers(record, job.payload)
                record.charge(len(job.payload))
                accepted.append(job)
            except Exception as error:
                self._metrics.errors += 1
                if not isinstance(error, ServiceError):
                    error = ServiceError(f"merge rejected: {error}")
                if not job.future.done():
                    job.future.set_exception(error)
        if not accepted:
            return

        session = record.session
        completed: List[MergeReport] = []

        def merge_all() -> None:
            # One merge per step with progress recorded after each, so a
            # failure partway through the batch tells the caller exactly
            # which merges applied, which job failed, and which never ran.
            try:
                for job in accepted:
                    faults.fire("merge")
                    session.merge(job.payload)
                    completed.append(
                        MergeReport(
                            session_id=record.session_id,
                            rounds_merged=session.rounds_merged,
                            answers_merged=len(job.payload),
                            budget_remaining=record.remaining,
                            utility=session.utility(),
                        )
                    )
            finally:
                # Snapshot the post-merge state (debounced) while still on
                # the executor thread — durability I/O never blocks the
                # event loop, and a partly-failed batch snapshots whatever
                # actually merged.
                if completed:
                    self._registry.note_merged(record)

        started = time.perf_counter()
        failure: Optional[BaseException] = None
        try:
            await asyncio.get_running_loop().run_in_executor(
                self._executor, merge_all
            )
        except Exception as error:
            failure = error
        elapsed = time.perf_counter() - started

        record.invalidate_caches()
        done = len(completed)
        if done:
            self._metrics.merge_batches += 1
        for job, report in zip(accepted, completed):
            # These merges applied (before any failure): their posterior
            # updates are in the session for good, so answer them normally.
            self._metrics.merges += 1
            self._metrics.answers_merged += report.answers_merged
            self._metrics.merge_latency.record(elapsed / done)
            if not job.future.done():
                job.future.set_result(report)
        if failure is None:
            return

        # The job at index ``done`` raised mid-merge: its budget stays
        # charged (the session state is indeterminate for it).  The jobs
        # behind it never ran — refund their charge so a client retry cannot
        # double-merge, and fail them with a retry-safe error.
        self._metrics.errors += len(accepted) - done
        failed_job = accepted[done]
        if not failed_job.future.done():
            failed_job.future.set_exception(ServiceError(f"merge failed: {failure}"))
        for job in accepted[done + 1:]:
            record.spent -= len(job.payload)
            if not job.future.done():
                job.future.set_exception(
                    MergeAbortedError(
                        "merge aborted: an earlier merge in the batch failed "
                        f"({failure}); these answers were not merged and "
                        "their budget charge was refunded — safe to retry"
                    )
                )

    async def _run_job(self, record: SessionRecord, job: _Job) -> None:
        try:
            if job.expired():
                # The job spent its whole deadline queued behind other work;
                # nothing has run — retry-safe.
                self._metrics.deadline_hits += 1
                raise DeadlineExceededError(
                    f"{job.kind} deadline expired while queued — safe to retry"
                )
            if job.kind == "select":
                result: Any = await self._run_select(record, job.payload, job)
            elif job.kind == "posterior":
                result = await self._run_posterior(record, job)
            else:  # pragma: no cover - defensive: unknown kinds cannot be queued
                raise ServiceError(f"unknown request kind {job.kind!r}")
        except Exception as error:
            # Anything the core runtime can throw — SelectionError, a
            # crashed pool worker, OSError — must surface on *this job's*
            # future as a typed ServiceError; letting it propagate would
            # kill the drain task and hang every client of this session.
            self._metrics.errors += 1
            if not isinstance(error, ServiceError):
                error = ServiceError(f"{job.kind} failed: {error}")
            if not job.future.done():
                job.future.set_exception(error)
            return
        if not job.future.done():
            job.future.set_result(result)

    async def _hop(self, call, job: Optional[_Job], kind: str):
        """Run ``call`` on the executor, bounded by the job's deadline.

        Only used for *read-only* work (selection scans, posterior builds):
        on timeout the executor thread finishes on its own and its result is
        discarded — no cache is written, no session state has changed, so the
        raised :class:`DeadlineExceededError` is honestly retry-safe.
        """
        loop = asyncio.get_running_loop()
        remaining = job.remaining() if job is not None else None
        future = loop.run_in_executor(self._executor, call)
        if remaining is None:
            return await future
        try:
            return await asyncio.wait_for(asyncio.shield(future), remaining)
        except asyncio.TimeoutError:
            # The abandoned computation still finishes on its thread; retrieve
            # its eventual outcome so a late failure is not logged as an
            # unretrieved exception.
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception()
            )
            self._metrics.deadline_hits += 1
            raise DeadlineExceededError(
                f"{kind} deadline expired mid-computation; the result was "
                "discarded without updating any session state — safe to retry"
            ) from None

    async def _run_select(
        self, record: SessionRecord, batch: int, job: Optional[_Job] = None
    ) -> SelectionReply:
        if record.remaining <= 0:
            raise BudgetExhaustedError(
                f"session {record.session_id} has exhausted its budget of "
                f"{record.budget} tasks"
            )
        k = min(batch, record.remaining, record.session.num_facts)
        key = (record.generation(), k)
        cached = record.selection_cache.get(key)
        if cached is not None:
            self._metrics.selections += 1
            self._metrics.selection_cache_hits += 1
            return replace(cached, cached=True, budget_remaining=record.remaining)

        session, selector = record.session, record.selector

        def scan():
            faults.fire("select")
            return selector.select_with_session(session, k)

        started = time.perf_counter()
        selection = await self._hop(scan, job, "select")
        self._metrics.selection_latency.record(time.perf_counter() - started)
        self._metrics.selections += 1
        reply = SelectionReply(
            session_id=record.session_id,
            task_ids=tuple(selection.task_ids),
            objective=selection.objective,
            budget_remaining=record.remaining,
            cached=False,
        )
        record.selection_cache[key] = reply
        return reply

    async def _run_posterior(
        self, record: SessionRecord, job: Optional[_Job] = None
    ) -> PosteriorView:
        key = record.generation()
        cached = record.posterior_cache.get(key)
        if cached is not None:
            self._metrics.posterior_cache_hits += 1
            return cached

        session = record.session

        def build() -> PosteriorView:
            posterior = session.distribution
            return PosteriorView(
                session_id=record.session_id,
                fact_ids=session.fact_ids,
                support=tuple(posterior.items()),
                marginals=session.marginals(),
                utility=session.utility(),
                rounds_merged=session.rounds_merged,
            )

        view = await self._hop(build, job, "posterior")
        record.posterior_cache[key] = view
        return view
