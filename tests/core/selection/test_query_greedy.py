"""Unit tests for query-based task selection (Section IV)."""

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.query import Query
from repro.core.selection import QueryGreedySelector
from repro.datasets.running_example import running_example_distribution
from repro.exceptions import QueryError


@pytest.fixture
def crowd():
    return CrowdModel(0.8)


def correlated_pair_distribution():
    """Two strongly correlated facts plus one independent fact.

    ``a`` and ``b`` almost always share a truth value; ``c`` is independent
    and uncertain.  A query interested only in ``a`` should still consider
    asking ``b`` (correlated evidence) but not waste effort on ``c``.
    """
    return JointDistribution.from_assignments(
        ("a", "b", "c"),
        {
            (True, True, True): 0.23,
            (True, True, False): 0.23,
            (False, False, True): 0.22,
            (False, False, False): 0.22,
            (True, False, True): 0.025,
            (False, True, True): 0.025,
            (True, False, False): 0.025,
            (False, True, False): 0.025,
        },
    )


class TestQueryGreedy:
    def test_selects_tasks_relevant_to_interest(self, crowd):
        dist = correlated_pair_distribution()
        selector = QueryGreedySelector(Query.of(["a"]))
        result = selector.select(dist, crowd, 1)
        # Both a and b are informative about a; the irrelevant fact c is not.
        assert result.task_ids[0] in {"a", "b"}

    def test_unknown_interest_fact_raises(self, crowd):
        dist = correlated_pair_distribution()
        selector = QueryGreedySelector(Query.of(["zzz"]))
        with pytest.raises(QueryError):
            selector.select(dist, crowd, 1)

    def test_objective_is_query_utility(self, crowd):
        dist = correlated_pair_distribution()
        query = Query.of(["a"])
        selector = QueryGreedySelector(query)
        result = selector.select(dist, crowd, 1)
        tasks = list(result.task_ids)
        expected = crowd.task_entropy(dist, tasks) - crowd.joint_fact_answer_entropy(
            dist, query.fact_ids, tasks
        )
        assert result.objective == pytest.approx(expected, abs=1e-9)

    def test_utility_gain_non_negative_per_step(self, crowd):
        """Submodular monotone objective: each selected task improves Q(I|T)."""
        dist = correlated_pair_distribution()
        query = Query.of(["a"])
        selector = QueryGreedySelector(query)
        no_tasks_utility = -dist.marginalize(query.fact_ids).entropy()
        result = selector.select(dist, crowd, 2)
        assert result.objective >= no_tasks_utility - 1e-9

    def test_full_interest_set_matches_standard_greedy_choice(self, crowd):
        """With I = F the query objective ranks task sets like H(T) − H(F, T)."""
        from repro.core.selection import GreedySelector

        dist = running_example_distribution()
        query_result = QueryGreedySelector(Query.of(dist.fact_ids)).select(dist, crowd, 2)
        plain_result = GreedySelector().select(dist, crowd, 2)
        assert set(query_result.task_ids) == set(plain_result.task_ids)

    def test_correlated_fact_helps_interest_fact(self, crowd):
        """Asking a correlated non-interest fact must beat asking an unrelated one."""
        dist = correlated_pair_distribution()
        query = Query.of(["a"])
        selector = QueryGreedySelector(query)
        utility_with_b = selector._query_utility(dist, crowd, ["b"])
        utility_with_c = selector._query_utility(dist, crowd, ["c"])
        assert utility_with_b > utility_with_c

    def test_query_property_accessor(self):
        query = Query.of(["a", "b"])
        assert QueryGreedySelector(query).query is query

    def test_irrelevant_facts_do_not_fill_the_budget(self, crowd):
        """Once the interest fact is pinned down, unrelated facts give ~no gain."""
        dist = JointDistribution.independent({"a": 0.5, "c": 0.5, "d": 0.5})
        selector = QueryGreedySelector(Query.of(["a"]))
        result = selector.select(dist, crowd, 3)
        # Only "a" itself can reduce H(I); independent facts are skipped, so
        # the selector stops early instead of spending the full budget.
        assert result.task_ids == ("a",)
