"""Quality metrics: precision / recall / F1 and summed utility.

The paper evaluates with two measurements (Section V-C): the utility (the
PWS-quality the selection optimises, summed over all data instances) and the
F1-score of the thresholded fact labels against the gold labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.distribution import JointDistribution
from repro.core.utility import pws_quality
from repro.exceptions import CrowdFusionError


@dataclass(frozen=True)
class ClassificationScores:
    """Precision, recall, F1 and accuracy of boolean predictions against gold."""

    precision: float
    recall: float
    f1: float
    accuracy: float
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def support(self) -> int:
        """Number of facts scored."""
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )


def classification_scores(
    predicted: Mapping[str, bool], gold: Mapping[str, bool]
) -> ClassificationScores:
    """Score boolean predictions against gold labels.

    Only facts present in *both* mappings are scored; raises if the overlap is
    empty.  Precision/recall degenerate cases (no predicted positives, no gold
    positives) are defined as 0.0, matching the usual convention.
    """
    shared = [fact_id for fact_id in predicted if fact_id in gold]
    if not shared:
        raise CrowdFusionError("no overlap between predictions and gold labels")

    tp = fp = fn = tn = 0
    for fact_id in shared:
        prediction = predicted[fact_id]
        truth = gold[fact_id]
        if prediction and truth:
            tp += 1
        elif prediction and not truth:
            fp += 1
        elif not prediction and truth:
            fn += 1
        else:
            tn += 1

    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    accuracy = (tp + tn) / len(shared)
    return ClassificationScores(
        precision=precision,
        recall=recall,
        f1=f1,
        accuracy=accuracy,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
        true_negatives=tn,
    )


def total_utility(distributions: Iterable[JointDistribution]) -> float:
    """Summed PWS-quality over a collection of per-entity distributions.

    This is the paper's utility measurement: "we simply sum up the utility
    scores of all data instances".
    """
    return sum(pws_quality(distribution) for distribution in distributions)
