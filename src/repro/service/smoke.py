"""End-to-end smoke test of the refinement service (``make serve-smoke``).

Boots a real server on a loopback socket, drives one full
create → post → select → posterior → close round-trip through the JSON
client, shuts everything down, and asserts that no worker processes leaked
(``multiprocessing.active_children()`` is empty).  Exits non-zero on any
failure, so it slots straight into CI.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import sys

from repro.core.crowd import CrowdModel
from repro.datasets import running_example_distribution
from repro.service.client import ServiceClient
from repro.service.server import RefinementService
from repro.service.transport import bound_port, serve


async def _round_trip() -> None:
    service = RefinementService()
    server = await serve(service, port=0)
    try:
        client = await ServiceClient.connect("127.0.0.1", bound_port(server))
        async with client:
            created = await client.create_session(
                running_example_distribution(), CrowdModel(0.8), budget=6
            )
            print(f"created {created.session_id}: {created.num_facts} facts, "
                  f"budget {created.budget}")

            selection = await client.select_next(created.session_id, batch=2)
            assert selection.task_ids, "selection returned no tasks"
            print(f"selected {selection.task_ids} (H(T) = {selection.objective:.3f})")

            report = await client.post_answers(
                created.session_id, {task_id: True for task_id in selection.task_ids}
            )
            assert report.rounds_merged == 1
            assert report.budget_remaining == created.budget - len(selection.task_ids)
            print(f"merged round {report.rounds_merged}, "
                  f"budget remaining {report.budget_remaining}")

            posterior = await client.get_posterior(created.session_id)
            assert posterior.fact_ids == tuple(
                running_example_distribution().fact_ids
            )
            print(f"posterior utility {posterior.utility:.3f}")

            metrics = await client.metrics()
            assert metrics["sessions"]["live"] == 1
            assert metrics["merges"]["count"] == 1

            closed = await client.close_session(created.session_id)
            assert closed.rounds_merged == 1
            print(f"closed {closed.session_id} after spending {closed.budget_spent}")
    finally:
        server.close()
        await server.wait_closed()
        await service.shutdown()


def main() -> int:
    asyncio.run(_round_trip())
    leaked = multiprocessing.active_children()
    if leaked:
        print(f"FAIL: leaked worker processes: {leaked}", file=sys.stderr)
        return 1
    print("serve-smoke OK: round-trip complete, no leaked workers")
    return 0


if __name__ == "__main__":
    sys.exit(main())
