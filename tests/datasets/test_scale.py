"""The scale-corpus generator: shape, determinism, and regime edge cases."""

import numpy as np
import pytest

from repro.core.crowd import CrowdModel
from repro.core.selection import GreedySelector
from repro.datasets.scale import ScaleCorpusConfig, generate_scale_distribution
from repro.exceptions import DatasetError


class TestConfigValidation:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(DatasetError):
            ScaleCorpusConfig(num_facts=0)
        with pytest.raises(DatasetError):
            ScaleCorpusConfig(support_size=0)

    def test_rejects_oversized_support(self):
        with pytest.raises(DatasetError):
            ScaleCorpusConfig(num_facts=4, support_size=17)


class TestGeneration:
    def test_shape_and_normalisation(self):
        dist = generate_scale_distribution(
            ScaleCorpusConfig(num_facts=12, support_size=1 << 10, seed=3)
        )
        assert dist.num_facts == 12
        assert dist.support_size == 1 << 10
        _, probabilities = dist.support_arrays()
        assert np.all(probabilities > 0.0)
        assert abs(probabilities.sum() - 1.0) < 1e-9

    def test_deterministic_per_seed(self):
        config = ScaleCorpusConfig(num_facts=10, support_size=256, seed=7)
        first = generate_scale_distribution(config)
        second = generate_scale_distribution(config)
        assert first.as_dict() == second.as_dict()

    def test_full_space_support_terminates(self):
        # support_size == 2^num_facts is allowed and must complete promptly
        # (the dense regime samples without replacement instead of
        # coupon-collecting uniform draws).
        dist = generate_scale_distribution(
            ScaleCorpusConfig(num_facts=6, support_size=64, seed=0)
        )
        assert sorted(dist.support()) == list(range(64))

    def test_sparse_overshoot_trim_is_not_biased_low(self):
        # Heavy-collision sparse config: the dedup loop overshoots and must
        # trim uniformly — a sorted-prefix cut would drop the top of the
        # assignment space and flatten high-order fact columns.
        dist = generate_scale_distribution(
            ScaleCorpusConfig(num_facts=10, support_size=384, seed=2)
        )
        masks = np.array(dist.support())
        assert masks.max() >= (1 << 10) * 3 // 4
        top_bit_rate = ((masks >> 9) & 1).mean()
        assert 0.35 < top_bit_rate < 0.65

    def test_near_full_space_support(self):
        dist = generate_scale_distribution(
            ScaleCorpusConfig(num_facts=6, support_size=60, seed=1)
        )
        assert dist.support_size == 60
        assert len(set(dist.support())) == 60

    def test_wide_fact_sets_use_object_masks_and_still_select(self):
        dist = generate_scale_distribution(
            ScaleCorpusConfig(num_facts=70, support_size=64, seed=5)
        )
        masks, _ = dist.support_arrays()
        assert masks.dtype == object
        result = GreedySelector().select(dist, CrowdModel(0.8), 2)
        assert len(result.task_ids) == 2
