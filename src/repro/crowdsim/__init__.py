"""Simulated crowdsourcing platform — the reproduction's stand-in for gMission.

The paper evaluates CrowdFusion on the gMission platform with anonymous
workers whose measured accuracy is ≈ 0.86.  The paper's *model* of those
workers is exactly a Bernoulli channel with accuracy ``Pc`` shared across
tasks; this subpackage implements that model as a deterministic, seedable
simulator with the same publish/collect API a real platform client exposes,
plus per-worker accuracies, per-claim difficulty (for the error-analysis
experiments) and a qualification pre-test for estimating ``Pc``.
"""

from repro.crowdsim.platform import SimulatedPlatform
from repro.crowdsim.qualification import (
    QualificationResult,
    QualificationTest,
    calibrate_domain_accuracies,
    calibrate_worker_accuracies,
    estimate_accuracy,
    pooled_accuracy,
)
from repro.crowdsim.task import Task, TaskBatch
from repro.crowdsim.worker import Worker, WorkerPool

__all__ = [
    "QualificationResult",
    "QualificationTest",
    "SimulatedPlatform",
    "Task",
    "TaskBatch",
    "Worker",
    "WorkerPool",
    "calibrate_domain_accuracies",
    "calibrate_worker_accuracies",
    "estimate_accuracy",
    "pooled_accuracy",
]
