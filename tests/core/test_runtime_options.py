"""RuntimeOptions: validation, derived policies, and deprecation threading.

One typed object now carries every execution knob through every layer
(engine, session, session pool, experiment config, CLI).  This suite pins
the validation rules, the policies each layer derives, and the one-release
compatibility contract of the old loose keywords: they still work, they
warn, and they cannot be combined with ``runtime=``.
"""

import warnings
from dataclasses import replace

import pytest

from repro.core.crowd import CrowdModel
from repro.core.distribution import JointDistribution
from repro.core.engine import CrowdFusionEngine
from repro.core.runtime import RuntimeOptions
from repro.core.selection import ParallelPolicy, RefinementSession, SessionPool, get_selector
from repro.core.selection.parallel import DEFAULT_PARALLEL_THRESHOLD
from repro.evaluation import ExperimentConfig
from repro.exceptions import CrowdFusionError, SelectionError


def small_distribution():
    return JointDistribution.independent({"f1": 0.7, "f2": 0.4, "f3": 0.55})


@pytest.fixture
def no_deprecations():
    """Fail the test if anything under it raises a DeprecationWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestValidation:
    def test_defaults_are_valid_and_serial(self):
        options = RuntimeOptions()
        assert options.parallel_policy is None
        assert options.session_policy is None
        assert not options.parallel

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(CrowdFusionError, match="workers"):
            RuntimeOptions(workers=0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(CrowdFusionError, match="parallel_threshold"):
            RuntimeOptions(workers=2, parallel_threshold=-1)

    def test_nonpositive_parallel_entities_rejected(self):
        with pytest.raises(CrowdFusionError, match="parallel_entities"):
            RuntimeOptions(parallel_entities=0)

    def test_persistent_pool_requires_workers(self):
        with pytest.raises(CrowdFusionError, match="persistent_pool requires workers"):
            RuntimeOptions(persistent_pool=True)

    def test_workers_and_entities_are_exclusive(self):
        with pytest.raises(CrowdFusionError, match="mutually exclusive"):
            RuntimeOptions(workers=2, parallel_entities=2)

    def test_persistent_pool_needs_fork(self, monkeypatch):
        monkeypatch.setattr("repro.core.runtime.fork_available", lambda: False)
        with pytest.raises(CrowdFusionError, match="fork"):
            RuntimeOptions(workers=2, persistent_pool=True)


class TestDerivedPolicies:
    def test_policy_carries_workers_and_threshold(self):
        options = RuntimeOptions(workers=3, parallel_threshold=17)
        policy = options.parallel_policy
        assert policy == ParallelPolicy(workers=3, parallel_threshold=17)

    def test_default_threshold_is_the_library_default(self):
        policy = RuntimeOptions(workers=2).parallel_policy
        assert policy.parallel_threshold == DEFAULT_PARALLEL_THRESHOLD

    def test_session_policy_only_with_persistent_pool(self):
        assert RuntimeOptions(workers=2).session_policy is None
        options = RuntimeOptions(workers=2, persistent_pool=True)
        assert options.session_policy == options.parallel_policy

    def test_parallel_flag_covers_both_axes(self):
        assert RuntimeOptions(workers=2).parallel
        assert RuntimeOptions(parallel_entities=2).parallel
        assert not RuntimeOptions(recalibrate=True).parallel


class TestSessionDeprecation:
    def test_legacy_recalibrate_warns_and_works(self):
        with pytest.warns(DeprecationWarning, match="recalibrate"):
            session = RefinementSession(
                small_distribution(), CrowdModel(0.8), recalibrate=True
            )
        assert session.recalibrates

    def test_runtime_spelling_is_warning_free(self, no_deprecations):
        session = RefinementSession(
            small_distribution(),
            CrowdModel(0.8),
            runtime=RuntimeOptions(recalibrate=True),
        )
        assert session.recalibrates

    def test_both_spellings_conflict(self):
        with pytest.raises(SelectionError, match="both runtime="):
            RefinementSession(
                small_distribution(),
                CrowdModel(0.8),
                recalibrate=True,
                runtime=RuntimeOptions(recalibrate=True),
            )

    def test_pool_add_forwards_runtime(self, no_deprecations):
        with SessionPool() as pool:
            session = pool.add(
                "entity",
                small_distribution(),
                CrowdModel(0.8),
                runtime=RuntimeOptions(recalibrate=True),
            )
            assert session.recalibrates

    def test_pool_add_legacy_recalibrate_warns(self):
        with SessionPool() as pool:
            with pytest.warns(DeprecationWarning, match="recalibrate"):
                pool.add("entity", small_distribution(), CrowdModel(0.8), recalibrate=True)


class TestEngineDeprecation:
    def _engine(self, **kwargs):
        return CrowdFusionEngine(
            get_selector("greedy"), CrowdModel(0.8), budget=4, tasks_per_round=2, **kwargs
        )

    def test_legacy_keywords_warn(self):
        with pytest.warns(DeprecationWarning, match="recalibrate_channels"):
            self._engine(recalibrate_channels=True)

    def test_runtime_spelling_is_warning_free(self, no_deprecations):
        self._engine(runtime=RuntimeOptions(recalibrate=True))

    def test_both_spellings_conflict(self):
        with pytest.raises(SelectionError, match="both runtime="):
            self._engine(
                recalibrate_channels=True, runtime=RuntimeOptions(recalibrate=True)
            )

    def test_runtime_supplies_policy_and_persistence(self, no_deprecations):
        engine = self._engine(
            runtime=RuntimeOptions(workers=2, parallel_threshold=0, persistent_pool=True)
        )
        assert engine._parallel == ParallelPolicy(workers=2, parallel_threshold=0)
        assert engine._persistent_pool

    def test_runtime_persistent_pool_still_needs_fork(self, monkeypatch):
        runtime = RuntimeOptions(workers=2, persistent_pool=True)
        monkeypatch.setattr("repro.core.engine.fork_available", lambda: False)
        with pytest.raises(SelectionError, match="fork"):
            self._engine(runtime=runtime)


class TestExperimentConfigDeprecation:
    def test_legacy_fields_warn(self):
        with pytest.warns(DeprecationWarning, match="workers"):
            ExperimentConfig(workers=2)

    def test_runtime_spelling_is_warning_free(self, no_deprecations):
        config = ExperimentConfig(runtime=RuntimeOptions(workers=2, parallel_threshold=5))
        assert config.parallel_policy == ParallelPolicy(workers=2, parallel_threshold=5)
        assert config.runtime_options.workers == 2

    def test_both_spellings_conflict(self):
        with pytest.raises(CrowdFusionError, match="both runtime="):
            ExperimentConfig(workers=2, runtime=RuntimeOptions(workers=2))

    def test_legacy_fields_synthesise_equivalent_runtime(self):
        with pytest.warns(DeprecationWarning):
            config = ExperimentConfig(recalibrate_channels=True, parallel_entities=3)
        options = config.runtime_options
        assert options.recalibrate and options.parallel_entities == 3

    def test_replace_keeps_runtime_field_verbatim(self, no_deprecations):
        runtime = RuntimeOptions(recalibrate=True)
        config = ExperimentConfig(runtime=runtime)
        assert replace(config, k=5).runtime is runtime

    def test_runtime_invalid_combination_still_rejected(self):
        with pytest.raises(CrowdFusionError, match="mutually exclusive"):
            ExperimentConfig(runtime=RuntimeOptions(workers=2, parallel_entities=2))
