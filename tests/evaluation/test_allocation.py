"""Unit tests for global budget allocation across entities."""

import pytest

from repro.core.distribution import JointDistribution
from repro.core.facts import Fact, FactSet
from repro.datasets.book import BookCorpusConfig, generate_book_corpus
from repro.evaluation.allocation import (
    STRATEGIES,
    allocate_budget,
    allocation_summary,
)
from repro.evaluation.experiment import (
    EntityProblem,
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.exceptions import BudgetError
from repro.fusion.majority import MajorityVote


def make_problem(entity, marginals):
    facts = FactSet([Fact(fact_id, entity, "attr", fact_id) for fact_id in marginals])
    prior = JointDistribution.independent(marginals)
    gold = {fact_id: True for fact_id in marginals}
    return EntityProblem(entity=entity, facts=facts, prior=prior, gold=gold)


@pytest.fixture
def mixed_problems():
    return [
        # Highly uncertain, small.
        make_problem("uncertain", {"a1": 0.5, "a2": 0.5}),
        # Nearly certain, small.
        make_problem("certain", {"b1": 0.99, "b2": 0.99}),
        # Many facts, moderately uncertain.
        make_problem("large", {f"c{i}": 0.7 for i in range(6)}),
    ]


class TestAllocateBudget:
    def test_uniform_splits_evenly(self, mixed_problems):
        allocation = allocate_budget(mixed_problems, 9, strategy="uniform")
        assert sorted(allocation.values()) == [3, 3, 3]

    def test_total_always_exact(self, mixed_problems):
        for strategy in STRATEGIES:
            for total in (1, 7, 10, 23):
                allocation = allocate_budget(mixed_problems, total, strategy=strategy)
                assert sum(allocation.values()) == total

    def test_entropy_strategy_favours_uncertain_entities(self, mixed_problems):
        allocation = allocate_budget(mixed_problems, 12, strategy="entropy")
        assert allocation["uncertain"] > allocation["certain"]
        assert allocation["large"] > allocation["certain"]

    def test_proportional_strategy_favours_large_entities(self, mixed_problems):
        allocation = allocate_budget(mixed_problems, 10, strategy="proportional")
        assert allocation["large"] > allocation["uncertain"]

    def test_min_per_entity_floor(self, mixed_problems):
        allocation = allocate_budget(
            mixed_problems, 12, strategy="entropy", min_per_entity=2
        )
        assert all(value >= 2 for value in allocation.values())
        assert sum(allocation.values()) == 12

    def test_floor_exceeding_budget_rejected(self, mixed_problems):
        with pytest.raises(BudgetError):
            allocate_budget(mixed_problems, 5, min_per_entity=2)

    def test_invalid_inputs_rejected(self, mixed_problems):
        with pytest.raises(BudgetError):
            allocate_budget([], 10)
        with pytest.raises(BudgetError):
            allocate_budget(mixed_problems, 0)
        with pytest.raises(BudgetError):
            allocate_budget(mixed_problems, 10, strategy="magic")
        with pytest.raises(BudgetError):
            allocate_budget(mixed_problems, 10, min_per_entity=-1)

    def test_all_certain_entities_fall_back_to_even_split(self):
        problems = [
            make_problem("x", {"a": 1.0}),
            make_problem("y", {"b": 1.0}),
        ]
        allocation = allocate_budget(problems, 4, strategy="entropy")
        assert sorted(allocation.values()) == [2, 2]


class TestAllocationSummary:
    def test_summary_statistics(self):
        summary = allocation_summary({"a": 2, "b": 6, "c": 4})
        assert summary["total"] == 12
        assert summary["min"] == 2
        assert summary["max"] == 6
        assert summary["mean"] == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(BudgetError):
            allocation_summary({})


class TestAllocatedExperiment:
    def test_budget_overrides_bound_total_cost(self):
        corpus = generate_book_corpus(
            BookCorpusConfig(
                num_books=6, num_sources=10, max_sources_per_book=8, seed=77
            )
        )
        problems = build_problems(
            corpus.database, corpus.gold, MajorityVote(), max_facts_per_entity=6
        )
        total = 4 * len(problems)
        allocation = allocate_budget(problems, total, strategy="entropy")
        config = ExperimentConfig(
            selector="greedy_prune_pre", k=2, budget_per_entity=999,
            worker_accuracy=0.9, seed=9,
        )
        result = run_quality_experiment(problems, config, budgets=allocation)
        assert result.final_point.cost <= total

    def test_entropy_allocation_not_worse_than_uniform(self):
        corpus = generate_book_corpus(
            BookCorpusConfig(num_books=10, num_sources=12, seed=88)
        )
        problems = build_problems(
            corpus.database, corpus.gold, MajorityVote(), max_facts_per_entity=8
        )
        total = 6 * len(problems)
        config = ExperimentConfig(
            selector="greedy_prune_pre", k=2, budget_per_entity=999,
            worker_accuracy=0.9, seed=10,
        )
        uniform = run_quality_experiment(
            problems, config, budgets=allocate_budget(problems, total, "uniform")
        )
        entropy = run_quality_experiment(
            problems, config, budgets=allocate_budget(problems, total, "entropy")
        )
        # The informed allocation should not lose utility compared with the
        # uniform split (it targets the entities with more reducible entropy).
        assert entropy.final_point.utility >= uniform.final_point.utility - 2.0
