"""Figure 4 — effect of the crowd accuracy Pc on quality.

The paper sweeps Pc ∈ {0.7, 0.8, 0.9} for the greedy selector and the random
baseline.  Expected shape: higher Pc yields higher utility (approaching the
0 upper bound), Pc = 0.8 and Pc = 0.9 reach comparable F1, and the greedy
selector dominates random selection at every accuracy.

The workers' real accuracy is swept together with the assumed accuracy, as in
the paper's main experiment (the calibration ablation lives in
``bench_ablation_calibration.py``).
"""

import pytest

from repro.evaluation.experiment import ExperimentConfig, run_quality_experiment
from repro.evaluation.reporting import format_series, format_table

from _bench_utils import write_result

BUDGET = 30
K = 3
ACCURACIES = (0.7, 0.8, 0.9)
SELECTORS = ("greedy_prune_pre", "random")

_RESULTS = {}


def _run(problems, selector, accuracy):
    config = ExperimentConfig(
        selector=selector,
        k=K,
        budget_per_entity=BUDGET,
        worker_accuracy=accuracy,
        use_difficulties=True,
        seed=31,
    )
    return run_quality_experiment(problems, config)


CASES = [(selector, accuracy) for selector in SELECTORS for accuracy in ACCURACIES]


@pytest.mark.parametrize(
    "selector,accuracy", CASES, ids=[f"{s}-Pc{a}" for s, a in CASES]
)
def test_pc_setting_curve(benchmark, book_problems, selector, accuracy):
    """Benchmark one (selector, Pc) refinement run over the whole corpus."""
    result = benchmark.pedantic(
        _run, args=(book_problems, selector, accuracy),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _RESULTS[(selector, accuracy)] = result
    assert result.final_point.cost > 0


def test_fig4_report_and_shape(benchmark):
    """Persist the Figure-4 series and check the Pc-ordering claims."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_RESULTS) < len(CASES):
        pytest.skip("curve benchmarks did not run")

    lines = []
    rows = []
    for selector, accuracy in CASES:
        result = _RESULTS[(selector, accuracy)]
        lines.append(
            format_series(
                f"{selector} Pc={accuracy} F1",
                list(zip(result.costs(), result.f1_series())),
                3,
            )
        )
        lines.append(
            format_series(
                f"{selector} Pc={accuracy} utility",
                list(zip(result.costs(), result.utility_series())),
                2,
            )
        )
        rows.append(
            [selector, accuracy, result.final_point.f1, result.final_point.utility]
        )
    summary = format_table(
        ["selector", "Pc", "final F1", "final utility"], rows, float_format="{:.3f}"
    )
    write_result("fig4_pc_settings.txt", summary + "\n\n" + "\n".join(lines))

    greedy = {a: _RESULTS[("greedy_prune_pre", a)].final_point for a in ACCURACIES}
    random_final = {a: _RESULTS[("random", a)].final_point for a in ACCURACIES}

    # Higher crowd accuracy gives higher final utility for the informed selector.
    assert greedy[0.9].utility > greedy[0.8].utility > greedy[0.7].utility
    # Pc = 0.8 and Pc = 0.9 reach comparable F1 (the paper's observation).
    assert abs(greedy[0.9].f1 - greedy[0.8].f1) < 0.12
    # Greedy dominates random at every accuracy (utility).
    for accuracy in ACCURACIES:
        assert greedy[accuracy].utility > random_final[accuracy].utility
