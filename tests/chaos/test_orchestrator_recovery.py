"""Chaos suite: the durable orchestrator under real kills.

The crash-resume contract asserted from the outside: an orchestrator
SIGKILLed mid-sweep (and one that dies mid-checkpoint-write) resumes via
``--resume`` to a curve bit-identical to an undisturbed run; a shard
SIGKILLed mid-entity is replaced and the entity retried to the exact same
trajectory; an orchestrator SIGTERM reaps its shard processes through the
process-wide shutdown guard; and a hard-killed service restores sessions
from its snapshot directory within 1e-12.
"""

import asyncio
import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import build_problems, run_quality_experiment
from repro.evaluation.experiment import ExperimentConfig
from repro.fusion import ModifiedCRH
from repro.orchestration import OrchestratorConfig, run_checkpointed_experiment
from repro.orchestration.journal import read_records
from repro.testing import faults
from repro.testing.faults import KILL_EXITCODE, FaultPlan

pytestmark = [pytest.mark.chaos, pytest.mark.parallel]

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: CLI flags describing one deterministic sweep (8 books, 3 rounds each).
SWEEP_FLAGS = [
    "--books", "8", "--sources", "10", "--seed", "3",
    "--budget", "9", "--k", "3", "--max-facts", "8",
]


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


def _run_cli(run_dir, *extra, env_extra=None, wait=True):
    env = dict(os.environ, PYTHONPATH=SRC_DIR, **(env_extra or {}))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "experiment", *SWEEP_FLAGS,
         "--run-dir", str(run_dir), *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    if wait:
        stdout, stderr = process.communicate(timeout=300)
        return process.returncode, stdout, stderr
    return process


def _wait_for_journal(run_dir, kind, minimum=1, timeout=120.0):
    journal = Path(run_dir) / "journal.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists():
            count = sum(
                1 for record in read_records(str(journal))
                if record.get("type") == kind
            )
            if count >= minimum:
                return count
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {minimum} {kind!r} records")


def _curve(run_dir):
    return read_records(str(Path(run_dir) / "curve.jsonl"))


def _assert_identical_curves(expected, actual):
    assert len(expected) == len(actual)
    for theirs, ours in zip(expected, actual):
        assert theirs == ours  # ids equal, every objective float bit-equal


class TestOrchestratorKill:
    def test_sigkill_mid_sweep_resumes_bit_identical(self, tmp_path):
        undisturbed = tmp_path / "undisturbed"
        code, out, err = _run_cli(undisturbed)
        assert code == 0, err

        crashed = tmp_path / "crashed"
        # Stall each entity dispatch so the kill reliably lands mid-sweep.
        victim = _run_cli(
            crashed, wait=False,
            env_extra={"REPRO_FAULTS": "delay_entity_seconds=0.5"},
        )
        try:
            _wait_for_journal(crashed, "entity_done", minimum=1)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait()
        assert victim.returncode == -signal.SIGKILL
        done_before = _wait_for_journal(crashed, "entity_done", minimum=1)
        assert done_before < 8, "the kill landed after the sweep finished"
        assert not (crashed / "curve.jsonl").exists()

        # Orphaned shards notice the dead parent (EOF on the command pipe)
        # and exit on their own; give them a moment before resuming.
        time.sleep(1.0)
        # Resume: the SIGKILLed process's stale lock is taken over, the
        # journal replayed, the remaining entities recomputed.
        code, out, err = _run_cli(crashed, "--resume")
        assert code == 0, err
        _assert_identical_curves(_curve(undisturbed), _curve(crashed))

    def test_death_mid_checkpoint_write_resumes_bit_identical(self, tmp_path):
        undisturbed = tmp_path / "undisturbed"
        code, _, err = _run_cli(undisturbed)
        assert code == 0, err

        crashed = tmp_path / "crashed"
        # The fifth atomic write (lock + manifest precede the per-entity
        # checkpoints) is torn in half and the process dies on the injected
        # error — the worst instant to die, mid-durability-write.
        code, _, err = _run_cli(
            crashed,
            env_extra={"REPRO_FAULTS": "torn_write_at_checkpoint=5"},
        )
        assert code != 0
        assert "injected torn checkpoint" in err
        assert (crashed / "checkpoint.json.tmp").exists()

        code, _, err = _run_cli(crashed, "--resume")
        assert code == 0, err
        _assert_identical_curves(_curve(undisturbed), _curve(crashed))
        assert not (crashed / "checkpoint.json.tmp").exists()


class TestShardKill:
    @pytest.fixture(scope="class")
    def problems(self):
        corpus = generate_book_corpus(
            BookCorpusConfig(num_books=6, num_sources=10, max_sources_per_book=8, seed=3)
        )
        return build_problems(
            corpus.database,
            corpus.gold,
            ModifiedCRH(),
            difficulties=corpus.difficulties,
            max_facts_per_entity=8,
        )

    def test_shard_sigkill_mid_entity_is_retried_bit_identical(
        self, problems, tmp_path
    ):
        config = ExperimentConfig(
            selector="greedy_prune_pre", k=3, budget_per_entity=9, seed=11
        )
        serial = run_quality_experiment(problems, config)
        # Entity dispatch #2 hard-kills its shard (fork-shared counter, one
        # budget unit): the orchestrator must charge the attempt, fork a
        # replacement shard and retry the entity to the exact trajectory.
        faults.install(FaultPlan(kill_shard_at_entity=2, shard_kill_limit=1))
        report = run_checkpointed_experiment(
            problems,
            config,
            OrchestratorConfig(run_dir=str(tmp_path / "run"), shards=2),
        )
        faults.uninstall()
        assert len(serial.points) == len(report.result.points)
        for theirs, ours in zip(serial.points, report.result.points):
            assert theirs == ours
        assert report.quarantined == ()
        failed = [
            record
            for record in read_records(str(tmp_path / "run" / "journal.jsonl"))
            if record["type"] == "entity_failed"
        ]
        assert len(failed) == 1
        assert f"exitcode {KILL_EXITCODE}" in failed[0]["error"]
        # No shard (or replacement) processes leak past the run.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestSigtermReapsShards:
    #: Child that forks an orchestrator shard pool, registers it with the
    #: process-wide shutdown guard, reports the shard pids, then idles.
    CHILD = """\
import time
from repro.core.selection.parallel import register_shutdown_reaper
from repro.orchestration import worker as worker_module
from repro.orchestration.orchestrator import _ShardPool
worker_module._SHARD_CONTEXT = ([], None, {})
pool = _ShardPool(2)
register_shutdown_reaper(pool)
print(" ".join(str(s.process.pid) for s in pool.shards), flush=True)
time.sleep(60)
"""

    @staticmethod
    def _alive(pid):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        return True

    def test_sigterm_reaps_registered_shard_pool(self):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            pids = [int(token) for token in child.stdout.readline().split()]
            assert len(pids) == 2
            assert all(self._alive(pid) for pid in pids)
            child.send_signal(signal.SIGTERM)
            child.wait(timeout=15)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        # The guard chains to the default disposition (exit reads SIGTERM)
        # after reaping the registered pool: no shard survives the parent.
        assert child.returncode == -signal.SIGTERM
        deadline = time.monotonic() + 10.0
        while any(self._alive(pid) for pid in pids) and time.monotonic() < deadline:
            time.sleep(0.05)
        leaked = [pid for pid in pids if self._alive(pid)]
        assert not leaked, f"SIGTERM leaked shard processes: {leaked}"


class TestServiceRestartRecovery:
    #: Child that builds a durable service, merges two rounds, prints the
    #: posterior marginals, then dies by SIGKILL — no graceful shutdown.
    CHILD = """\
import asyncio, json, os, signal, sys
from repro.core.crowd import CrowdModel
from repro.datasets import running_example_distribution
from repro.service import RefinementService

async def main():
    async with RefinementService(
        state_dir=sys.argv[1], snapshot_debounce_s=0.0
    ) as service:
        created = await service.create_session(
            running_example_distribution(), CrowdModel(0.8), budget=10
        )
        await service.post_answers(created.session_id, {"f1": True})
        await service.post_answers(created.session_id, {"f2": False, "f3": True})
        view = await service.get_posterior(created.session_id)
        print(json.dumps({
            "session_id": created.session_id,
            "marginals": view.marginals,
            "rounds_merged": view.rounds_merged,
        }), flush=True)
        os.kill(os.getpid(), signal.SIGKILL)

asyncio.run(main())
"""

    def test_hard_killed_service_restores_within_1e12(self, tmp_path):
        state_dir = str(tmp_path / "state")
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        child = subprocess.run(
            [sys.executable, "-c", self.CHILD, state_dir],
            capture_output=True,
            env=env,
            text=True,
            timeout=120,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        before = json.loads(child.stdout)

        from repro.service import RefinementService

        async def restore():
            async with RefinementService(state_dir=state_dir) as service:
                return await service.get_posterior(before["session_id"])

        view = asyncio.run(restore())
        assert view.rounds_merged == before["rounds_merged"]
        for fact_id, marginal in before["marginals"].items():
            assert abs(view.marginals[fact_id] - marginal) < 1e-12
