"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.selector == "greedy_prune_pre"
        assert args.k == 2
        assert args.allocation == "fixed"

    def test_unknown_selector_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--selector", "magic"])

    def test_crowd_model_choices(self):
        args = build_parser().parse_args(["experiment"])
        assert args.crowd_model == "uniform"
        args = build_parser().parse_args(["experiment", "--crowd-model", "calibrated"])
        assert args.crowd_model == "calibrated"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--crowd-model", "psychic"])


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart", "--budget", "4", "--seed", "1"]) == 0
        output = capsys.readouterr().out
        assert "Best 2 tasks" in output
        assert "Utility" in output

    def test_fusion_compares_all_methods(self, capsys):
        assert main(["fusion", "--books", "8", "--sources", "10", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        for method in ("majority", "crh", "truthfinder", "bayesian"):
            assert method in output

    def test_experiment_prints_initial_and_final(self, capsys):
        code = main(
            [
                "experiment", "--books", "6", "--sources", "10", "--seed", "2",
                "--budget", "6", "--k", "2", "--pc", "0.9",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "initial" in output
        assert "final" in output

    def test_experiment_with_curve_and_allocation(self, capsys):
        code = main(
            [
                "experiment", "--books", "6", "--sources", "10", "--seed", "2",
                "--budget", "6", "--allocation", "entropy", "--curve",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "allocation entropy" in output
        assert "F1:" in output

    def test_experiment_with_difficulty_crowd_model(self, capsys):
        code = main(
            [
                "experiment", "--books", "6", "--sources", "10", "--seed", "2",
                "--budget", "6", "--crowd-model", "difficulty",
            ]
        )
        assert code == 0
        assert "crowd model difficulty" in capsys.readouterr().out

    def test_timing_outputs_selector_rows(self, capsys):
        code = main(
            [
                "timing", "--books", "6", "--sources", "10", "--seed", "4",
                "--selectors", "greedy_prune_pre", "--k", "1", "2",
                "--entities", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "greedy_prune_pre" in output
        assert "mean seconds" in output
