"""Cross-entity fan-out: parallel experiment curves must equal serial ones.

Entities are independent between curve points (each derives every random
stream from ``config.seed`` and its global index), so fanning whole entity
trajectories out across a fork pool and reassembling the lock-step curve
must reproduce the serial loop's points exactly — same costs, same summed
utilities, same classification scores, in the same order.  The suite also
covers the configuration validation that guards the parallel flags.
"""

from dataclasses import replace

import pytest

from repro.datasets import BookCorpusConfig, generate_book_corpus
from repro.evaluation import (
    ExperimentConfig,
    build_problems,
    run_quality_experiment,
)
from repro.exceptions import CrowdFusionError
from repro.fusion import ModifiedCRH


@pytest.fixture(scope="module")
def problems():
    corpus = generate_book_corpus(
        BookCorpusConfig(
            num_books=6, num_sources=10, max_sources_per_book=8, seed=3
        )
    )
    return build_problems(
        corpus.database,
        corpus.gold,
        ModifiedCRH(),
        difficulties=corpus.difficulties,
        max_facts_per_entity=8,
    )


class TestConfigValidation:
    """Satellite: bad parallel settings fail fast with clear messages."""

    def test_zero_workers_rejected(self):
        with pytest.raises(CrowdFusionError, match="positive"):
            ExperimentConfig(workers=0)

    def test_negative_workers_rejected(self):
        with pytest.raises(CrowdFusionError, match="workers"):
            ExperimentConfig(workers=-2)

    def test_negative_parallel_threshold_rejected(self):
        with pytest.raises(CrowdFusionError, match="parallel_threshold"):
            ExperimentConfig(workers=2, parallel_threshold=-1)

    def test_nonpositive_parallel_entities_rejected(self):
        with pytest.raises(CrowdFusionError, match="parallel_entities"):
            ExperimentConfig(parallel_entities=0)

    def test_persistent_pool_requires_workers(self):
        with pytest.raises(CrowdFusionError, match="persistent_pool requires workers"):
            ExperimentConfig(persistent_pool=True)

    def test_parallel_entities_excludes_workers(self):
        with pytest.raises(CrowdFusionError, match="mutually exclusive"):
            ExperimentConfig(workers=2, parallel_entities=2)

    def test_persistent_pool_needs_fork(self, monkeypatch):
        monkeypatch.setattr(
            "repro.evaluation.experiment.fork_available", lambda: False
        )
        with pytest.raises(CrowdFusionError, match="fork"):
            ExperimentConfig(workers=2, persistent_pool=True)

    def test_parallel_entities_needs_fork(self, monkeypatch):
        monkeypatch.setattr(
            "repro.evaluation.experiment.fork_available", lambda: False
        )
        with pytest.raises(CrowdFusionError, match="fork"):
            ExperimentConfig(parallel_entities=2)

    def test_valid_configs_pass(self):
        ExperimentConfig(workers=2, parallel_threshold=0)
        ExperimentConfig(parallel_entities=4)


def assert_identical_curves(serial, fanned):
    assert len(serial.points) == len(fanned.points)
    for serial_point, fanned_point in zip(serial.points, fanned.points):
        assert fanned_point == serial_point


@pytest.mark.parallel
class TestFanOutEquivalence:
    @pytest.mark.parametrize("parallel_entities", [1, 2, 4])
    def test_curves_identical_across_pool_sizes(self, problems, parallel_entities):
        config = ExperimentConfig(
            selector="greedy", k=2, budget_per_entity=8,
            worker_accuracy=0.85, seed=5,
        )
        serial = run_quality_experiment(problems, config)
        fanned = run_quality_experiment(
            problems, replace(config, parallel_entities=parallel_entities)
        )
        assert_identical_curves(serial, fanned)

    def test_calibrated_channels_and_difficulties(self, problems):
        config = ExperimentConfig(
            selector="greedy_lazy", k=2, budget_per_entity=6,
            worker_accuracy=0.85, seed=7, crowd_model="calibrated",
            use_difficulties=True,
        )
        serial = run_quality_experiment(problems, config)
        fanned = run_quality_experiment(problems, replace(config, parallel_entities=3))
        assert_identical_curves(serial, fanned)

    def test_recalibration_and_seeded_random_selector(self, problems):
        config = ExperimentConfig(
            selector="random", k=2, budget_per_entity=6, seed=9,
            recalibrate_channels=True,
        )
        serial = run_quality_experiment(problems, config)
        fanned = run_quality_experiment(problems, replace(config, parallel_entities=4))
        assert_identical_curves(serial, fanned)

    def test_budget_overrides_respected(self, problems):
        config = ExperimentConfig(selector="greedy", k=2, budget_per_entity=4, seed=1)
        budgets = {problems[0].entity: 8, problems[1].entity: 0}
        serial = run_quality_experiment(problems, config, budgets=budgets)
        fanned = run_quality_experiment(
            problems, replace(config, parallel_entities=2), budgets=budgets
        )
        assert_identical_curves(serial, fanned)


@pytest.mark.parallel
class TestPersistentPoolExperiment:
    def test_non_parallel_selector_still_warns_with_persistent_pool(self, problems):
        """Regression: the 'parallel settings ignored' warning must fire for
        selectors outside the greedy family whether or not the pool is
        persistent — fact_entropy consumes neither wiring."""
        config = ExperimentConfig(
            selector="fact_entropy", k=1, budget_per_entity=2,
            workers=2, persistent_pool=True,
        )
        with pytest.warns(RuntimeWarning, match="does not support parallel"):
            run_quality_experiment(problems[:2], config)

    def test_persistent_pool_curves_match_serial(self, problems):
        config = ExperimentConfig(
            selector="greedy", k=2, budget_per_entity=6, seed=11,
        )
        serial = run_quality_experiment(problems, config)
        persistent = run_quality_experiment(
            problems,
            replace(config, workers=2, parallel_threshold=0, persistent_pool=True),
        )
        assert_identical_curves(serial, persistent)
