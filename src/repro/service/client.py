"""Asyncio client for the refinement service's JSON-lines transport.

The client mirrors the server API one to one and re-raises wire errors as
their typed :class:`~repro.service.api.ServiceError` subclasses, so calling
code handles a remote service exactly like an in-process
:class:`~repro.service.server.RefinementService`.

Resilience model (:class:`RetryPolicy`):

* **Server-declared retry-safe errors** — overload (429), queued-deadline
  expiry (504), aborted-and-refunded merges (503) — are retried for *every*
  operation with exponential backoff plus jitter: the server has promised no
  state changed, so resending cannot double-merge.
* **Transport failures** (connection reset, EOF mid-response, torn line) are
  wrapped in :class:`~repro.service.transport.TransportError` with the
  session id attached.  They carry *no* such promise — the request may have
  been applied before the connection died — so the client reconnects and
  retries only **idempotent reads** (``select_next``, ``get_posterior``,
  ``metrics``, ``ping``); state-changing calls surface the error to the
  caller, preserving at-most-once merge semantics.

Retried requests carry a ``retry`` attempt counter on the wire, which the
server counts into its ``client_retries`` metric.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from repro.core.answers import AnswerSet
from repro.core.crowd import ChannelModel
from repro.core.distribution import JointDistribution
from repro.service.api import (
    MAX_LINE_BYTES,
    MergeReport,
    PosteriorView,
    SelectionReply,
    ServiceError,
    SessionClosed,
    SessionCreated,
    encode_answers,
    encode_channel,
    encode_distribution,
    raise_from_payload,
)
from repro.service.transport import TransportError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for retry-safe failures.

    ``delay(attempt)`` grows as ``base_delay × multiplier^attempt`` capped at
    ``max_delay``, then spread by ``±jitter`` (a fraction) so a fleet of
    clients bounced by one overload burst does not resynchronise into the
    next one.  ``max_retries=0`` disables retrying entirely.
    """

    max_retries: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be non-negative, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be at least 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter:
            delay *= 1.0 + random.uniform(-self.jitter, self.jitter)
        return max(0.0, delay)


#: No retries at all — the pre-resilience behaviour, handy in tests.
NO_RETRY = RetryPolicy(max_retries=0)


class ServiceClient:
    """One JSON-lines connection to a refinement service.

    Requests on one client are serialised by an internal lock (the wire
    protocol is strictly request/response per connection); open several
    clients for concurrent tenants.  Clients built via :meth:`connect` can
    transparently reconnect after a transport failure; clients wrapping a
    caller-supplied stream pair cannot (they don't know the address).
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        retry: Optional[RetryPolicy] = None,
    ):
        self._reader: Optional[asyncio.StreamReader] = reader
        self._writer: Optional[asyncio.StreamWriter] = writer
        self._retry = retry if retry is not None else RetryPolicy()
        self._address: "Optional[tuple[str, int]]" = None
        self._lock = asyncio.Lock()
        #: Requests this client re-sent (all causes), for caller observability.
        self.retries = 0
        #: Successful transparent reconnects after a transport failure.
        self.reconnects = 0

    @classmethod
    async def connect(
        cls, host: str, port: int, retry: Optional[RetryPolicy] = None
    ) -> "ServiceClient":
        # Server responses (posteriors especially) are bounded by
        # MAX_LINE_BYTES, far past asyncio's default 64 KiB readline limit.
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        client = cls(reader, writer, retry)
        client._address = (host, port)
        return client

    async def __aenter__(self) -> "ServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - peer vanished
            pass

    # -- the wire loop -----------------------------------------------------------------

    def _drop_connection(self) -> None:
        """Forget a dead stream pair so the next round trip reconnects."""
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            try:
                writer.close()
            except Exception:  # pragma: no cover - transport already torn down
                pass

    async def _ensure_connection(self, session_id: Optional[str]) -> None:
        if self._writer is not None:
            return
        if self._address is None:
            raise TransportError(
                "the connection is closed and this client has no address to "
                "reconnect to",
                session_id,
            )
        host, port = self._address
        try:
            self._reader, self._writer = await asyncio.open_connection(
                host, port, limit=MAX_LINE_BYTES
            )
        except OSError as error:
            raise TransportError(
                f"reconnect to {host}:{port} failed: {error}", session_id
            ) from error
        self.reconnects += 1

    async def _roundtrip(
        self, request: Mapping[str, Any], session_id: Optional[str]
    ) -> Dict[str, Any]:
        """One request/response exchange; stream failures become TransportError."""
        await self._ensure_connection(session_id)
        try:
            self._writer.write((json.dumps(dict(request)) + "\n").encode("utf-8"))
            await self._writer.drain()
            line = await self._reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError, OSError) as error:
            self._drop_connection()
            raise TransportError(
                f"connection failed mid-request: {error!r}", session_id
            ) from error
        if not line:
            self._drop_connection()
            raise TransportError("the service closed the connection", session_id)
        try:
            response = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            # A torn response line (the peer died mid-write) is a transport
            # failure, not a protocol error.
            self._drop_connection()
            raise TransportError(
                f"the service sent a torn response line: {error}", session_id
            ) from error
        if not response.get("ok"):
            raise_from_payload(response.get("error", {}))
        return response.get("result", {})

    async def _call(
        self,
        request: Mapping[str, Any],
        *,
        idempotent: bool = False,
        session_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        attempt = 0
        async with self._lock:
            while True:
                wire_request = dict(request)
                if attempt:
                    wire_request["retry"] = attempt
                try:
                    return await self._roundtrip(wire_request, session_id)
                except TransportError:
                    # No server verdict: the request may have been applied.
                    # Only idempotent reads may go again (after reconnect).
                    if (
                        not idempotent
                        or self._address is None
                        or attempt >= self._retry.max_retries
                    ):
                        raise
                except ServiceError as error:
                    # The server's explicit promise that nothing changed is
                    # the only licence to resend a state-changing request.
                    if not getattr(error, "retry_safe", False):
                        raise
                    if attempt >= self._retry.max_retries:
                        raise
                self.retries += 1
                await asyncio.sleep(self._retry.delay(attempt))
                attempt += 1

    # -- the session API ---------------------------------------------------------------

    async def create_session(
        self,
        distribution: JointDistribution,
        channel: ChannelModel,
        budget: int,
        selector: str = "greedy_prune_pre",
    ) -> SessionCreated:
        return SessionCreated.from_payload(
            await self._call(
                {
                    "op": "create_session",
                    "distribution": encode_distribution(distribution),
                    "channel": encode_channel(channel),
                    "budget": budget,
                    "selector": selector,
                }
            )
        )

    async def post_answers(
        self,
        session_id: str,
        answers: Union[AnswerSet, Mapping[str, bool]],
        deadline_ms: Optional[int] = None,
    ) -> MergeReport:
        payload = (
            encode_answers(answers)
            if isinstance(answers, AnswerSet)
            else {str(fact_id): bool(value) for fact_id, value in answers.items()}
        )
        request: Dict[str, Any] = {
            "op": "post_answers",
            "session_id": session_id,
            "answers": payload,
        }
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return MergeReport.from_payload(
            await self._call(request, session_id=session_id)
        )

    async def select_next(
        self, session_id: str, batch: int = 1, deadline_ms: Optional[int] = None
    ) -> SelectionReply:
        request: Dict[str, Any] = {
            "op": "select_next",
            "session_id": session_id,
            "batch": batch,
        }
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return SelectionReply.from_payload(
            await self._call(request, idempotent=True, session_id=session_id)
        )

    async def get_posterior(
        self, session_id: str, deadline_ms: Optional[int] = None
    ) -> PosteriorView:
        request: Dict[str, Any] = {"op": "get_posterior", "session_id": session_id}
        if deadline_ms is not None:
            request["deadline_ms"] = deadline_ms
        return PosteriorView.from_payload(
            await self._call(request, idempotent=True, session_id=session_id)
        )

    async def close_session(self, session_id: str) -> SessionClosed:
        return SessionClosed.from_payload(
            await self._call(
                {"op": "close_session", "session_id": session_id},
                session_id=session_id,
            )
        )

    async def metrics(self) -> Dict[str, Any]:
        return await self._call({"op": "metrics"}, idempotent=True)

    async def ping(self) -> Dict[str, Any]:
        return await self._call({"op": "ping"}, idempotent=True)
