"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper on a
scaled-down workload (the paper used 100 books, a 60-task budget per book and
a 10-node cluster; we use a few dozen synthetic books and a laptop).  Every
module writes the series/rows it produces to ``benchmarks/results/`` so the
numbers are inspectable after the run, and asserts the qualitative shape the
paper reports.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_HERE = Path(__file__).parent
if str(_HERE) not in sys.path:
    sys.path.insert(0, str(_HERE))

from repro.datasets.book import BookCorpusConfig, generate_book_corpus  # noqa: E402
from repro.evaluation.experiment import build_problems  # noqa: E402
from repro.fusion.crh import ModifiedCRH  # noqa: E402


@pytest.fixture(scope="session")
def book_corpus():
    """The evaluation corpus: synthetic stand-in for the paper's 100-book dataset."""
    return generate_book_corpus(
        BookCorpusConfig(num_books=40, num_sources=18, seed=2017)
    )


@pytest.fixture(scope="session")
def book_problems(book_corpus):
    """Per-book refinement problems initialised with the modified CRH framework."""
    return build_problems(
        book_corpus.database,
        book_corpus.gold,
        ModifiedCRH(),
        difficulties=book_corpus.difficulties,
        max_facts_per_entity=10,
    )


@pytest.fixture(scope="session")
def small_book_problems(book_corpus):
    """The Figure-2 subset: books with the fewest statements (OPT stays feasible)."""
    sizes = {
        entity: len(book_corpus.claims_for_book(entity))
        for entity in book_corpus.database.entities()
    }
    smallest = sorted(sizes, key=sizes.get)[:15]
    return build_problems(
        book_corpus.database,
        book_corpus.gold,
        ModifiedCRH(),
        difficulties=book_corpus.difficulties,
        max_facts_per_entity=6,
        entities=smallest,
    )
